#!/usr/bin/env python
"""Many registers, one fleet: consolidated deployment economics.

Real stores host many objects on the same servers, so storage adds up
per server and a crash hits everything at once.  This demo deploys m=3
independent k=2-writer registers (Algorithm 2) on one fleet of n=5
servers, shows the per-server storage ledger (the quantity Theorem 7
constrains), crashes f=2 servers with single events, and verifies every
register independently.

Run:  python examples/shared_fleet.py
"""

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.multi import MultiRegisterDeployment
from repro.sim.scheduling import RandomScheduler
from repro.verify import verify_run


def main() -> None:
    m, k, n, f = 3, 2, 5, 2
    deployment = MultiRegisterDeployment(
        m=m, k=k, n=n, f=f, scheduler=RandomScheduler(5)
    )
    per_register = bounds.register_upper_bound(k, n, f)
    print(
        f"{m} registers x {per_register} base registers each ="
        f" {deployment.total_registers} on {n} servers"
    )
    rows = [
        [str(server_id), count]
        for server_id, count in sorted(deployment.storage_profile().items())
    ]
    print(render_table(["server", "registers stored"], rows,
                       title="per-server storage (Theorem 7's m)"))

    views = [deployment.register(i) for i in range(m)]
    writers = [view.add_writer(0) for view in views]
    readers = [view.add_reader() for view in views]

    for i, writer in enumerate(writers):
        writer.enqueue("write", f"object{i}=v1")
    assert deployment.system.run_to_quiescence().satisfied

    deployment.crash_server(0)
    deployment.crash_server(3)
    print("\ncrashed s0 and s3 — one event each, all registers affected")

    for i, writer in enumerate(writers):
        writer.enqueue("write", f"object{i}=v2")
    assert deployment.system.run_to_quiescence().satisfied
    for reader in readers:
        reader.enqueue("read")
    assert deployment.system.run_to_quiescence().satisfied

    for i, view in enumerate(views):
        report = verify_run(view, condition="ws-regular")
        value = view.history.reads[-1].result
        assert report.ok, report.details()
        print(f"register {i}: read {value!r}; verification OK")

    print("\nAll registers consistent through shared crashes. OK")


if __name__ == "__main__":
    main()
