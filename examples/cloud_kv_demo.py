#!/usr/bin/env python
"""A replicated KV store on the three base-object substrates.

The paper's motivation: cloud stores expose different primitives —
network-attached disks give plain read/write, cloud APIs give conditional
updates (CAS), richer services give RMW.  This demo runs the library's
:class:`repro.apps.kv.ReplicatedKVStore` on each substrate with the same
workload (writes by several writers, crashes, reads, consistency audit)
and compares the base-object budget — Table 1's separation on a "real"
workload.

Run:  python examples/cloud_kv_demo.py
"""

from repro.analysis.tables import render_table
from repro.apps.kv import ReplicatedKVStore


def exercise(store: ReplicatedKVStore) -> None:
    with store.session(writer=0) as alice:
        alice.put("user:1", "ada")
        alice.put("user:1", "ada lovelace")
    with store.session(writer=1) as bob:
        bob.put("user:2", "grace")
    with store.session(writer=2) as carol:
        carol.put("cart:9", ["book"])

    store.crash_server(0)           # f = 2 crashes: the store keeps going
    store.crash_server(3)

    with store.session() as reader:     # read-only session: no writer slot
        assert reader.get("user:1") == "ada lovelace"
        assert reader.get("user:2") == "grace"
        assert reader.get("cart:9") == ["book"]
    with store.session(writer=2) as carol:
        carol.put("user:2", "grace hopper")
        assert carol.get("user:2") == "grace hopper"

    audit = store.audit()
    assert all(audit.values()), audit


def main() -> None:
    n, f, k = 5, 2, 3
    rows = []
    for substrate in ("max-register", "cas", "register"):
        store = ReplicatedKVStore(substrate=substrate, n=n, f=f, k_writers=k)
        exercise(store)
        per_key = store.base_objects_per_key()
        rows.append(
            [
                substrate,
                len(store.keys()),
                store.base_objects,
                per_key[store.keys()[0]],
                "atomic" if substrate != "register" else "WS-Regular",
            ]
        )
        print(f"{substrate}: workload + 2 crashes + audit OK")

    print()
    print(
        render_table(
            ["substrate", "keys", "base objects", "per key", "consistency"],
            rows,
            title=(
                f"Replicated KV store over n={n} servers, f={f},"
                f" k={k} writers/key"
            ),
        )
    )
    budgets = {row[0]: row[3] for row in rows}
    assert budgets["max-register"] == 2 * f + 1
    assert budgets["cas"] == 2 * f + 1
    assert budgets["register"] == k * (2 * f + 1)
    print(
        f"\nPlain registers cost a factor k={k} more per key at n=2f+1 —"
        " exactly the paper's separation."
    )


if __name__ == "__main__":
    main()
