#!/usr/bin/env python
"""Epoch-guarded reconfiguration — the primitives in their natural habitat.

A configuration document lives in a replicated atomic register; a
max-register epoch fences installers so a racer can never silently
clobber a newer configuration.  Runs through crashes of f servers and a
simulated install race.

Run:  python examples/config_service.py
"""

from repro.apps.config import ConfigService, InstallRaced


def main() -> None:
    service = ConfigService(
        n=5, f=2, initial_config={"replicas": ["s0", "s1", "s2"]}
    )
    print(
        f"Config service on 5 servers (f=2):"
        f" {service.base_objects} base objects"
        " (one max-register + one register object per server)."
    )

    epoch, config = service.fetch()
    print(f"epoch {epoch}: {config}")

    epoch = service.install({"replicas": ["s0", "s1", "s2", "s3"]})
    print(f"installed epoch {epoch}")

    service.crash_server(0)
    service.crash_server(4)
    print("crashed s0 and s4 (f=2)")

    epoch = service.install(
        {"replicas": ["s1", "s2", "s3"]}, process=1
    )
    print(f"installed epoch {epoch} after crashes")

    # Simulate a raced install: another process claims a higher epoch
    # between this installer's claim and its verification.
    original_advance = service.epochs.advance

    def racing_advance(process=0):
        claimed = original_advance(process=process)
        service.epochs.propose(claimed + 1, process=99)
        return claimed

    service.epochs.advance = racing_advance
    try:
        service.install({"replicas": ["BAD"]}, process=2)
        raise AssertionError("raced install must not succeed")
    except InstallRaced as raced:
        print(f"raced install rejected: {raced}")
    finally:
        service.epochs.advance = original_advance

    epoch, config = service.fetch(process=7)
    assert config == {"replicas": ["s1", "s2", "s3"]}
    print(f"final: epoch {epoch}, config {config} — no silent clobber. OK")


if __name__ == "__main__":
    main()
