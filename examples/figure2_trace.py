#!/usr/bin/env python
"""Trace the lower-bound runs (the Figure 2 picture, live).

Attaches a trace recorder to a Lemma 1 construction and renders the
client timelines and an event-log excerpt: each writer completes its
high-level write even though the adversary silently holds f of its
low-level writes pending forever — those pending ("covering") writes are
exactly the storage the lower bound counts.

Run:  python examples/figure2_trace.py
"""

from repro import Lemma1Runner, WSRegisterEmulation
from repro.sim.tracing import TraceRecorder, render_event_log, render_timeline


def main() -> None:
    k, n, f = 3, 5, 2
    recorder = TraceRecorder()

    def factory(scheduler):
        emulation = WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)
        emulation.kernel.add_listener(recorder)
        return emulation

    runner = Lemma1Runner(factory, k=k, f=f)
    reports = runner.run()
    runner.assert_all_claims()

    print("=== Client timelines (Figure 2 style) ===")
    print(render_timeline(recorder, width=68))
    print()

    pending = runner.emulation.kernel.pending
    covering = [op for op in pending.values() if op.is_mutator]
    print("=== Covering writes left pending by the adversary ===")
    for op in sorted(covering, key=lambda op: op.trigger_time):
        server = runner.emulation.object_map.server_of(op.object_id)
        print(
            f"  {op.op_id}: write {op.args[0]} on {op.object_id}"
            f" ({server}), triggered at t={op.trigger_time}, never responded"
        )
    print(
        f"\n{len(covering)} covering writes = k*f = {k * f};"
        f" every write completed anyway (wait-freedom), so the"
        f" emulation *must* own that many registers."
    )

    print("\n=== First 12 low-level actions of write #2 (excerpt) ===")
    second_write_start = reports[0].end_time
    excerpt = [
        entry
        for entry in recorder.entries
        if entry.time > second_write_start
        and entry.kind in {"invoke", "trigger", "respond", "return"}
    ][:12]
    for entry in excerpt:
        from repro.sim.tracing import format_entry

        print(format_entry(entry))


if __name__ == "__main__":
    main()
