#!/usr/bin/env python
"""Quickstart: an f-tolerant register over crash-prone servers.

Deploys Algorithm 2 (the paper's space-optimal construction from plain
read/write registers) on 5 servers with f=2, writes and reads while
crashing two servers mid-run, and checks the run satisfies WS-Regularity.

Run:  python examples/quickstart.py
"""

from repro import WSRegisterEmulation, check_ws_regular
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


def main() -> None:
    # Two writers, five servers, tolerate two crashes.
    emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=RandomScheduler(42))
    print(
        f"Deployed Algorithm 2: k={emu.layout.k} writers, n={emu.layout.n}"
        f" servers, f={emu.layout.f} ->"
        f" {emu.layout.total_registers} base registers"
        f" (Theorem 3: kf + ceil(k/z)(f+1))"
    )

    alice = emu.add_writer(0)
    bob = emu.add_writer(1)
    reader = emu.add_reader()

    def step(runtime, op, *args):
        runtime.enqueue(op, *args)
        result = emu.system.run_to_quiescence()
        assert result.satisfied, f"{op} did not finish: {result}"
        return emu.history.all_ops()[-1]

    print(step(alice, "write", "alice-1"))
    print(step(reader, "read"))

    # Crash up to f servers — the emulation keeps going.
    emu.kernel.crash_server(ServerId(0))
    print("crashed server s0")
    print(step(bob, "write", "bob-1"))

    emu.kernel.crash_server(ServerId(3))
    print("crashed server s3 (f=2 crashes total)")
    print(step(reader, "read"))
    print(step(alice, "write", "alice-2"))
    print(step(reader, "read"))

    violations = check_ws_regular(emu.history, cross_check=True)
    assert not violations, violations
    last_read = emu.history.reads[-1]
    assert last_read.result == "alice-2"
    print(
        f"\nHistory is WS-Regular ({len(emu.history)} high-level ops,"
        f" {len(emu.kernel.ops)} low-level ops, 2 servers down). OK"
    )


if __name__ == "__main__":
    main()
