#!/usr/bin/env python
"""Wait-freedom under stragglers: skewed fleets, same guarantees.

Asynchrony in the paper is adversarial; in production it looks like a
straggler — one server answering 50x slower than the rest.  This demo
runs the same write/read workload on a uniform fleet and on a fleet with
two heavy stragglers, showing operations complete either way (wait-
freedom never waits on specific servers) while the step cost shifts.

Run:  python examples/straggler_fleet.py
"""

from repro import WSRegisterEmulation, check_ws_regular
from repro.analysis.resources import StepMeter
from repro.analysis.tables import render_table
from repro.sim.latency import straggler_fleet
from repro.sim.scheduling import RandomScheduler


def run_fleet(name, scheduler):
    emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=scheduler)
    meter = StepMeter()
    emu.kernel.add_listener(meter)
    writers = [emu.add_writer(i) for i in range(2)]
    reader = emu.add_reader()
    for index in range(4):
        writers[index % 2].enqueue("write", f"v{index}")
        result = emu.system.run_to_quiescence(max_steps=2_000_000)
        assert result.satisfied, f"{name}: write stuck"
        reader.enqueue("read")
        result = emu.system.run_to_quiescence(max_steps=2_000_000)
        assert result.satisfied, f"{name}: read stuck"
    violations = check_ws_regular(emu.history)
    assert not violations, violations
    last = emu.history.reads[-1].result
    return [
        name,
        last,
        round(meter.mean_duration(), 1),
        round(meter.mean_triggers(), 1),
        "WS-Regular",
    ]


def main() -> None:
    rows = [
        run_fleet("uniform fleet", RandomScheduler(seed=3)),
        run_fleet(
            "2 stragglers (50x, 20x)",
            straggler_fleet(5, {1: 0.02, 4: 0.05}, seed=3),
        ),
    ]
    print(
        render_table(
            ["fleet", "final read", "mean steps/op", "mean triggers/op", "history"],
            rows,
            title="Algorithm 2 on skewed fleets (k=2, n=5, f=2)",
        )
    )
    print(
        "\nOperations never wait on a named server — only on any n-f —"
        "\nso stragglers stretch schedules without breaking wait-freedom"
        " or WS-Regularity."
    )


if __name__ == "__main__":
    main()
