#!/usr/bin/env python
"""Explore register layouts and the bounds surface (Figure 1, Theorem 1).

Prints the paper's Figure 1 layout (n=6, k=5, f=2), then sweeps the
server count to show where adding servers stops helping (n = kf+f+1) and
where the lower/upper bounds coincide.

Run:  python examples/layout_explorer.py
"""

from repro import RegisterLayout, bounds
from repro.analysis.tables import render_table


def main() -> None:
    print("=== Figure 1: the paper's example layout ===")
    layout = RegisterLayout(k=5, n=6, f=2)
    layout.validate()
    print(layout.render())
    print()

    k, f = 4, 2
    print(f"=== Theorem 1/3: bounds vs server count (k={k}, f={f}) ===")
    rows = []
    for n in range(2 * f + 1, bounds.saturation_n(k, f) + 3):
        lower = bounds.register_lower_bound(k, n, f)
        upper = bounds.register_upper_bound(k, n, f)
        marks = []
        if n == 2 * f + 1:
            marks.append("n=2f+1")
        if n == bounds.saturation_n(k, f):
            marks.append("n=kf+f+1 (saturation)")
        if lower == upper:
            marks.append("tight")
        rows.append([n, bounds.z_value(n, f), lower, upper, upper - lower,
                     ", ".join(marks)])
    print(render_table(["n", "z", "lower", "upper", "gap", "notes"], rows))

    print()
    print("=== Theorem 7: minimum servers under bounded storage ===")
    rows = [
        [m, bounds.servers_needed_bounded_storage(k, f, m)]
        for m in (1, 2, 4, 8)
    ]
    print(render_table(["registers/server (m)", "servers needed"], rows,
                       title=f"k={k}, f={f}"))


if __name__ == "__main__":
    main()
