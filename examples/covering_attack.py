#!/usr/bin/env python
"""The lower-bound adversary in action (Lemma 1 / Figure 2).

Drives the covering adversary of Definitions 1-3 against our own
Algorithm 2 deployment and prints how the number of covered base
registers grows by exactly f with every high-level write — the mechanism
behind the paper's kf + ceil(kf/(n-f-1))(f+1) lower bound — while point
contention stays at 1 (Theorem 8: no adaptive emulation exists).

Run:  python examples/covering_attack.py
"""

from repro import Lemma1Runner, WSRegisterEmulation
from repro.analysis.tables import render_table


def main() -> None:
    k, n, f = 5, 7, 2

    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    runner = Lemma1Runner(factory, k=k, f=f)
    print(
        f"Running the Lemma 1 construction: k={k} writers, n={n} servers,"
        f" f={f}, protected set F = first f+1 servers.\n"
        "Each write runs under adversary Ad_i, which blocks responses of"
        " covering writes;\nthe writer must return anyway (the blocked"
        " servers merely look slow).\n"
    )
    reports = runner.run()

    rows = [
        [
            r.index,
            r.covered,
            r.index * f,
            r.covered_servers_in_F,
            r.triggered_fresh_servers,
            r.point_contention,
        ]
        for r in reports
    ]
    print(
        render_table(
            [
                "write",
                "covered registers",
                ">= i*f",
                "covered on F",
                "servers touched",
                "contention",
            ],
            rows,
        )
    )

    runner.assert_all_claims()
    print(
        f"\nAll Lemma 1 claims hold; Lemma 2 invariants checked at"
        f" {runner.checker.checks} steps."
        f"\nFinal covering: {reports[-1].covered} = k*f = {k * f} registers"
        f" pinned by pending writes, none on F."
    )


if __name__ == "__main__":
    main()
