#!/usr/bin/env python
"""A fault-tolerant epoch (configuration version) service.

Max-registers are the paper's sweet spot: 2f+1 base objects emulate a
fault-tolerant monotone register for unboundedly many writers.  This demo
runs a reconfiguration epoch service on top — processes advance epochs,
observe a crash of f servers, and stale proposals never roll the system
back.

Run:  python examples/epoch_service.py
"""

from repro.apps.epoch import EpochService
from repro.sim.scheduling import RandomScheduler


def main() -> None:
    service = EpochService(n=5, f=2, scheduler=RandomScheduler(7))
    print(
        f"Epoch service on 5 crash-prone servers (f=2):"
        f" {service.base_objects} max-register base objects total"
        " (Table 1: 2f+1, independent of the number of processes)."
    )

    print(f"initial epoch: {service.current()}")
    for process in range(3):
        installed = service.advance(process=process)
        print(f"process {process} advanced to epoch {installed}")

    service.crash_server(0)
    service.crash_server(3)
    print("crashed servers s0 and s3 (f=2)")

    print(f"epoch after crashes: {service.current(process=9)}")
    installed = service.advance(process=9)
    print(f"process 9 advanced to epoch {installed}")

    service.propose(2, process=1)  # a laggard replays an old proposal
    print(f"stale propose(2) ignored; epoch is {service.current()}")

    assert service.current() == 4
    print("\nEpochs advanced monotonically through crashes and replays. OK")


if __name__ == "__main__":
    main()
