"""Experiment F1 — Figure 1: the register-to-server layout.

Regenerates the paper's example mapping for n=6, k=5, f=2 (five disjoint
sets of five registers spread over six servers) and validates the layout
invariants across a parameter sweep.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.layout import RegisterLayout


def test_figure1_layout(benchmark):
    from repro.core.quorums import verify_quorum_properties

    layout = benchmark(RegisterLayout, 5, 6, 2)
    layout.validate()
    # Exhaustively verify the quorum claims of Section 3.3 on Figure 1's
    # own instance (15 read quorums x 10 write quorums per set).
    stats = verify_quorum_properties(layout)
    assert all(s.min_read_cover >= s.set_size - 2 for s in stats)
    emit("Figure 1 — register layout (k=5, n=6, f=2)\n" + layout.render())

    # Paper shape: z=1, five sets of y=5 registers, 25 registers total,
    # every set mapped to 5 distinct servers out of 6.
    assert layout.z == 1
    assert layout.set_sizes == [5, 5, 5, 5, 5]
    assert layout.total_registers == 25
    for register_set in layout.sets:
        assert len({layout.server_of(oid) for oid in register_set}) == 5
    # Balanced storage: 25 registers over 6 servers -> 4 or 5 each.
    loads = sorted(layout.storage_profile().values())
    assert loads[0] >= 4 and loads[-1] <= 5


def test_layout_sweep(benchmark):
    """Layout validity and storage balance across (k, n, f)."""

    def sweep():
        rows = []
        for f in (1, 2, 3):
            for k in (1, 3, 6):
                for n in (2 * f + 1, 2 * f + 3, 4 * f + 2):
                    layout = RegisterLayout(k, n, f)
                    layout.validate()
                    loads = layout.storage_profile().values()
                    rows.append(
                        [
                            k,
                            n,
                            f,
                            layout.z,
                            len(layout.sets),
                            layout.total_registers,
                            max(loads),
                        ]
                    )
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["k", "n", "f", "z", "sets", "registers", "max/server"],
            rows,
            title="Figure 1 sweep — layouts across (k, n, f)",
        )
    )
    for row in rows:
        k, n, f, _z, _sets, total, max_per_server = row
        assert total == bounds.register_upper_bound(k, n, f)
        # No server overloaded beyond the ceiling of a balanced split.
        assert max_per_server <= -(-total // n) + 1
