"""Experiment TH5 — Theorem 5: 2f servers are insufficient.

Executes the partitioning argument: the best-possible (f-server-quorum)
emulation on n = 2f servers suffers a scripted split-brain WS-Safety
violation for every f, while every emulation in the library enforces
n >= 2f+1 at deployment time.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.theorem5 import partition_violation


def test_theorem5_partition(benchmark):
    def sweep():
        rows = []
        for f in (1, 2, 3):
            violations = partition_violation(f)
            rows.append(
                [
                    f,
                    2 * f,
                    bounds.min_servers(f),
                    "WS-Safety VIOLATED" if violations else "safe",
                    (
                        f"read returned {violations[0].read.result!r},"
                        f" allowed {violations[0].allowed!r}"
                        if violations
                        else "-"
                    ),
                ]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["f", "servers deployed", "Theorem 5 minimum", "outcome", "detail"],
            rows,
            title="Theorem 5 — split-brain on n = 2f servers",
        )
    )
    assert all(row[3] == "WS-Safety VIOLATED" for row in rows)
