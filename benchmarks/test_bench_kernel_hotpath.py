"""Experiment K — kernel hot-path throughput (steps/sec).

Measures four kernel configurations across small/medium/large Figure 1
layouts and records the numbers to ``benchmarks/BENCH_kernel.json`` so
later PRs have a perf trajectory to regress against:

* ``legacy`` — ``Kernel.run(incremental=False)``: the from-scratch
  ``enabled_actions()`` oracle on a saturated WSRegister workload
  (every writer and reader always has a next operation queued via an
  ``until`` refill callback).  This is the pre-optimization kernel.
* ``incremental`` — ``Kernel.run(incremental=True)`` on the same
  workload: the live enabled-action bookkeeping.
* ``batched`` — ``Kernel.run_batched()`` on a *deep* WSRegister
  workload (operations pre-enqueued, no per-step callback): the
  inlined fast path executing the real Algorithm 2 protocol.
* ``dispatch`` — ``Kernel.run_batched()`` on the same layout driven by
  a minimal trigger/await protocol: isolates the kernel's own
  per-step cost (collect, scheduler choice, trigger, respond,
  delivery) from protocol work, i.e. the dispatch ceiling.

``BENCH_KERNEL_SMOKE=1`` shrinks the run (CI smoke mode): the artifact is
still produced, but only loose sanity ratios are asserted — wall-clock
numbers from shared CI runners are indicative, not normative.
"""

import json
import os
import time

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.layout import RegisterLayout
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.client import ClientProtocol
from repro.sim.ids import ClientId
from repro.sim.objects import OpKind
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system
from repro.sim.values import TSVal

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_kernel.json")

#: (label, (k, n, f)) — medium is the paper's Figure 1 layout.
CONFIGS = [
    ("small", (2, 3, 1)),
    ("medium", (5, 6, 2)),
    ("large", (8, 10, 3)),
]

#: ``incremental_steps_per_sec`` for the medium config in the seed
#: artifact (recorded informationally as ``*_speedup_vs_seed``; the
#: asserted bars compare runs on the same machine).
SEED_BASELINE_MEDIUM = 62_471

SMOKE = os.environ.get("BENCH_KERNEL_SMOKE", "") not in ("", "0")
STEPS = 6_000 if SMOKE else 20_000
#: per-mode repetitions; the best run counts (standard microbenchmark
#: practice — the minimum wall-clock is the least-perturbed sample).
REPEATS = 2 if SMOKE else 4
#: minimum medium-config speedups over ``legacy``: acceptance bars in
#: full mode, loose noise-tolerant sanity checks in smoke mode.
MIN_MEDIUM_SPEEDUP = 1.3 if SMOKE else 3.0
MIN_MEDIUM_BATCHED_SPEEDUP = 1.3 if SMOKE else 4.0
MIN_MEDIUM_DISPATCH_SPEEDUP = 1.3 if SMOKE else 5.0


def _best(measure, *args):
    return max(measure(*args) for _ in range(REPEATS))


def _steps_per_sec(k, n, f, incremental, seed=7, readers=3):
    """Throughput of a saturated run: ops are re-enqueued as they finish."""
    emu = WSRegisterEmulation(k, n, f, scheduler=RandomScheduler(seed))
    writer_handles = [emu.add_writer(index) for index in range(k)]
    reader_handles = [emu.add_reader() for _ in range(readers)]
    value = 0

    def refill(kernel):
        nonlocal value
        for writer in writer_handles:
            if writer.idle and not writer.program:
                writer.enqueue("write", value)
                value += 1
        for reader in reader_handles:
            if reader.idle and not reader.program:
                reader.enqueue("read")
        return False  # never satisfied: run for exactly STEPS steps

    start = time.perf_counter()
    result = emu.kernel.run(
        max_steps=STEPS, until=refill, incremental=incremental
    )
    elapsed = time.perf_counter() - start
    assert result.steps == STEPS
    return result.steps / elapsed


def _batched_steps_per_sec(k, n, f, seed=7, readers=3):
    """Throughput of ``run_batched`` on a deep pre-enqueued workload.

    The whole program is enqueued up front (enough that no client ever
    drains), so the measurement has no per-step harness callback — it
    times the batched fast path running the real Algorithm 2 protocol.
    """
    emu = WSRegisterEmulation(k, n, f, scheduler=RandomScheduler(seed))
    writers = [emu.add_writer(index) for index in range(k)]
    readers_h = [emu.add_reader() for _ in range(readers)]
    # Roughly STEPS operations in total; every op needs several kernel
    # steps, so the programs cannot drain within STEPS steps.
    rounds = STEPS // (k + readers) + 1
    value = 0
    for _ in range(rounds):
        for writer in writers:
            writer.enqueue("write", value)
            value += 1
        for reader in readers_h:
            reader.enqueue("read")
    start = time.perf_counter()
    result = emu.kernel.run_batched(max_steps=STEPS, batch_size=64)
    elapsed = time.perf_counter() - start
    assert result.steps == STEPS
    return result.steps / elapsed


class _DispatchProtocol(ClientProtocol):
    """Minimal client: trigger one register write, await its respond.

    One long-lived high-level op loops trigger/await rounds, so history
    recording amortizes away and the run exercises exactly the kernel's
    per-step machinery (collect, choose, trigger, respond, deliver).
    """

    def __init__(self, registers, rounds):
        self.registers = registers
        self.rounds = rounds
        self._got = 0

    def op_pump(self, ctx):
        registers = self.registers
        total = len(registers)
        ready = lambda: self._got >= 1  # noqa: E731 - hot-loop predicate
        for round_index in range(1, self.rounds + 1):
            self._got = 0
            ctx.trigger(
                registers[round_index % total],
                OpKind.WRITE,
                TSVal(ts=round_index, wid=0),
            )
            yield ready
        return "done"

    def on_response(self, ctx, op):
        self._got += 1


def _dispatch_steps_per_sec(k, n, f, seed=7, clients=2):
    """Kernel dispatch ceiling: ``run_batched`` under a minimal protocol.

    Same layout and register fleet as the config's WSRegister runs, but
    the protocol does no quorum bookkeeping — the number isolates what
    the kernel itself costs per step.
    """
    layout = RegisterLayout(k, n, f, initial_value=0)
    system = build_system(
        n, layout.placements(), scheduler=RandomScheduler(seed)
    )
    registers = layout.all_registers
    for index in range(clients):
        runtime = system.kernel.add_client(
            ClientId(index), _DispatchProtocol(registers, STEPS)
        )
        runtime.enqueue("pump")
    start = time.perf_counter()
    result = system.kernel.run_batched(max_steps=STEPS, batch_size=64)
    elapsed = time.perf_counter() - start
    assert result.steps == STEPS
    return result.steps / elapsed


def test_kernel_hotpath_throughput():
    rows = []
    artifact = {
        "benchmark": "kernel_hotpath",
        "mode": "smoke" if SMOKE else "full",
        "steps_per_config": STEPS,
        "seed_baseline_medium_steps_per_sec": SEED_BASELINE_MEDIUM,
        "configs": {},
    }
    for label, (k, n, f) in CONFIGS:
        legacy = _best(_steps_per_sec, k, n, f, False)
        fast = _best(_steps_per_sec, k, n, f, True)
        batched = _best(_batched_steps_per_sec, k, n, f)
        dispatch = _best(_dispatch_steps_per_sec, k, n, f)
        artifact["configs"][label] = {
            "k": k,
            "n": n,
            "f": f,
            "legacy_steps_per_sec": round(legacy),
            "incremental_steps_per_sec": round(fast),
            "batched_steps_per_sec": round(batched),
            "dispatch_steps_per_sec": round(dispatch),
            "speedup": round(fast / legacy, 2),
            "batched_speedup": round(batched / legacy, 2),
            "dispatch_speedup": round(dispatch / legacy, 2),
        }
        rows.append(
            [
                label,
                k,
                n,
                f,
                f"{legacy:,.0f}",
                f"{fast:,.0f}",
                f"{batched:,.0f}",
                f"{dispatch:,.0f}",
                f"{dispatch / legacy:.1f}x",
            ]
        )
    medium = artifact["configs"]["medium"]
    artifact["medium_batched_speedup_vs_seed"] = round(
        medium["batched_steps_per_sec"] / SEED_BASELINE_MEDIUM, 2
    )
    artifact["medium_dispatch_speedup_vs_seed"] = round(
        medium["dispatch_steps_per_sec"] / SEED_BASELINE_MEDIUM, 2
    )
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    emit(
        render_table(
            [
                "config",
                "k",
                "n",
                "f",
                "legacy st/s",
                "incremental",
                "batched",
                "dispatch",
                "disp/legacy",
            ],
            rows,
            title=f"Kernel hot path — steps/sec ({artifact['mode']} mode)",
        )
    )
    assert medium["speedup"] >= MIN_MEDIUM_SPEEDUP, (
        f"medium-config speedup {medium['speedup']}x below the"
        f" {MIN_MEDIUM_SPEEDUP}x bar"
    )
    assert medium["batched_speedup"] >= MIN_MEDIUM_BATCHED_SPEEDUP, (
        f"medium-config batched speedup {medium['batched_speedup']}x below"
        f" the {MIN_MEDIUM_BATCHED_SPEEDUP}x bar"
    )
    assert medium["dispatch_speedup"] >= MIN_MEDIUM_DISPATCH_SPEEDUP, (
        f"medium-config dispatch speedup {medium['dispatch_speedup']}x below"
        f" the {MIN_MEDIUM_DISPATCH_SPEEDUP}x bar"
    )
    # The optimized paths must never be a pessimization anywhere.
    for label, numbers in artifact["configs"].items():
        assert numbers["speedup"] >= 1.0, f"{label} config got slower"
        assert numbers["batched_speedup"] >= 1.0, (
            f"{label} batched path slower than the legacy oracle"
        )
