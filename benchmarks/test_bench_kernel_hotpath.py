"""Experiment K — kernel hot-path throughput (steps/sec).

Drives a saturated WSRegister workload (every writer and reader always
has a next operation queued) through ``Kernel.run`` in both scheduling
modes — ``incremental=True`` (the live enabled-action bookkeeping) and
``incremental=False`` (the from-scratch ``enabled_actions()`` oracle,
i.e. the pre-optimization kernel) — across small/medium/large Figure 1
configurations, and records steps/sec plus the speedup ratio to
``benchmarks/BENCH_kernel.json`` so later PRs have a perf trajectory to
regress against.

``BENCH_KERNEL_SMOKE=1`` shrinks the run (CI smoke mode): the artifact is
still produced, but only a loose sanity ratio is asserted — wall-clock
numbers from shared CI runners are indicative, not normative.
"""

import json
import os
import time

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_kernel.json")

#: (label, (k, n, f)) — medium is the paper's Figure 1 layout.
CONFIGS = [
    ("small", (2, 3, 1)),
    ("medium", (5, 6, 2)),
    ("large", (8, 10, 3)),
]

SMOKE = os.environ.get("BENCH_KERNEL_SMOKE", "") not in ("", "0")
STEPS = 6_000 if SMOKE else 20_000
#: per-mode repetitions; the best run counts (standard microbenchmark
#: practice — the minimum wall-clock is the least-perturbed sample).
REPEATS = 2 if SMOKE else 4
#: minimum medium-config speedup: the acceptance bar in full mode, a
#: loose noise-tolerant sanity check in smoke mode.
MIN_MEDIUM_SPEEDUP = 1.3 if SMOKE else 3.0


def _best_steps_per_sec(k, n, f, incremental):
    return max(
        _steps_per_sec(k, n, f, incremental) for _ in range(REPEATS)
    )


def _steps_per_sec(k, n, f, incremental, seed=7, readers=3):
    """Throughput of a saturated run: ops are re-enqueued as they finish."""
    emu = WSRegisterEmulation(k, n, f, scheduler=RandomScheduler(seed))
    writer_handles = [emu.add_writer(index) for index in range(k)]
    reader_handles = [emu.add_reader() for _ in range(readers)]
    value = 0

    def refill(kernel):
        nonlocal value
        for writer in writer_handles:
            if writer.idle and not writer.program:
                writer.enqueue("write", value)
                value += 1
        for reader in reader_handles:
            if reader.idle and not reader.program:
                reader.enqueue("read")
        return False  # never satisfied: run for exactly STEPS steps

    start = time.perf_counter()
    result = emu.kernel.run(
        max_steps=STEPS, until=refill, incremental=incremental
    )
    elapsed = time.perf_counter() - start
    assert result.steps == STEPS
    return result.steps / elapsed


def test_kernel_hotpath_throughput():
    rows = []
    artifact = {
        "benchmark": "kernel_hotpath",
        "mode": "smoke" if SMOKE else "full",
        "steps_per_config": STEPS,
        "configs": {},
    }
    for label, (k, n, f) in CONFIGS:
        legacy = _best_steps_per_sec(k, n, f, incremental=False)
        fast = _best_steps_per_sec(k, n, f, incremental=True)
        speedup = fast / legacy
        artifact["configs"][label] = {
            "k": k,
            "n": n,
            "f": f,
            "legacy_steps_per_sec": round(legacy),
            "incremental_steps_per_sec": round(fast),
            "speedup": round(speedup, 2),
        }
        rows.append(
            [label, k, n, f, f"{legacy:,.0f}", f"{fast:,.0f}", f"{speedup:.2f}x"]
        )
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    emit(
        render_table(
            ["config", "k", "n", "f", "legacy st/s", "incremental st/s", "speedup"],
            rows,
            title=f"Kernel hot path — steps/sec ({artifact['mode']} mode)",
        )
    )
    medium = artifact["configs"]["medium"]
    assert medium["speedup"] >= MIN_MEDIUM_SPEEDUP, (
        f"medium-config speedup {medium['speedup']}x below the"
        f" {MIN_MEDIUM_SPEEDUP}x bar"
    )
    # The incremental path must never be a pessimization anywhere.
    for label, numbers in artifact["configs"].items():
        assert numbers["speedup"] >= 1.0, f"{label} config got slower"
