"""Experiment TH2 — Theorem 2: a k-writer max-register needs k registers.

The matching construction (one register per writer + collect) uses
exactly k registers, so Theorem 2's lower bound is tight; the bench
deploys the construction across k, verifies correctness with a quick
write/read exercise, and checks the count.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.collect_maxreg import CollectMaxRegister
from repro.sim.scheduling import RandomScheduler


def _deploy_and_exercise(k):
    mreg = CollectMaxRegister(k=k, initial_value=0, scheduler=RandomScheduler(1))
    writers = [mreg.add_writer(i) for i in range(k)]
    reader = mreg.add_reader()
    for i, writer in enumerate(writers):
        writer.enqueue("write_max", (i * 7) % (3 * k) + 1)
    assert mreg.system.run_to_quiescence(max_steps=500_000).satisfied
    reader.enqueue("read_max")
    assert mreg.system.run_to_quiescence(max_steps=500_000).satisfied
    read_result = mreg.history.all_ops()[-1].result
    return mreg.total_registers, read_result


def test_theorem2_tightness(benchmark):
    def sweep():
        rows = []
        for k in (1, 2, 4, 8, 16):
            registers, result = _deploy_and_exercise(k)
            rows.append(
                [k, bounds.k_max_register_lower_bound(k), registers, result]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["k", "lower bound", "construction registers", "read-max"],
            rows,
            title="Theorem 2 — k-writer max-register space",
        )
    )
    for k, lower, registers, result in rows:
        assert registers == lower == k
        assert result >= 1  # the collect saw at least one write
