"""Experiment B1 — Appendix B / Section 5: the CAS time-space tradeoff.

Algorithm 1 is space-optimal (one CAS) but its write-max loop pays one
iteration per intervening larger value — time complexity grows with the
value domain traffic, whereas the k-register collect construction does a
constant two phases.  The bench measures Algorithm 1 loop iterations as a
function of the number of monotone updates, demonstrating the tradeoff
the paper's discussion highlights.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.cas_maxreg import SingleCASMaxRegister
from repro.core.collect_maxreg import CollectMaxRegister
from repro.sim.scheduling import RandomScheduler


def _cas_iterations(n_updates, seed=0):
    mreg = SingleCASMaxRegister(initial_value=0, scheduler=RandomScheduler(seed))
    client = mreg.add_client()
    for value in range(1, n_updates + 1):
        client.enqueue("write_max", value)
    assert mreg.system.run_to_quiescence(max_steps=2_000_000).satisfied
    return mreg.total_iterations


def _collect_triggers(n_updates, k=4, seed=0):
    mreg = CollectMaxRegister(k=k, initial_value=0, scheduler=RandomScheduler(seed))
    writer = mreg.add_writer(0)
    for value in range(1, n_updates + 1):
        writer.enqueue("write_max", value)
    assert mreg.system.run_to_quiescence(max_steps=2_000_000).satisfied
    return len(mreg.kernel.ops)


def test_cas_time_complexity(benchmark):
    def sweep():
        return [
            (
                n_updates,
                _cas_iterations(n_updates),
                _collect_triggers(n_updates),
            )
            for n_updates in (1, 2, 4, 8, 16, 32)
        ]

    rows = benchmark(sweep)
    emit(
        render_table(
            [
                "monotone updates",
                "Alg. 1 CAS loop iterations",
                "collect-construction triggers",
            ],
            [list(row) for row in rows],
            title="Appendix B — time complexity of the single-CAS max-register",
        )
    )
    # Iterations grow linearly with updates (2 per uncontended update),
    # never fewer than one per update; space stays at one object.
    for n_updates, iterations, collect_ops in rows:
        assert n_updates <= iterations <= 2 * n_updates
        assert collect_ops <= 2 * n_updates  # one write per update max


def test_cas_contention_inflates_iterations(benchmark):
    """With interleaved writers the loop retries: iterations exceed the
    uncontended 2-per-write, up to the intervening-value bound."""

    def contended(seed=3):
        mreg = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(seed)
        )
        clients = [mreg.add_client() for _ in range(4)]
        for index, client in enumerate(clients):
            for step in range(4):
                client.enqueue("write_max", 1 + index + 4 * step)
        assert mreg.system.run_to_quiescence(max_steps=2_000_000).satisfied
        return mreg.total_iterations

    iterations = benchmark(contended)
    emit(
        f"Appendix B — contended single-CAS max-register: 16 writes by 4"
        f" clients took {iterations} loop iterations"
    )
    assert iterations >= 16  # at least one per write
