"""Experiment TH8 — Theorem 8: no adaptivity to point contention.

Regenerates the non-adaptivity argument as a measured series: along the
Lemma 1 runs the point contention stays 1 (writes are sequential) while
resource consumption (covered registers, hence registers that must exist)
grows linearly with the number of writers — no function of contention can
bound it.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation


def _series(k, n, f):
    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    runner = Lemma1Runner(factory, k=k, f=f)
    runner.run()
    return runner


def test_theorem8_non_adaptivity(benchmark):
    k, n, f = 6, 9, 2
    runner = benchmark(_series, k, n, f)
    rows = [
        [r.index, r.point_contention, r.covered, r.covered + 0]
        for r in runner.reports
    ]
    emit(
        render_table(
            [
                "writes so far",
                "point contention",
                "covered registers",
                "resource floor",
            ],
            rows,
            title=(
                f"Theorem 8 — resource growth at constant contention"
                f" (k={k}, n={n}, f={f})"
            ),
        )
    )
    contentions = [row[1] for row in rows]
    covered = [row[2] for row in rows]
    assert set(contentions) == {1}
    # Strictly increasing by f each write while contention is constant:
    # no function M(PntCont) can bound consumption.
    assert all(b - a == f for a, b in zip([0] + covered, covered))
