"""Experiment ENG — the parallel experiment engine itself.

Runs a simulating grid (B1 sharded over update_counts) three ways — serial,
``jobs=2``, and warm-cache — and tabulates wall-clock, kernel steps and
cache hits.  The qualitative claims: all three produce byte-identical
tables, and the warm-cache pass simulates zero kernel steps.

Wall-clock parallel speedup is *not* asserted: the cells are small
enough that fork/pickle overhead can dominate on shared CI runners.
The table records it so the trajectory is visible in ``results.txt``.

``BENCH_ENGINE_SMOKE=1`` shrinks the grid (CI smoke mode).
"""

import os
import time

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.exec import ResultCache, run_experiment_grid

SMOKE = os.environ.get("BENCH_ENGINE_SMOKE", "") not in ("", "0")
UPDATES = (4, 8, 16) if SMOKE else (4, 8, 16, 32, 64, 128)
KWARGS = {"update_counts": UPDATES}


def _timed(jobs, cache):
    start = time.perf_counter()
    merged, report = run_experiment_grid("B1", KWARGS, jobs=jobs, cache=cache)
    return merged, report, time.perf_counter() - start


def test_engine_modes_agree_and_cache_skips_simulation(tmp_path):
    cache_root = tmp_path / "cache"

    serial, serial_report, serial_secs = _timed(1, None)
    parallel, parallel_report, parallel_secs = _timed(
        2, ResultCache(cache_root)
    )
    cached, cached_report, cached_secs = _timed(1, ResultCache(cache_root))

    rows = [
        ["serial", len(serial_report.outcomes), serial_report.total_steps,
         serial_report.cache_hits, f"{serial_secs:.3f}"],
        ["jobs=2", len(parallel_report.outcomes),
         parallel_report.total_steps, parallel_report.cache_hits,
         f"{parallel_secs:.3f}"],
        ["warm cache", len(cached_report.outcomes),
         cached_report.total_steps, cached_report.cache_hits,
         f"{cached_secs:.3f}"],
    ]
    emit(
        render_table(
            ["mode", "cells", "kernel steps", "cache hits", "seconds"],
            rows,
            title=f"ENG: engine modes on B1, updates in {list(UPDATES)}",
        )
    )

    assert parallel.render() == serial.render()
    assert cached.render() == serial.render()
    assert parallel_report.total_steps == serial_report.total_steps > 0
    assert cached_report.total_steps == 0
    assert cached_report.cache_hits == len(UPDATES)
    assert not (
        serial_report.failed or parallel_report.failed or cached_report.failed
    )
