"""Experiment MULTI — consolidation: many registers on one fleet.

Per-server storage is the sum over co-hosted registers, so consolidation
walks straight into Theorem 7's capacity regime: with m objects of k
writers each on n = 2f+1 servers, each server stores m*k registers.  The
bench measures the storage ledger and operation costs as m grows, and
cross-checks the ledger against the closed forms.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.multi import MultiRegisterDeployment
from repro.sim.scheduling import RandomScheduler


def _measure(m, k, n, f, seed=0):
    deployment = MultiRegisterDeployment(
        m=m, k=k, n=n, f=f, scheduler=RandomScheduler(seed)
    )
    views = [deployment.register(i) for i in range(m)]
    writers = [view.add_writer(0) for view in views]
    readers = [view.add_reader() for view in views]
    for i, writer in enumerate(writers):
        writer.enqueue("write", f"v{i}")
    assert deployment.system.run_to_quiescence(max_steps=2_000_000).satisfied
    for reader in readers:
        reader.enqueue("read")
    assert deployment.system.run_to_quiescence(max_steps=2_000_000).satisfied
    max_load = max(deployment.storage_profile().values())
    return deployment.total_registers, max_load, deployment.kernel.time


def test_consolidation_scaling(benchmark):
    k, n, f = 2, 5, 2
    per_register = bounds.register_upper_bound(k, n, f)

    def sweep():
        rows = []
        for m in (1, 2, 4, 8):
            total, max_load, steps = _measure(m, k, n, f)
            rows.append([m, total, max_load, steps])
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["registers m", "base registers", "max/server", "steps (1 op each)"],
            rows,
            title=(
                f"Consolidation — m registers sharing n={n} servers"
                f" (k={k}, f={f}; {per_register} base registers each)"
            ),
        )
    )
    for m, total, max_load, _steps in rows:
        assert total == m * per_register
        # Balanced: per-server load is the fair share (total/n each).
        assert max_load == m * per_register // n
        # Theorem 7 consistency: this fleet supports these registers only
        # because each server's capacity is at least the ledger says.
        assert bounds.servers_needed_bounded_storage(
            m * k, f, max_load
        ) <= max(n, 2 * f + 1) + f + 1
