"""Experiment TH6 — Theorem 6: k registers per server at n = 2f+1.

Runs the extended Lemma 1 construction against the per-writer-column
emulation at the minimum server count and shows every non-F server
accumulating >= k covered registers, for every choice of F — hence every
server must store at least k registers.
"""

import itertools

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation
from repro.core.lemma1 import Lemma1Runner
from repro.sim.ids import ServerId


def _max_covered_per_server(k, f, F):
    n = 2 * f + 1

    def factory(scheduler):
        return ReplicatedMaxRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    runner = Lemma1Runner(factory, k=k, f=f, F=F)
    runner.run()
    return runner.reports[-1].per_server_covered


def test_theorem6_every_F_choice(benchmark):
    k, f = 3, 1
    n = 2 * f + 1

    def all_choices():
        rows = []
        for F_tuple in itertools.combinations(range(n), f + 1):
            F = {ServerId(i) for i in F_tuple}
            covered = _max_covered_per_server(k, f, F)
            for server_index in range(n):
                sid = ServerId(server_index)
                rows.append(
                    [
                        "{" + ",".join(f"s{i}" for i in sorted(F_tuple)) + "}",
                        str(sid),
                        "yes" if sid in F else "no",
                        covered.get(sid, 0),
                    ]
                )
        return rows

    rows = benchmark(all_choices)
    emit(
        render_table(
            ["F", "server", "in F", "covered registers"],
            rows,
            title=(
                f"Theorem 6 — covered registers per server at n=2f+1"
                f" (k={k}, f={f}; bound: k={k} on every non-F server)"
            ),
        )
    )
    # Every non-F server reaches k covered registers for every F — so any
    # server (being outside some F) must store >= k registers.
    for F_label, server, in_F, covered in rows:
        if in_F == "no":
            assert covered >= k, (F_label, server, covered)
        else:
            assert covered == 0
