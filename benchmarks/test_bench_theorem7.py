"""Experiment TH7 — Theorem 7: servers needed under bounded storage.

Regenerates the server-count frontier ceil(kf/m) + f + 1 for per-server
capacity m, and cross-checks it against actual Algorithm 2 layouts: with
n at least the frontier, a layout exists whose per-server storage respects
m (for m >= the balanced load); below the frontier no WS-Safe
obstruction-free emulation exists at all.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.layout_opt import capacitated_layout


def _frontier(k, f, capacities):
    rows = []
    for m in capacities:
        plan = capacitated_layout(k, f, m)
        rows.append(
            [
                m,
                plan.theorem7_floor,
                plan.servers,
                plan.total_registers,
                plan.max_per_server,
                plan.slack_over_floor,
            ]
        )
    return rows


def test_theorem7_frontier(benchmark):
    k, f = 6, 2
    capacities = [1, 2, 3, 4, 6, 12, 24]
    rows = benchmark(_frontier, k, f, capacities)
    emit(
        render_table(
            [
                "capacity m",
                "Thm 7 floor",
                "achieved n",
                "layout registers",
                "max regs/server",
                "slack",
            ],
            rows,
            title=(
                f"Theorem 7 — server frontier under bounded storage"
                f" (k={k}, f={f}; achieved = smallest valid Algorithm 2"
                " deployment)"
            ),
        )
    )
    floors = [row[1] for row in rows]
    achieved = [row[2] for row in rows]
    # Floors anti-monotone in capacity; achieved n never below the floor,
    # capacity always respected.
    assert all(a >= b for a, b in zip(floors, floors[1:]))
    assert all(a >= b for a, b in zip(achieved, achieved[1:]))
    for m, floor, n, _total, max_load, slack in rows:
        assert n >= floor >= 2 * f  # within Theorem 5/7 territory
        assert max_load <= m
        assert slack >= 0


def test_theorem7_matches_lemma1_accounting(benchmark):
    """The frontier follows from Lemma 1: kf covered registers must fit on
    the |S| - (f+1) servers outside F, each holding at most m."""

    def check():
        violations = 0
        for k in range(1, 10):
            for f in (1, 2, 3):
                for m in range(1, 3 * k):
                    n = bounds.servers_needed_bounded_storage(k, f, m)
                    # (n - (f+1)) * m must cover the kf registers.
                    if (n - (f + 1)) * m < k * f:
                        violations += 1
        return violations

    violations = benchmark(check)
    emit(f"Theorem 7 accounting check — violations: {violations}")
    assert violations == 0
