"""Experiment KV — the sharded service under open-loop Zipfian load.

Drives ``repro loadgen`` end to end and records the report as
``benchmarks/BENCH_kv.json``: a 3-shard KV namespace, each shard an
independent emulated register fleet served by its own process
(``--transport spawn``: one ``repro serve`` subprocess per replica,
real sockets, real SIGKILL), with thousands of concurrent sessions
offering Poisson arrivals over a Zipfian key universe while the fault
gauntlet runs — partition, heal, replica crash (SIGKILL), restart.

The numbers that matter are the *ratios*, which are machine-portable
and gated by ``scripts/ci_bench_smoke.py``:

* ``sustained_fraction`` — completed / offered operations.  An
  open-loop generator never slows down for the service, so any
  sustained deficit means the cluster fell behind or lost operations
  across the gauntlet.
* ``audit.ok_fraction`` — per-key consistency (linearizability for the
  quorum substrates) over every key's full history, faults included.

Throughput and p50/p95/p99 latency are recorded as context; absolute
numbers are not comparable across machines.

The fleet runs n=4, f=1: a SIGKILLed replica restarts *empty*, and
amnesia consumes failure budget beyond the crash-stop allowance — every
read quorum must intersect every write quorum in a non-amnesiac server,
hence n >= 2f+2 (``repro loadgen`` refuses the gauntlet at n=2f+1).

``BENCH_KV_SMOKE=1`` shrinks the run (shorter duration, fewer
sessions) but keeps the same topology and gauntlet.
"""

import json
import os

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.cli import main as repro_main

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_kv.json")

SMOKE = os.environ.get("BENCH_KV_SMOKE", "") not in ("", "0")

DURATION = 3.0 if SMOKE else 8.0
RATE = 150.0 if SMOKE else 400.0
SESSIONS = 300 if SMOKE else 1200
KEYS = 32 if SMOKE else 64

#: the open-loop generator must complete nearly everything it offers
#: across the gauntlet (the drain window lets in-flight ops finish).
MIN_SUSTAINED = 0.99


class TestShardedKVLoad:
    def test_loadgen_gauntlet_records_artifact(self):
        code = repro_main(
            [
                "loadgen",
                "--transport", "spawn",
                "--codec", "binary",
                "--scenario", "gauntlet",
                "--shards", "3",
                "-n", "4",
                "-f", "1",
                "--rate", str(RATE),
                "--duration", str(DURATION),
                "--sessions", str(SESSIONS),
                "--keys", str(KEYS),
                "--seed", "7",
                "--min-sustained", str(MIN_SUSTAINED),
                "--out", ARTIFACT_PATH,
            ]
        )
        assert code == 0, "loadgen exited nonzero (audit or sustain gate)"

        with open(ARTIFACT_PATH, encoding="utf-8") as handle:
            report = json.load(handle)

        assert report["benchmark"] == "kv_loadgen"
        assert report["params"]["sessions"] == SESSIONS
        assert report["transport"] == "spawn"
        # All four gauntlet faults fired while traffic was flowing.
        assert [s["name"] for s in report["scenarios"]] == [
            "partition", "heal", "crash", "restart",
        ]
        assert report["sustained_fraction"] >= MIN_SUSTAINED
        assert report["audit"]["all_ok"], report["audit"]
        assert report["completed_ops"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]

        emit(
            render_table(
                ["metric", "value"],
                [
                    ["offered ops", report["offered_ops"]],
                    ["completed ops", report["completed_ops"]],
                    ["sustained", f"{report['sustained_fraction']:.4f}"],
                    ["throughput ops/s", report["throughput_ops_s"]],
                    ["p50 ms", latency["p50"]],
                    ["p95 ms", latency["p95"]],
                    ["p99 ms", latency["p99"]],
                    [
                        "audit ok",
                        f"{report['audit']['ok']}/{report['audit']['keys']}",
                    ],
                ],
                title=(
                    f"Sharded KV: 3 shards x (n=4, f=1), {SESSIONS}"
                    f" sessions, spawn transport, fault gauntlet"
                ),
            )
        )
