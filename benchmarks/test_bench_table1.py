"""Experiment T1 — Table 1: base objects used by each emulation.

Regenerates the paper's headline table: for each base object type, the
lower bound (closed form) and the upper bound *as measured* on our
deployed emulations.  The qualitative claims asserted:

* max-register and CAS emulations use 2f+1 objects, independent of k;
* the register emulation uses kf + ceil(k/z)(f+1) objects — linear in k;
* registers are separated from max-register/CAS by (roughly) a factor k,
  while max-register and CAS are not separated at all.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


def _measure_all(k, n, f):
    """Deploy all three emulations, run one write each, count objects.

    The RMW emulations need only 2f+1 of the n servers (their Table 1
    bound is independent of n), so they are deployed at the minimum; the
    register emulation uses all n servers, which *reduces* its cost.
    """
    scheduler = RandomScheduler(0)
    maxreg = ABDEmulation(n=2 * f + 1, f=f, scheduler=RandomScheduler(0))
    cas = CASABDEmulation(n=2 * f + 1, f=f, scheduler=RandomScheduler(0))
    registers = WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)
    for emulation in (maxreg, cas, registers):
        writer = emulation.add_writer(0)
        writer.enqueue("write", "probe")
        assert emulation.system.run_to_quiescence(max_steps=500_000).satisfied
    return {
        "max-register": maxreg.total_objects,
        "cas": cas.total_objects,
        "register": registers.layout.total_registers,
    }


def test_table1(benchmark):
    k, n, f = 4, 7, 2
    measured = benchmark(_measure_all, k, n, f)

    rows = []
    for base in ("max-register", "cas", "register"):
        row = bounds.table1_row(base, k, n, f)
        rows.append(
            [base, k, n, f, row["lower"], row["upper"], measured[base]]
        )
    emit(
        render_table(
            ["base object", "k", "n", "f", "lower", "upper", "measured"],
            rows,
            title=f"Table 1 — resource complexity (k={k}, n={n}, f={f})",
        )
    )

    # Paper shape: max-register == CAS == 2f+1; register row matches the
    # upper bound and dominates by roughly a factor of k.
    assert measured["max-register"] == 2 * f + 1
    assert measured["cas"] == 2 * f + 1
    assert measured["register"] == bounds.register_upper_bound(k, n, f)
    assert measured["register"] >= bounds.register_lower_bound(k, n, f)
    assert measured["register"] >= k * f  # the separation by factor ~k


def test_table1_k_sweep(benchmark):
    """Space vs k: registers grow linearly, the RMW types stay flat."""
    n, f = 7, 2

    def sweep():
        return [
            (
                k,
                2 * f + 1,
                bounds.register_lower_bound(k, n, f),
                WSRegisterEmulation(k=k, n=n, f=f).layout.total_registers,
            )
            for k in range(1, 9)
        ]

    series = benchmark(sweep)
    emit(
        render_table(
            ["k", "max-reg/CAS", "register lower", "register measured"],
            series,
            title=f"Table 1 sweep — object count vs k (n={n}, f={f})",
        )
    )
    flat = [row[1] for row in series]
    growing = [row[3] for row in series]
    assert len(set(flat)) == 1
    assert all(b > a for a, b in zip(growing, growing[1:]))
    # Lower bound respected everywhere.
    assert all(row[3] >= row[2] for row in series)
