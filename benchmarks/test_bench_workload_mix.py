"""Experiment MIX — workload-mix costs across substrates.

Table 1 prices *space*; this bench prices *operations* under different
read/write mixes, completing the practical picture: the register
emulation's reads scan every register (cost grows with k), while the RMW
substrates' reads touch one object per server.  Benchmarks a read-heavy
and a write-heavy mix on all three substrates.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler
from repro.workloads.generators import (
    read_heavy_workload,
    write_sequential_workload,
)
from repro.workloads.runner import run_workload


def _profile(substrate_name, factory, workload):
    emulation = factory()
    report = run_workload(emulation, workload)
    assert report.completed_rounds == len(workload.rounds)
    return [
        substrate_name,
        workload.description,
        report.resource_consumption,
        round(report.steps.mean_triggers(), 1),
        round(report.steps.mean_duration(), 1),
    ]


def test_workload_mix(benchmark):
    k, n, f = 2, 5, 2
    factories = {
        "max-register": lambda: ABDEmulation(
            n=n, f=f, scheduler=RandomScheduler(0)
        ),
        "cas": lambda: CASABDEmulation(
            n=n, f=f, scheduler=RandomScheduler(0)
        ),
        "register": lambda: WSRegisterEmulation(
            k=k, n=n, f=f, scheduler=RandomScheduler(0)
        ),
    }
    workloads = {
        "write-heavy": write_sequential_workload(
            k=k, writes_per_writer=3, reads_between=0, n_readers=1
        ),
        "read-heavy": read_heavy_workload(
            k=k, n_writes=2, reads_per_write=4, n_readers=1
        ),
    }

    def run_all():
        rows = []
        for mix_name, workload in workloads.items():
            for substrate, factory in factories.items():
                row = _profile(substrate, factory, workload)
                row[1] = mix_name
                rows.append(row)
        return rows

    rows = benchmark(run_all)
    emit(
        render_table(
            ["substrate", "mix", "objects used", "triggers/op", "steps/op"],
            rows,
            title=f"Workload mixes across substrates (k={k}, n={n}, f={f})",
        )
    )
    by_key = {(row[0], row[1]): row for row in rows}
    for mix in ("write-heavy", "read-heavy"):
        # Space ordering always: registers use more objects.
        assert (
            by_key[("register", mix)][2]
            > by_key[("max-register", mix)][2]
        )
    # The CAS substrate pays Algorithm 1's loop on top of ABD.
    assert (
        by_key[("cas", "write-heavy")][3]
        >= by_key[("max-register", "write-heavy")][3]
    )
