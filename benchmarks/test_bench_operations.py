"""Experiment OPS — operation cost comparison across the three substrates.

Not a table in the paper, but the flip side of Table 1 that Section 5's
discussion motivates: space-cheaper base objects (RMW) also give cheaper
operations, while the register emulation pays for its space bound with
larger collects.  Measures mean low-level triggers and mean step-duration
per high-level operation under an identical write-sequential workload.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler
from repro.workloads.generators import write_sequential_workload
from repro.workloads.runner import run_workload


def _profile(name, emulation_factory, k):
    emulation = emulation_factory()
    workload = write_sequential_workload(
        k=k, writes_per_writer=2, reads_between=1, n_readers=1
    )
    report = run_workload(emulation, workload)
    assert report.completed_rounds == len(workload.rounds)
    return [
        name,
        report.resource_consumption,
        round(report.steps.mean_triggers(), 1),
        round(report.steps.mean_duration(), 1),
        report.max_covered,
    ]


def test_operation_costs(benchmark):
    k, n, f = 2, 5, 2

    def run_all():
        return [
            _profile(
                "max-register (ABD)",
                lambda: ABDEmulation(n=n, f=f, scheduler=RandomScheduler(0)),
                k,
            ),
            _profile(
                "cas (ABD over Alg. 1)",
                lambda: CASABDEmulation(n=n, f=f, scheduler=RandomScheduler(0)),
                k,
            ),
            _profile(
                "register (Alg. 2)",
                lambda: WSRegisterEmulation(
                    k=k, n=n, f=f, scheduler=RandomScheduler(0)
                ),
                k,
            ),
        ]

    rows = benchmark(run_all)
    emit(
        render_table(
            [
                "substrate",
                "objects used",
                "mean triggers/op",
                "mean steps/op",
                "max covered",
            ],
            rows,
            title=f"Operation costs across substrates (k={k}, n={n}, f={f})",
        )
    )
    by_name = {row[0]: row for row in rows}
    # Space ordering (Table 1): RMW substrates use n objects, registers use
    # k(2f+1) at n=2f+1.
    assert by_name["max-register (ABD)"][1] == n
    assert by_name["cas (ABD over Alg. 1)"][1] == n
    assert by_name["register (Alg. 2)"][1] >= k * f + f + 1
    # Time ordering: the CAS emulation pays extra round trips vs the native
    # max-register (Algorithm 1's loop), the register emulation reads every
    # register so its per-op triggers dominate ABD's.
    assert (
        by_name["cas (ABD over Alg. 1)"][2]
        >= by_name["max-register (ABD)"][2]
    )
    assert (
        by_name["register (Alg. 2)"][2]
        >= by_name["max-register (ABD)"][2]
    )
