"""Experiment W — wire-codec and socket-pipelining throughput.

Two sections, both recorded to ``benchmarks/BENCH_wire.json``:

* ``wire`` — the socket backend against a real distributed cluster:
  one ``repro serve`` process per sim server, synthetic low-level ops
  pushed straight through :class:`AsyncioTransport` (no kernel
  stepping in the way), for each codec under two send disciplines.
  ``per-leg`` reconstructs the pre-pipelining transport: one
  event-loop wakeup + socket write per op, one completion handled per
  idle wait — every op pays a full cross-process round trip before
  the next one starts.  ``pipelined`` is the shipped transport:
  frames coalesce in the outbox into one write per connection per
  loop tick, responses drain in bursts, and ``WINDOW`` ops ride each
  connection concurrently.  Ops round-robin over one object per
  server, as quorum broadcasts do.  Latency is per-op: measured
  directly in per-leg mode, amortized over the window in pipelined
  mode.  (The serve processes always run the shipped server loop;
  its batched flow-control drain is a no-op for the serial per-leg
  exchange, so the baseline is not penalized by it.)
* ``emulation`` — the same comparison end to end: a deep ABD workload
  (every round enqueued up front) through the full kernel over
  self-hosted sockets, with the per-leg client *and* the per-frame
  server drain reconstructed for the baseline.  The end-to-end ratio
  is much smaller than the wire-level one — the quorum structure
  serializes phases, so the kernel can only keep a few ops in
  flight — and is recorded as context, not as the headline.

The acceptance bar lives on the ``wire`` section: pipelined binary
must sustain at least ``MIN_PIPELINED_BINARY_SPEEDUP`` × the per-leg
JSON ops/sec.  ``BENCH_WIRE_SMOKE=1`` shrinks the run and loosens the
bars for CI smoke mode.
"""

import contextlib
import json
import os
import queue
import re
import subprocess
import sys
import time

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.emulation import EmulationSpec
from repro.net.asyncio_transport import AsyncioTransport, ReplicaServer
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.values import TSVal

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_wire.json")
SRC_PATH = os.path.join(os.path.dirname(__file__), "..", "src")

SMOKE = os.environ.get("BENCH_WIRE_SMOKE", "") not in ("", "0")
#: ops per wire-section measurement (per-leg pays a full cross-process
#: round trip per op, so it gets a smaller count to keep wall-clock
#: sane).
WIRE_OPS_PIPELINED = 2_000 if SMOKE else 6_000
WIRE_OPS_PER_LEG = 200 if SMOKE else 600
#: ops in flight per measurement window in pipelined mode.  The shipped
#: transport imposes no window — the kernel sends as fast as it
#: triggers — so this only bounds how much the bench queues at once.
WINDOW = 512
N_SERVERS = 3
REPEATS = 2 if SMOKE else 3
#: emulation-section workload: rounds enqueued up front, single drain.
EMU_ROUNDS = 10 if SMOKE else 30
EMU_READERS = 5

#: acceptance bars (wire section; loose under smoke — CI runners share
#: noisy neighbours and their scheduling latencies swing wildly).
MIN_PIPELINED_BINARY_SPEEDUP = 3.0 if SMOKE else 10.0
MIN_PIPELINING_SPEEDUP = 1.5 if SMOKE else 3.0
#: emulation-section sanity bar: end-to-end must still clearly win.
MIN_EMULATION_SPEEDUP = 1.2 if SMOKE else 1.5


# -- the per-leg baseline, reconstructed ------------------------------------


class _PerLegReplicaServer(ReplicaServer):
    """The pre-pipelining server loop: one drain per response frame."""

    async def handle(self, reader, writer) -> None:
        codec = self.codec
        try:
            while True:
                frame = await codec.read_frame(reader)
                if frame is None:
                    break
                op = codec.decode_request(frame)
                result = self.replicas[op.object_id.index].apply(op)
                self.requests_served += 1
                writer.write(codec.encode_response(op.op_id.value, result))
                await writer.drain()
        finally:
            writer.close()


class _PerLegTransport(AsyncioTransport):
    """The pre-pipelining client: one loop wakeup + write per op, one
    completion handled per idle wait (no burst drain)."""

    server_class = _PerLegReplicaServer

    def send_request(self, op) -> None:
        if not self._started:
            self.start()
        server_index = self._kernel.object_map.server_of(op.object_id).index
        self._inflight.add(op.op_id.value)
        data = self.codec.encode_request(op)
        self._loop.call_soon_threadsafe(
            self._writers[server_index].write, data
        )

    def flush_idle(self) -> bool:
        if not self._inflight:
            return False
        try:
            frame = self._completions.get(timeout=self.idle_timeout)
        except queue.Empty:
            return False
        self._complete(frame)
        return True


# -- wire section: the socket backend against a serve cluster ----------------


@contextlib.contextmanager
def _serve_cluster(codec_name):
    """One ``repro serve`` process per server; yields their addresses."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (SRC_PATH, env.get("PYTHONPATH")) if path
    )
    procs = []
    addresses = []
    try:
        for server_index in range(N_SERVERS):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-u",
                    "-m",
                    "repro",
                    "serve",
                    "--server",
                    str(server_index),
                    "-n",
                    str(N_SERVERS),
                    "-f",
                    "1",
                    "--port",
                    "0",
                    "--codec",
                    codec_name,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            procs.append(proc)
            announce = proc.stdout.readline()
            match = re.search(r"on (\S+:\d+)", announce)
            assert match, f"server {server_index} did not come up: {announce!r}"
            addresses.append(match.group(1))
        yield tuple(addresses)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)


def _make_transport(transport_cls, codec_name, addresses=(), seed=0):
    """A bound transport over a real ABD placement, ready to drive.

    The emulation supplies the object map and the arrive() sink; its
    clients are never started, so the transport is the only moving
    part.  ``kernel.arrive`` tolerates op ids it never triggered (they
    are no-ops), which is what lets synthetic ops flow through the
    real completion path.
    """
    emulation = EmulationSpec.make(
        "abd", n=N_SERVERS, f=1, seed=seed
    ).build()
    transport = transport_cls(addresses=addresses, codec=codec_name)
    emulation.kernel.set_transport(transport)
    return emulation, transport


def _synthetic_ops(n_ops, object_ids):
    """WRITE_MAX ops round-robined over one object per server.

    Quorum protocols broadcast every phase to all servers, so the
    workload keeps every connection busy — per-leg mode serializes the
    round trips anyway, while pipelined mode overlaps them, exactly as
    the real kernel workload does."""
    return [
        LowLevelOp(
            op_id=OpId(index),
            client_id=ClientId(0),
            object_id=object_ids[index % len(object_ids)],
            kind=OpKind.WRITE_MAX,
            args=(TSVal(ts=index, wid=0, val=f"value-{index}"),),
            trigger_time=0,
        )
        for index in range(n_ops)
    ]


def _wire_run(transport_cls, codec_name, window, n_ops, addresses):
    """(ops/sec, p50 µs, p95 µs) for one codec × discipline."""
    emulation, transport = _make_transport(
        transport_cls, codec_name, addresses=addresses
    )
    object_ids = [
        server.object_ids[0]
        for server in emulation.kernel.object_map.servers
    ]
    ops = _synthetic_ops(n_ops, object_ids)
    latencies = []
    try:
        start = time.perf_counter()
        for index in range(0, n_ops, window):
            batch = ops[index : index + window]
            began = time.perf_counter()
            for op in batch:
                transport.send_request(op)
            while transport._inflight:
                assert transport.flush_idle(), "replica answer timed out"
            per_op = (time.perf_counter() - began) / len(batch)
            latencies.extend([per_op] * len(batch))
        elapsed = time.perf_counter() - start
    finally:
        transport.close()
    latencies.sort()
    return (
        n_ops / elapsed,
        latencies[len(latencies) // 2] * 1e6,
        latencies[int(len(latencies) * 0.95)] * 1e6,
    )


def _wire_best(transport_cls, codec_name, window, n_ops, addresses):
    best = (0.0, 0.0, 0.0)
    for _ in range(REPEATS):
        sample = _wire_run(
            transport_cls, codec_name, window, n_ops, addresses
        )
        if sample[0] > best[0]:
            best = sample
    return best


# -- emulation section: end-to-end through the kernel ------------------------


def _emulation_ops_per_sec(transport_cls, codec_name, seed=7):
    emulation, transport = _make_transport(
        transport_cls, codec_name, seed=seed
    )
    writer = emulation.add_writer(0)
    readers = [emulation.add_reader() for _ in range(EMU_READERS)]
    for round_index in range(EMU_ROUNDS):
        writer.enqueue("write", f"value-{round_index}")
        for reader in readers:
            reader.enqueue("read")
    try:
        start = time.perf_counter()
        result = emulation.system.run_to_quiescence(max_steps=2_000_000)
        elapsed = time.perf_counter() - start
        assert result.satisfied, f"deep ABD workload stalled: {result}"
        ops = len(emulation.kernel.ops)
    finally:
        transport.close()
    return ops / elapsed


def _emulation_best(transport_cls, codec_name):
    return max(
        _emulation_ops_per_sec(transport_cls, codec_name)
        for _ in range(REPEATS)
    )


def test_wire_throughput():
    artifact = {
        "benchmark": "wire_codec_pipelining",
        "mode": "smoke" if SMOKE else "full",
        "pipeline_window": WINDOW,
        "wire": {},
        "emulation": {},
    }
    rows = []
    for codec_name in ("json", "binary"):
        with _serve_cluster(codec_name) as addresses:
            for transport_cls, window, discipline in (
                (_PerLegTransport, 1, "per-leg"),
                (AsyncioTransport, WINDOW, "pipelined"),
            ):
                n_ops = (
                    WIRE_OPS_PER_LEG
                    if window == 1
                    else WIRE_OPS_PIPELINED
                )
                ops_per_sec, p50, p95 = _wire_best(
                    transport_cls, codec_name, window, n_ops, addresses
                )
                artifact["wire"][f"{discipline}-{codec_name}"] = {
                    "ops_per_sec": round(ops_per_sec),
                    "p50_us": round(p50, 1),
                    "p95_us": round(p95, 1),
                }
                rows.append(
                    [
                        codec_name,
                        discipline,
                        f"{ops_per_sec:,.0f}",
                        f"{p50:,.1f}",
                        f"{p95:,.1f}",
                    ]
                )
    baseline = artifact["wire"]["per-leg-json"]["ops_per_sec"]
    for numbers in artifact["wire"].values():
        numbers["vs_per_leg_json"] = round(
            numbers["ops_per_sec"] / baseline, 2
        )

    for label, transport_cls, codec_name in (
        ("per-leg-json", _PerLegTransport, "json"),
        ("pipelined-binary", AsyncioTransport, "binary"),
    ):
        ops_per_sec = _emulation_best(transport_cls, codec_name)
        artifact["emulation"][label] = {"ops_per_sec": round(ops_per_sec)}
    emulation_baseline = artifact["emulation"]["per-leg-json"]["ops_per_sec"]
    artifact["emulation"]["pipelined-binary"]["vs_per_leg_json"] = round(
        artifact["emulation"]["pipelined-binary"]["ops_per_sec"]
        / emulation_baseline,
        2,
    )

    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    emit(
        render_table(
            ["codec", "discipline", "ops/sec", "p50 µs", "p95 µs"],
            rows,
            title=(
                f"Wire codec × send discipline, {N_SERVERS}-process"
                " serve cluster"
                f" ({artifact['mode']} mode)"
            ),
        )
    )
    emit(
        "emulation (deep ABD, self-hosted sockets): per-leg-json"
        f" {emulation_baseline:,} ops/s ->"
        " pipelined-binary"
        f" {artifact['emulation']['pipelined-binary']['ops_per_sec']:,}"
        " ops/s"
        f" ({artifact['emulation']['pipelined-binary']['vs_per_leg_json']}x)"
    )

    headline = artifact["wire"]["pipelined-binary"]["vs_per_leg_json"]
    assert headline >= MIN_PIPELINED_BINARY_SPEEDUP, (
        f"pipelined binary is {headline}x per-leg JSON over sockets;"
        f" the bar is {MIN_PIPELINED_BINARY_SPEEDUP}x"
    )
    pipelining_only = artifact["wire"]["pipelined-json"]["vs_per_leg_json"]
    assert pipelining_only >= MIN_PIPELINING_SPEEDUP, (
        f"pipelining alone is worth only {pipelining_only}x"
    )
    emulation_speedup = artifact["emulation"]["pipelined-binary"][
        "vs_per_leg_json"
    ]
    assert emulation_speedup >= MIN_EMULATION_SPEEDUP, (
        f"end-to-end pipelined binary is only {emulation_speedup}x the"
        " per-leg JSON transport"
    )
