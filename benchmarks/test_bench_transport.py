"""Experiment T — transport-seam throughput (steps/sec).

Drives the same saturated WSRegister workload as the kernel hot-path
benchmark through the transport seam:

* ``baseline`` — the kernel's default-constructed
  :class:`~repro.net.transport.InProcTransport` (``active = False``: the
  run loop never pumps; this is the kernel hot path itself);
* ``inproc`` — the same transport built via
  ``TransportConfig.inproc().build()`` and installed with
  ``set_transport``, i.e. the configured path every ``EmulationSpec``
  takes;
* ``lossy-idle`` — :class:`~repro.net.lossy.LossyTransport` with an
  empty fault plan: every message goes through the heap/pump machinery
  but nothing is perturbed, isolating the cost of an *active* transport.
  The neutral-link fast path (no per-message fate stream is seeded when
  no rule can ever fire) is expected to keep this near the in-proc
  number, and the bar below enforces it;
* ``lossy-chaos`` — the same machinery with duplicates, reorders and
  delays enabled (no drops: a saturated run must stay live, and dropped
  requests would strand every client).

The acceptance bar is the transport extraction's perf contract: on the
medium (k=5, n=6, f=2) Figure 1 configuration, the configured ``inproc``
path may cost at most 5% of the baseline measured *in the same process*
(wall-clock numbers recorded in other sessions — including
``BENCH_kernel.json`` — are not machine-comparable; the recorded kernel
figure is carried in the artifact as context only).  The bar is what
catches the real regression class here: an ``InProcTransport`` that
accidentally turns ``active`` or grows per-step work.  Results go to
``benchmarks/BENCH_transport.json``.

``BENCH_TRANSPORT_SMOKE=1`` shrinks the run for CI smoke mode (the 5%
bar loosens to 15% — shared runners are noisy).
"""

import json
import os
import time

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.ws_register import WSRegisterEmulation
from repro.net import FaultPlan, TransportConfig, chaos_faults
from repro.sim.scheduling import RandomScheduler

ARTIFACT_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_transport.json"
)
KERNEL_ARTIFACT_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_kernel.json"
)

K, N, F = 5, 6, 2  # the medium Figure 1 configuration

SMOKE = os.environ.get("BENCH_TRANSPORT_SMOKE", "") not in ("", "0")
STEPS = 6_000 if SMOKE else 20_000
REPEATS = 2 if SMOKE else 4
#: the seam's perf contract: configured inproc vs same-process baseline.
MAX_INPROC_OVERHEAD = 0.15 if SMOKE else 0.05
#: the neutral-link fast path's contract: an empty-plan lossy run skips
#: fate-stream seeding entirely, so it must stay near the in-proc
#: number (it measured ~0.9x when the fast path landed; it was ~0.55x
#: without it).  Loose in smoke mode — shared runners are noisy.
MIN_LOSSY_IDLE_FRACTION = 0.3 if SMOKE else 0.65

TRANSPORTS = [
    ("baseline", None),
    ("inproc", TransportConfig.inproc()),
    ("lossy-idle", TransportConfig.lossy(FaultPlan(), seed=7)),
    (
        "lossy-chaos",
        TransportConfig.lossy(
            chaos_faults(drop=0.0, duplicate=0.05, reorder=0.3, max_delay=20),
            seed=7,
        ),
    ),
]


def _steps_per_sec(config, seed=7, readers=3):
    emu = WSRegisterEmulation(K, N, F, scheduler=RandomScheduler(seed))
    if config is not None:
        emu.kernel.set_transport(config.build())
    writer_handles = [emu.add_writer(index) for index in range(K)]
    reader_handles = [emu.add_reader() for _ in range(readers)]
    value = 0

    def refill(kernel):
        nonlocal value
        for writer in writer_handles:
            if writer.idle and not writer.program:
                writer.enqueue("write", value)
                value += 1
        for reader in reader_handles:
            if reader.idle and not reader.program:
                reader.enqueue("read")
        return False  # never satisfied: run for exactly STEPS steps

    start = time.perf_counter()
    result = emu.kernel.run(max_steps=STEPS, until=refill)
    elapsed = time.perf_counter() - start
    assert result.steps == STEPS
    return result.steps / elapsed


def _measure_all():
    """Best-of-``REPEATS`` per transport, rounds interleaved.

    Machine speed drifts over a multi-second benchmark (shared boxes,
    frequency scaling); measuring each transport as a sequential block
    would fold that drift into the ratios.  Interleaving gives every
    transport a sample in every time slice, so the best-of ratios
    compare like with like.  One untimed warmup run absorbs import and
    allocator warmup.
    """
    _steps_per_sec(None)
    best = {label: 0.0 for label, _ in TRANSPORTS}
    for _ in range(REPEATS):
        for label, config in TRANSPORTS:
            best[label] = max(best[label], _steps_per_sec(config))
    return best


def test_transport_throughput():
    with open(KERNEL_ARTIFACT_PATH, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    recorded_medium = recorded["configs"]["medium"][
        "incremental_steps_per_sec"
    ]

    artifact = {
        "benchmark": "transport_seam",
        "mode": "smoke" if SMOKE else "full",
        "config": {"k": K, "n": N, "f": F},
        "steps_per_transport": STEPS,
        "recorded_kernel_steps_per_sec": recorded_medium,  # context only
        "transports": {},
    }
    throughputs = _measure_all()
    rows = []
    for label, _ in TRANSPORTS:
        throughput = throughputs[label]
        artifact["transports"][label] = {
            "steps_per_sec": round(throughput),
            "vs_baseline": round(throughput / throughputs["baseline"], 3),
        }
        rows.append(
            [
                label,
                f"{throughput:,.0f}",
                f"{throughput / throughputs['baseline']:.2f}x",
            ]
        )
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    emit(
        render_table(
            ["transport", "steps/sec", "vs baseline"],
            rows,
            title=(
                f"Transport seam @ k={K}, n={N}, f={F}"
                f" — steps/sec ({artifact['mode']} mode)"
            ),
        )
    )

    inproc = artifact["transports"]["inproc"]["vs_baseline"]
    assert inproc >= 1.0 - MAX_INPROC_OVERHEAD, (
        f"configured inproc throughput is {inproc:.2f}x baseline; the"
        f" transport seam may cost at most {MAX_INPROC_OVERHEAD:.0%}"
    )
    lossy_idle = artifact["transports"]["lossy-idle"]["vs_baseline"]
    assert lossy_idle >= MIN_LOSSY_IDLE_FRACTION, (
        f"empty-plan lossy throughput collapsed to {lossy_idle:.2f}x"
        " baseline; the pump machinery regressed"
    )
