"""Experiment F2/L1 — Figure 2 / Lemma 1: the adversarial covering runs.

Regenerates the lower-bound construction: k write-sequential high-level
writes under the adversary Ad_i, with the covering register count after
each write.  Asserts Lemma 1's claims (a)-(e):

* >= i*f registers covered after the i-th write (here exactly i*f against
  Algorithm 2 — the bound is tight),
* no covered register on the protected f+1 servers F,
* each write triggers on > 2f fresh servers (Lemma 4),
* Lemma 2's invariants hold at every step (checked inline).
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation


def _run_construction(k, n, f):
    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    runner = Lemma1Runner(factory, k=k, f=f)
    runner.run()
    return runner


def test_lemma1_covering_growth(benchmark):
    k, n, f = 5, 7, 2
    runner = benchmark(_run_construction, k, n, f)
    rows = [
        [
            report.index,
            report.covered,
            report.index * f,
            report.covered_new,
            report.covered_servers_in_F,
            report.triggered_fresh_servers,
            report.point_contention,
        ]
        for report in runner.reports
    ]
    emit(
        render_table(
            [
                "write i",
                "|Cov(t_i)|",
                "bound i*f",
                "newly covered",
                "covered on F",
                "fresh servers",
                "point contention",
            ],
            rows,
            title=(
                f"Lemma 1 / Figure 2 — adversarial covering growth"
                f" (k={k}, n={n}, f={f}, Algorithm 2 as the emulation)"
            ),
        )
    )
    runner.assert_all_claims()
    assert runner.covered_growth() == [i * f for i in range(1, k + 1)]
    assert runner.checker.checks > 0


def test_lemma1_at_minimum_servers(benchmark):
    """At n = 2f+1 the construction pins k registers on each non-F server
    (the Theorem 6 regime)."""
    k, f = 3, 2
    n = 2 * f + 1
    runner = benchmark(_run_construction, k, n, f)
    runner.assert_all_claims()
    final = runner.reports[-1].per_server_covered
    rows = [
        [str(server_id), count, k]
        for server_id, count in sorted(final.items())
    ]
    emit(
        render_table(
            ["server", "covered registers", "Theorem 6 bound"],
            rows,
            title=f"Lemma 1 at n=2f+1 (k={k}, f={f}) — per-server covering",
        )
    )
    assert all(count >= k for count in final.values())
