"""Benchmark harness helpers.

Every bench prints the paper-shaped table it regenerates (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserts the qualitative
claims.  ``emit`` also appends each table to ``benchmarks/results.txt`` so
a plain ``pytest benchmarks/ --benchmark-only`` leaves the numbers on disk
for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def emit(text: str) -> None:
    """Print a table and append it to the results file."""
    print()
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield
