"""Experiment TH1 — Theorem 1: register cost vs the number of servers.

Regenerates the n-sweep implicit in Theorem 1 and Section 3's discussion:
the register bounds decrease with n (up to the saturation point
n = kf+f+1) and coincide with the upper bound at n = 2f+1 and at
saturation.  Measured values come from actually constructing Algorithm 2
layouts.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.ws_register import WSRegisterEmulation


def _sweep(k, f, n_max):
    rows = []
    for n in range(2 * f + 1, n_max + 1):
        lower = bounds.register_lower_bound(k, n, f)
        upper = bounds.register_upper_bound(k, n, f)
        measured = WSRegisterEmulation(k=k, n=n, f=f).layout.total_registers
        rows.append([n, lower, upper, measured, upper - lower])
    return rows


def test_theorem1_n_sweep(benchmark):
    k, f = 4, 2
    n_max = bounds.saturation_n(k, f) + 2
    rows = benchmark(_sweep, k, f, n_max)
    emit(
        render_table(
            ["n", "lower", "upper", "measured (Alg. 2)", "gap"],
            rows,
            title=f"Theorem 1 — register bounds vs n (k={k}, f={f})",
        )
    )

    lowers = [row[1] for row in rows]
    uppers = [row[2] for row in rows]
    measureds = [row[3] for row in rows]

    # Measured always equals the Theorem 3 upper bound.
    assert measureds == uppers
    # Both bounds non-increasing in n.
    assert all(a >= b for a, b in zip(lowers, lowers[1:]))
    assert all(a >= b for a, b in zip(uppers, uppers[1:]))
    # Coincidence at n = 2f+1 (k(2f+1)) and at saturation (kf+f+1).
    assert rows[0][1] == rows[0][2] == k * (2 * f + 1)
    sat_row = rows[bounds.saturation_n(k, f) - (2 * f + 1)]
    assert sat_row[1] == sat_row[2] == k * f + f + 1
    # Floor: never below kf + f + 1.
    assert all(row[1] >= k * f + f + 1 for row in rows)


def test_theorem1_kf_floor(benchmark):
    """kf + f + 1 registers are needed regardless of server count."""

    def floors():
        return [
            (
                k,
                f,
                min(
                    bounds.register_lower_bound(k, n, f)
                    for n in range(2 * f + 1, 4 * k * f + 8)
                ),
                k * f + f + 1,
            )
            for k in (1, 2, 4, 8)
            for f in (1, 2, 3)
        ]

    rows = benchmark(floors)
    emit(
        render_table(
            ["k", "f", "min over n of lower bound", "kf+f+1"],
            rows,
            title="Theorem 1 — the kf+f+1 floor",
        )
    )
    assert all(row[2] == row[3] for row in rows)
