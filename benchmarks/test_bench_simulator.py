"""Experiment SIM — simulator throughput (library engineering, not paper).

Measures kernel steps per second as the deployment grows, so regressions
in the substrate show up in benchmark history.  Also prints the scaling
table: steps needed per high-level operation grows with the register
count (collects read everything), which is the simulation-cost face of
Table 1's space column.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


def _run_ops(k, n, f, ops=4, seed=0):
    emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    for index in range(ops):
        writer.enqueue("write", f"v{index}")
        reader.enqueue("read")
    assert emu.system.run_to_quiescence(max_steps=2_000_000).satisfied
    return emu.kernel.time, emu.layout.total_registers


def test_simulator_scaling(benchmark):
    def sweep():
        rows = []
        for k, n, f in [(1, 3, 1), (2, 5, 2), (4, 7, 2), (6, 9, 2), (8, 17, 2)]:
            steps, registers = _run_ops(k, n, f)
            rows.append([k, n, f, registers, steps, round(steps / 8, 1)])
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["k", "n", "f", "registers", "total steps", "steps/op"],
            rows,
            title="Simulator scaling — kernel steps vs deployment size",
        )
    )
    steps_per_op = [row[5] for row in rows]
    registers = [row[3] for row in rows]
    # Per-op step cost grows with the register count (collects scan all).
    assert steps_per_op[-1] > steps_per_op[0]
    assert registers == sorted(registers)
