"""Experiment OQ — the paper's open question, probed empirically.

Section 4/5 asks whether the register lower bound remains tight for the
*stronger* regularity conditions of Shao et al. [34], i.e. whether an
algorithm with Algorithm 2's space budget can satisfy them beyond
write-sequential runs.  We probe our Algorithm 2 implementation (which
adds a writer-id timestamp tie-break) on randomized concurrent-write
workloads and check the [34]-style conditions:

* MW-Weak — each read linearizable with all writes (per-read orders),
* MW-Strong — one write order serving all reads.

On every seed in the deterministic sample both conditions hold, i.e. at
these sizes our Algorithm 2 instance is not a counterexample to tightness
for the stronger conditions — consistent with (though of course not
proving) the conjecture left open by the paper.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.consistency.mw_regularity import (
    check_mw_regular_strong,
    check_mw_regular_weak,
)
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler

SEEDS = range(30)


def _probe(k, n, f):
    weak = strong = 0
    for seed in SEEDS:
        emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))
        writers = [emu.add_writer(i) for i in range(k)]
        readers = [emu.add_reader() for _ in range(2)]
        for round_index in range(2):
            for index, writer in enumerate(writers):
                writer.enqueue("write", f"r{round_index}w{index}")
            for reader in readers:
                reader.enqueue("read")
            assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
        if check_mw_regular_weak(emu.history):
            weak += 1
        if check_mw_regular_strong(emu.history):
            strong += 1
    return weak, strong


def test_open_question_probe(benchmark):
    configs = [(2, 5, 2), (3, 7, 2)]

    def sweep():
        return [
            [k, n, f, len(SEEDS), *(_probe(k, n, f))] for k, n, f in configs
        ]

    rows = benchmark(sweep)
    emit(
        render_table(
            [
                "k",
                "n",
                "f",
                "concurrent runs",
                "MW-Weak violations",
                "MW-Strong violations",
            ],
            rows,
            title=(
                "Open question probe — Algorithm 2 under concurrent writes"
                " vs the stronger [34] regularity conditions"
            ),
        )
    )
    # Deterministic seeds: zero violations observed (empirical evidence of
    # tightness for stronger conditions at these sizes, not a proof).
    for row in rows:
        assert row[4] == 0 and row[5] == 0
