"""Experiment QUE — queue overhead over the direct engine path.

Runs the same simulating grid (B1 sharded over update_counts) through
the direct serial engine and through a drained single-worker SQLite
queue, and tabulates wall-clock, kernel steps and per-cell queue
overhead.  The qualitative claims: both paths produce byte-identical
tables, kernel steps are identical (the queue adds bookkeeping, not
simulation), and the numbers land in ``benchmarks/BENCH_queue.json``
for trajectory tracking.

Absolute overhead is *not* asserted — it is sqlite fsync latency, which
varies wildly across CI runner disks.  The artifact records it.

``BENCH_QUEUE_SMOKE=1`` shrinks the grid (CI smoke mode).
"""

import json
import os
import time

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.exec import run_experiment_grid

SMOKE = os.environ.get("BENCH_QUEUE_SMOKE", "") not in ("", "0")
UPDATES = (4, 8) if SMOKE else (4, 8, 16, 32, 64)
KWARGS = {"update_counts": UPDATES}

ARTIFACT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_queue.json")


def _timed(tmp_path, backend, **extra):
    start = time.perf_counter()
    merged, report = run_experiment_grid(
        "B1", KWARGS, backend=backend, **extra
    )
    return merged, report, time.perf_counter() - start


def test_queue_overhead_vs_direct_engine(tmp_path):
    direct, direct_report, direct_secs = _timed(tmp_path, "local")
    queued, queued_report, queued_secs = _timed(
        tmp_path, "queue", queue_path=tmp_path / "bench.db"
    )

    cells = len(direct_report.outcomes)
    overhead = queued_secs - direct_secs
    rows = [
        ["direct", cells, direct_report.total_steps, f"{direct_secs:.3f}",
         "-"],
        ["queue", cells, queued_report.total_steps, f"{queued_secs:.3f}",
         f"{1000.0 * overhead / cells:.1f}"],
    ]
    emit(
        render_table(
            ["path", "cells", "kernel steps", "seconds",
             "overhead ms/cell"],
            rows,
            title=f"QUE: queue vs direct on B1, updates in {list(UPDATES)}",
        )
    )
    artifact = {
        "grid": {"experiment": "B1", "update_counts": list(UPDATES)},
        "smoke": SMOKE,
        "direct": {
            "seconds": round(direct_secs, 6),
            "steps": direct_report.total_steps,
        },
        "queue": {
            "seconds": round(queued_secs, 6),
            "steps": queued_report.total_steps,
        },
        "overhead_ms_per_cell": round(1000.0 * overhead / cells, 3),
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)

    assert queued.render() == direct.render()
    assert queued_report.total_steps == direct_report.total_steps > 0
    assert not (direct_report.failed or queued_report.failed)
