"""Experiment ABL — ablations of Algorithm 2's design choices.

DESIGN.md calls out two mechanisms that Algorithm 2 pays space/latency
for; this bench removes each and shows the resulting safety violation,
next to the intact algorithm surviving the identical adversary script:

* no covered-register avoidance -> an old covering write reverts a
  register and a legal read returns a stale value;
* write quorum one short (|R|-f-1) -> a completed write vanishes after f
  crashes.

This is the executable version of the paper's Section 3.1 intuition: the
f-per-write space overhead is forced by exactly these hazards.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.ablation import (
    baseline_no_violation,
    cover_avoidance_violation,
    small_quorum_violation,
)


def test_ablation_matrix(benchmark):
    def run_all():
        return {
            "Algorithm 2 (intact)": baseline_no_violation(),
            "no cover avoidance": cover_avoidance_violation(),
            "write quorum |R|-f-1": small_quorum_violation(),
        }

    outcomes = benchmark(run_all)
    rows = []
    for variant, violations in outcomes.items():
        if violations:
            detail = (
                f"read returned {violations[0].read.result!r},"
                f" allowed {violations[0].allowed!r}"
            )
        else:
            detail = "-"
        rows.append(
            [variant, "SAFE" if not violations else "WS-Safety VIOLATED", detail]
        )
    emit(
        render_table(
            ["variant", "outcome", "violation"],
            rows,
            title="Ablation — Algorithm 2 mechanisms under the covering adversary",
        )
    )
    assert not outcomes["Algorithm 2 (intact)"]
    assert outcomes["no cover avoidance"]
    assert outcomes["write quorum |R|-f-1"]
