"""Experiment SEP — why max-registers escape the lower bound.

The same covering adversary Ad_i that forces Algorithm 2's storage to
grow by f per writer is *powerless* against the max-register substrate:
a pending (covering) ``write-max`` cannot erase a larger value, so
holding it back buys the adversary nothing, and the covered-object count
saturates at the fixed fleet of n base objects instead of growing as kf.
This bench runs the identical Lemma 1 schedule against both substrates
and prints the two covering series side by side — Table 1's separation as
dynamics rather than arithmetic.
"""

from benchmarks.conftest import emit

from repro.analysis.tables import render_table
from repro.core.abd import ABDEmulation
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation


def _series(factory, k, f, check_lemma2=True):
    runner = Lemma1Runner(factory, k=k, f=f, check_lemma2=check_lemma2)
    runner.run()
    return runner


def test_covering_separation(benchmark):
    k, f = 6, 2
    n = 2 * f + 1  # 5 servers for both substrates

    def run_both():
        register_runner = _series(
            lambda scheduler: WSRegisterEmulation(
                k=k, n=n, f=f, scheduler=scheduler
            ),
            k,
            f,
        )
        # Lemma 2's invariants presuppose the emulation keeps covering
        # *fresh* objects (Lemma 4's >2f-server footprint); on the
        # max-register substrate the object pool is exhausted after a few
        # writes and invariant 10 stops holding — itself evidence that the
        # proof machinery characterizes register emulations.  So the
        # inline checker is disabled on this side.
        maxreg_runner = _series(
            lambda scheduler: ABDEmulation(n=n, f=f, scheduler=scheduler),
            k,
            f,
            check_lemma2=False,
        )
        return register_runner, maxreg_runner

    register_runner, maxreg_runner = benchmark(run_both)

    register_cov = register_runner.covered_growth()
    maxreg_cov = maxreg_runner.covered_growth()
    rows = [
        [
            i + 1,
            register_cov[i],
            register_runner.emulation.object_map.n_objects,
            maxreg_cov[i],
            maxreg_runner.emulation.object_map.n_objects,
        ]
        for i in range(k)
    ]
    emit(
        render_table(
            [
                "write i",
                "registers covered",
                "registers deployed",
                "max-regs covered",
                "max-regs deployed",
            ],
            rows,
            title=(
                f"Separation — covering under Ad_i, register vs"
                f" max-register substrate (k={k}, n={n}, f={f})"
            ),
        )
    )

    # Register substrate: covering grows f per write to kf; the deployment
    # must own k(2f+1) registers.
    assert register_cov == [f * (i + 1) for i in range(k)]
    assert register_runner.emulation.object_map.n_objects == k * (2 * f + 1)
    # Max-register substrate: every write still completes (Lemma 3 holds),
    # but covering saturates at the fixed n objects — the adversary cannot
    # force growth, which is exactly why 2f+1 suffices.
    assert all(covered <= n for covered in maxreg_cov)
    assert maxreg_cov[-1] <= n < k * f
    assert maxreg_runner.emulation.object_map.n_objects == n
    # Lemma 1's claim (a) eventually FAILS on the max-register substrate.
    failing = [
        report.index
        for report in maxreg_runner.reports
        if not report.claim_a
    ]
    assert failing, "claim (a) should be unachievable once i*f > n"
