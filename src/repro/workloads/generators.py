"""Deterministic workload specifications.

A :class:`Workload` is a list of *rounds*; the invocations of one round
run concurrently, rounds run sequentially (the runner waits for
quiescence between rounds).  A workload whose every round contains at
most one write therefore yields a write-sequential run — the class of
runs the paper's WS properties constrain.

Write values are generated unique (``w<writer>-<round>``), which the
register consistency checkers rely on.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Invocation:
    """One high-level invocation by a writer or reader.

    ``client`` is ``("writer", index)`` or ``("reader", index)``.
    """

    client: "Tuple[str, int]"
    name: str
    args: tuple = ()

    @property
    def is_write(self) -> bool:
        return self.name == "write"


@dataclass
class Workload:
    """A sequence of concurrent rounds."""

    rounds: "List[List[Invocation]]" = field(default_factory=list)
    description: str = ""

    @property
    def n_writes(self) -> int:
        return sum(
            1 for rnd in self.rounds for inv in rnd if inv.is_write
        )

    @property
    def n_reads(self) -> int:
        return sum(
            1 for rnd in self.rounds for inv in rnd if not inv.is_write
        )

    @property
    def writer_indices(self) -> "List[int]":
        seen = []
        for rnd in self.rounds:
            for inv in rnd:
                kind, index = inv.client
                if kind == "writer" and index not in seen:
                    seen.append(index)
        return sorted(seen)

    @property
    def reader_indices(self) -> "List[int]":
        seen = []
        for rnd in self.rounds:
            for inv in rnd:
                kind, index = inv.client
                if kind == "reader" and index not in seen:
                    seen.append(index)
        return sorted(seen)

    @property
    def is_write_sequential(self) -> bool:
        return all(
            sum(1 for inv in rnd if inv.is_write) <= 1 for rnd in self.rounds
        )


def write_sequential_workload(
    k: int,
    writes_per_writer: int = 2,
    reads_between: int = 1,
    n_readers: int = 1,
) -> Workload:
    """Writers take turns; readers read after every write.

    Produces a write-sequential run: one write per round, followed by a
    round of concurrent reads.
    """
    rounds: "List[List[Invocation]]" = []
    for sequence in range(writes_per_writer):
        for writer in range(k):
            value = f"w{writer}-{sequence}"
            rounds.append([Invocation(("writer", writer), "write", (value,))])
            for _ in range(reads_between):
                rounds.append(
                    [
                        Invocation(("reader", reader), "read")
                        for reader in range(n_readers)
                    ]
                )
    return Workload(
        rounds=rounds,
        description=(
            f"write-sequential k={k} x{writes_per_writer},"
            f" {n_readers} readers"
        ),
    )


def concurrent_workload(
    k: int,
    n_rounds: int = 4,
    n_readers: int = 2,
    seed: int = 0,
) -> Workload:
    """Rounds of concurrent writes (every writer) and reads.

    Not write-sequential — used to exercise wait-freedom and, for the
    atomic emulations, linearizability under concurrency.
    """
    rng = random.Random(seed)
    rounds: "List[List[Invocation]]" = []
    for round_index in range(n_rounds):
        round_ops = [
            Invocation(
                ("writer", writer), "write", (f"w{writer}-{round_index}",)
            )
            for writer in range(k)
        ]
        for reader in range(n_readers):
            round_ops.append(Invocation(("reader", reader), "read"))
        rng.shuffle(round_ops)
        rounds.append(round_ops)
    return Workload(
        rounds=rounds,
        description=f"concurrent k={k} rounds={n_rounds} seed={seed}",
    )


def read_heavy_workload(
    k: int,
    n_writes: int = 3,
    reads_per_write: int = 5,
    n_readers: int = 3,
) -> Workload:
    """Few writes, many concurrent reads (write-sequential)."""
    rounds: "List[List[Invocation]]" = []
    for sequence in range(n_writes):
        writer = sequence % k
        rounds.append(
            [Invocation(("writer", writer), "write", (f"w{writer}-{sequence}",))]
        )
        for _ in range(reads_per_write):
            rounds.append(
                [
                    Invocation(("reader", reader), "read")
                    for reader in range(n_readers)
                ]
            )
    return Workload(
        rounds=rounds,
        description=f"read-heavy k={k} writes={n_writes}",
    )


class ZipfKeys:
    """Seeded Zipfian sampler over a fixed key universe.

    Key ``i`` (0-based popularity rank) is drawn with probability
    proportional to ``1 / (i + 1) ** s`` — the skewed popularity profile
    KV traffic is conventionally modelled with (a few hot keys take most
    of the traffic; ``s`` around 1 matches the classic YCSB-style
    distributions).  Sampling inverts the precomputed CDF with a binary
    search, so a draw is O(log universe).
    """

    def __init__(self, universe: int, s: float = 1.1, seed: int = 0):
        if universe <= 0:
            raise ValueError("need at least one key")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.universe = universe
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** s for rank in range(universe)]
        total = sum(weights)
        self._cdf: "List[float]" = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float round-down

    def sample(self) -> int:
        """Draw a key rank (0 = most popular)."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def key(self, prefix: str = "key") -> str:
        """Draw a key name, ``<prefix>-<rank>``."""
        return f"{prefix}-{self.sample()}"
