"""Execute a workload against an emulation and collect metrics.

Works with any emulation exposing ``kernel``, ``object_map``, ``history``,
``add_writer(index)`` and ``add_reader()`` (all the emulations in
:mod:`repro.core` do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.resources import (
    PointContentionMeter,
    ResourceMeter,
    StepMeter,
)
from repro.sim.history import History
from repro.workloads.generators import Workload


@dataclass
class RunReport:
    """Everything measured while running a workload."""

    history: History
    resource: ResourceMeter
    contention: PointContentionMeter
    steps: StepMeter
    total_steps: int
    completed_rounds: int

    @property
    def resource_consumption(self) -> int:
        return self.resource.resource_consumption

    @property
    def max_covered(self) -> int:
        return self.resource.max_covered


def run_workload(
    emulation,
    workload: Workload,
    max_steps_per_round: int = 200_000,
    crash_plan=None,
) -> RunReport:
    """Run every round of ``workload`` to quiescence on ``emulation``.

    ``crash_plan`` (a :class:`~repro.sim.failures.CrashPlan`) is installed
    before the first round, so crashes fire at their scheduled steps while
    the workload executes.
    """
    kernel = emulation.kernel
    if crash_plan is not None:
        crash_plan.install(kernel)
    resource = ResourceMeter(emulation.object_map)
    contention = PointContentionMeter()
    steps = StepMeter()
    for meter in (resource, contention, steps):
        kernel.add_listener(meter)

    writers = {
        index: emulation.add_writer(index)
        for index in workload.writer_indices
    }
    readers = {
        index: emulation.add_reader() for index in workload.reader_indices
    }

    # The client set is fixed for the whole workload: build the list once
    # instead of on every step of every round inside the until-predicate.
    live = list(writers.values()) + list(readers.values())

    def _round_done(k) -> bool:
        return all(c.crashed or (c.idle and not c.program) for c in live)

    total_steps = 0
    completed_rounds = 0
    for round_ops in workload.rounds:
        for invocation in round_ops:
            kind, index = invocation.client
            runtime = writers[index] if kind == "writer" else readers[index]
            runtime.enqueue(invocation.name, *invocation.args)

        result = kernel.run(max_steps=max_steps_per_round, until=_round_done)
        total_steps += result.steps
        if not result.satisfied:
            break
        completed_rounds += 1

    return RunReport(
        history=emulation.history,
        resource=resource,
        contention=contention,
        steps=steps,
        total_steps=total_steps,
        completed_rounds=completed_rounds,
    )
