"""Execute a workload against an emulation and collect metrics.

Works with anything satisfying the :class:`~repro.core.emulation.Emulation`
protocol (``kernel`` / ``object_map`` / ``history`` / ``add_writer(index)``
/ ``add_reader()`` — every emulation in :mod:`repro.core` conforms), or
with an :class:`~repro.core.emulation.EmulationSpec`, which the runner
builds first (handy across process boundaries, where only specs travel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Union

from repro.analysis.resources import (
    PointContentionMeter,
    ResourceMeter,
    StepMeter,
)
from repro.sim.history import History
from repro.workloads.generators import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.emulation import Emulation, EmulationSpec


@dataclass
class RunReport:
    """Everything measured while running a workload."""

    history: History
    resource: ResourceMeter
    contention: PointContentionMeter
    steps: StepMeter
    total_steps: int
    completed_rounds: int
    #: the emulation the workload ran on (useful when a spec was passed
    #: and the deployment was built inside the runner).
    emulation: Any = None

    @property
    def resource_consumption(self) -> int:
        return self.resource.resource_consumption

    @property
    def max_covered(self) -> int:
        return self.resource.max_covered


def run_workload(
    emulation: "Union[Emulation, EmulationSpec]",
    workload: Workload,
    max_steps_per_round: int = 200_000,
    crash_plan=None,
) -> RunReport:
    """Run every round of ``workload`` to quiescence on ``emulation``.

    ``emulation`` may be a deployed emulation or an
    :class:`~repro.core.emulation.EmulationSpec` (built here).
    ``crash_plan`` (a :class:`~repro.sim.failures.CrashPlan`) is installed
    before the first round, so crashes fire at their scheduled steps while
    the workload executes.

    The meters subscribe to the kernel only for the duration of the call:
    they are detached on the way out, so running several workloads against
    one emulation never double-counts metrics.
    """
    from repro.core.emulation import EmulationSpec

    if isinstance(emulation, EmulationSpec):
        emulation = emulation.build()
    kernel = emulation.kernel
    if crash_plan is not None:
        crash_plan.install(kernel)
    resource = ResourceMeter(emulation.object_map)
    contention = PointContentionMeter()
    steps = StepMeter()
    meters = (resource, contention, steps)
    for meter in meters:
        kernel.add_listener(meter)

    try:
        writers = {
            index: emulation.add_writer(index)
            for index in workload.writer_indices
        }
        readers = {
            index: emulation.add_reader() for index in workload.reader_indices
        }

        # The client set is fixed for the whole workload: build the list once
        # instead of on every step of every round inside the until-predicate.
        live = list(writers.values()) + list(readers.values())

        def _round_done(k) -> bool:
            return all(c.crashed or (c.idle and not c.program) for c in live)

        total_steps = 0
        completed_rounds = 0
        for round_ops in workload.rounds:
            for invocation in round_ops:
                kind, index = invocation.client
                runtime = (
                    writers[index] if kind == "writer" else readers[index]
                )
                runtime.enqueue(invocation.name, *invocation.args)

            result = kernel.run(
                max_steps=max_steps_per_round, until=_round_done
            )
            total_steps += result.steps
            if not result.satisfied:
                break
            completed_rounds += 1
    finally:
        for meter in meters:
            kernel.remove_listener(meter)

    return RunReport(
        history=emulation.history,
        resource=resource,
        contention=contention,
        steps=steps,
        total_steps=total_steps,
        completed_rounds=completed_rounds,
        emulation=emulation,
    )
