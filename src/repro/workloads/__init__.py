"""Workload generation and execution.

* :mod:`repro.workloads.generators` — deterministic workload specs
  (write-sequential, concurrent mixes, seeded values).
* :mod:`repro.workloads.runner` — execute a workload against an emulation
  and return history plus metrics.
"""

from repro.workloads.generators import (
    Invocation,
    Workload,
    concurrent_workload,
    read_heavy_workload,
    write_sequential_workload,
)
from repro.workloads.runner import RunReport, run_workload

__all__ = [
    "Invocation",
    "RunReport",
    "Workload",
    "concurrent_workload",
    "read_heavy_workload",
    "run_workload",
    "write_sequential_workload",
]
