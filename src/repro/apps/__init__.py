"""Application-level services built on the register emulations.

The paper motivates its question with cloud storage services built from
weak per-server primitives; this subpackage shows the emulations carrying
two such services end to end:

* :mod:`repro.apps.kv` — a replicated key-value store with a pluggable
  substrate (registers / max-registers / CAS) and per-key consistency
  auditing.
* :mod:`repro.apps.epoch` — a monotone epoch (configuration version)
  service on the f-tolerant max-register.
* :mod:`repro.apps.config` — an epoch-guarded configuration store (the
  reconfiguration kernel the paper's citations consume).
* :mod:`repro.apps.shard` — the sharded KV service: keys hash to
  independent register fleets, served in-process or over sockets,
  driven by an open-loop Zipfian load generator.
"""

from repro.apps.config import ConfigService, InstallRaced
from repro.apps.epoch import EpochService
from repro.apps.kv import KVConfig, KVSession, ReplicatedKVStore
from repro.apps.shard import (
    ShardConfig,
    ShardedKVService,
    ShardFleet,
    ShardRouter,
    ShardServiceConfig,
    run_loadgen,
)

__all__ = [
    "ConfigService",
    "EpochService",
    "InstallRaced",
    "KVConfig",
    "KVSession",
    "ReplicatedKVStore",
    "ShardConfig",
    "ShardFleet",
    "ShardRouter",
    "ShardServiceConfig",
    "ShardedKVService",
    "run_loadgen",
]
