"""Application-level services built on the register emulations.

The paper motivates its question with cloud storage services built from
weak per-server primitives; this subpackage shows the emulations carrying
two such services end to end:

* :mod:`repro.apps.kv` — a replicated key-value store with a pluggable
  substrate (registers / max-registers / CAS) and per-key consistency
  auditing.
* :mod:`repro.apps.epoch` — a monotone epoch (configuration version)
  service on the f-tolerant max-register.
* :mod:`repro.apps.config` — an epoch-guarded configuration store (the
  reconfiguration kernel the paper's citations consume).
"""

from repro.apps.config import ConfigService, InstallRaced
from repro.apps.epoch import EpochService
from repro.apps.kv import KVConfig, ReplicatedKVStore

__all__ = [
    "ConfigService",
    "EpochService",
    "InstallRaced",
    "KVConfig",
    "ReplicatedKVStore",
]
