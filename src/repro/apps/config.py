"""An epoch-guarded configuration service.

The classic composition the paper's objects enable: configuration
documents live in a replicated register (any substrate), and a monotone
epoch (a max-register) fences installations — an installer that lost a
race observes a higher epoch and refuses to clobber the newer
configuration.  This is the coordination kernel of reconfigurable storage
systems (the paper cites RAMBO and the reconfiguration tutorial as the
consumers of exactly these primitives).

Semantics:

* ``install(config, process)`` — claim the next epoch e; if by the time
  the claim lands a higher epoch exists, fail (``InstallRaced``); else
  write ``(e, config)`` to the config register and return ``e``.
* ``fetch()`` — read ``(epoch, config)``; the returned epoch is never
  smaller than any epoch whose installation completed before the fetch
  began (per-object guarantees of the underlying emulations).

Losing an ``install`` race is *detected*, never silent: epochs are
claimed through ``write_max`` and verified by a re-read.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.apps.epoch import EpochService
from repro.core.abd import ABDEmulation
from repro.sim.scheduling import RandomScheduler


class InstallRaced(RuntimeError):
    """Another process claimed a higher epoch during this install."""


class ConfigService:
    """Epoch-fenced configuration storage over emulated objects."""

    def __init__(
        self,
        n: int = 5,
        f: int = 2,
        initial_config: Any = None,
        seed: int = 0,
    ):
        self.epochs = EpochService(
            n=n, f=f, scheduler=RandomScheduler(seed)
        )
        self.store = ABDEmulation(
            n=n,
            f=f,
            initial_value=(0, initial_config),
            scheduler=RandomScheduler(seed + 1),
        )
        self._clients = {}

    def _store_client(self, process: int):
        from repro.sim.ids import ClientId

        runtime = self._clients.get(process)
        if runtime is None:
            runtime = self.store.add_client(ClientId(process))
            self._clients[process] = runtime
        return runtime

    def _drive_store(self, runtime):
        result = self.store.system.run_to_quiescence()
        if not result.satisfied:
            raise RuntimeError(f"config operation did not complete: {result}")
        return self.store.history.all_ops()[-1].result

    # -- operations -----------------------------------------------------------

    def install(self, config: Any, process: int = 0) -> int:
        """Install ``config`` under a fresh epoch; raises
        :class:`InstallRaced` if a concurrent installer won."""
        claimed = self.epochs.advance(process=process)
        current = self.epochs.current(process=process)
        if current > claimed:
            raise InstallRaced(
                f"claimed epoch {claimed} but {current} already exists"
            )
        runtime = self._store_client(process)
        runtime.enqueue("write", (claimed, config))
        self._drive_store(runtime)
        return claimed

    def fetch(self, process: int = 0) -> "Tuple[int, Any]":
        """The installed ``(epoch, config)`` pair."""
        runtime = self._store_client(process)
        runtime.enqueue("read")
        return self._drive_store(runtime)

    def current_epoch(self, process: int = 0) -> int:
        return self.epochs.current(process=process)

    # -- failures ---------------------------------------------------------------

    def crash_server(self, server_index: int) -> None:
        """Crash the server in both underlying deployments (they model
        the same physical fleet)."""
        self.epochs.crash_server(server_index)
        from repro.sim.ids import ServerId

        self.store.kernel.crash_server(ServerId(server_index))

    @property
    def base_objects(self) -> int:
        """Space: 2(2f+1) at the minimum fleet — one max-register plus
        one RMW register object per server."""
        return (
            self.epochs.base_objects + self.store.object_map.n_objects
        )
