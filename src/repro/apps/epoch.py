"""A monotone epoch service on the f-tolerant max-register.

Reconfigurable systems coordinate through a monotonically increasing
epoch (configuration version): processes *advance* the epoch and *observe*
the latest one, and stale epochs must never resurface.  A max-register is
exactly this object, which is why the paper treats it as a first-class
base type — and why its 2f+1 emulation bound matters in practice.

``EpochService`` wraps :class:`~repro.core.ft_maxreg.FTMaxRegister`:

* ``advance()`` — observe the current epoch and bump it by one
  (read-max then write-max; concurrent advancers may coalesce onto the
  same epoch, which is the standard, safe semantics for configuration
  versions: epochs never regress).
* ``current()`` — read-max.
* ``propose(epoch)`` — write-max of an externally chosen epoch.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ft_maxreg import FTMaxRegister
from repro.sim.ids import ClientId
from repro.sim.kernel import Environment
from repro.sim.scheduling import Scheduler


class EpochService:
    """Fault-tolerant monotone epochs for any number of processes."""

    def __init__(
        self,
        n: int = 5,
        f: int = 2,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        self.register = FTMaxRegister(
            n=n,
            f=f,
            initial_value=0,
            write_back=True,
            scheduler=scheduler,
            environment=environment,
        )
        self._clients = {}

    def _client(self, process: int):
        runtime = self._clients.get(process)
        if runtime is None:
            runtime = self.register.add_client(ClientId(process))
            self._clients[process] = runtime
        return runtime

    def _drive(self, runtime) -> object:
        result = self.register.system.run_to_quiescence()
        if not result.satisfied:
            raise RuntimeError(f"epoch operation did not complete: {result}")
        return self.register.history.all_ops()[-1].result

    # -- operations ---------------------------------------------------------

    def current(self, process: int = 0) -> int:
        """The latest observed epoch."""
        runtime = self._client(process)
        runtime.enqueue("read_max")
        return self._drive(runtime)

    def propose(self, epoch: int, process: int = 0) -> None:
        """Install ``epoch`` if it is ahead of the current one."""
        if epoch < 0:
            raise ValueError("epochs are non-negative")
        runtime = self._client(process)
        runtime.enqueue("write_max", epoch)
        self._drive(runtime)

    def advance(self, process: int = 0) -> int:
        """Move to a fresh epoch; returns the epoch this process installed
        (the global epoch is >= it from now on)."""
        observed = self.current(process)
        target = observed + 1
        self.propose(target, process)
        return target

    # -- failure injection ------------------------------------------------------

    def crash_server(self, server_index: int) -> None:
        from repro.sim.ids import ServerId

        self.register.kernel.crash_server(ServerId(server_index))

    @property
    def base_objects(self) -> int:
        """2f+1 max-registers at the minimum deployment (Table 1)."""
        return self.register.total_objects
