"""A replicated key-value store over register emulations.

Each key is one emulated f-tolerant register; the substrate — which base
object type the servers expose — is pluggable, so the store directly
inherits Table 1's space economics:

* ``"max-register"`` / ``"cas"``: 2f+1 base objects per key, unbounded
  writers;
* ``"register"``: kf + ceil(k/z)(f+1) base objects per key, k fixed
  writers (the store enforces the writer bound).

The store exposes synchronous ``put``/``get`` (each drives the simulated
system to quiescence) plus an ``audit()`` that replays every key's
history through the appropriate consistency checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler

SUBSTRATES = ("register", "max-register", "cas")


class _Tombstone:
    """Sentinel written by :meth:`ReplicatedKVStore.delete`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<deleted>"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Tombstone)

    def __hash__(self) -> int:
        return hash("_Tombstone")


TOMBSTONE = _Tombstone()


@dataclass
class KVConfig:
    """Deployment parameters of the store.

    ``shared_fleet=True`` (register substrate only) hosts every key on
    one physical fleet: a single crash event hits all keys and per-server
    storage is the sum over keys — the realistic consolidation regime.
    ``max_keys`` bounds the number of keys provisioned on the shared
    fleet.
    """

    substrate: str = "max-register"
    n: int = 5
    f: int = 2
    k_writers: int = 4
    seed: int = 0
    shared_fleet: bool = False
    max_keys: int = 16

    def validate(self) -> None:
        if self.substrate not in SUBSTRATES:
            raise ValueError(
                f"substrate must be one of {SUBSTRATES},"
                f" got {self.substrate!r}"
            )
        if self.n < 2 * self.f + 1:
            raise ValueError(
                f"n must be at least 2f+1 = {2 * self.f + 1}, got {self.n}"
            )
        if self.k_writers <= 0:
            raise ValueError("k_writers must be positive")
        if self.shared_fleet and self.substrate != "register":
            raise ValueError(
                "shared_fleet deployment is implemented for the register"
                " substrate"
            )
        if self.max_keys <= 0:
            raise ValueError("max_keys must be positive")


@dataclass
class _KeyState:
    emulation: Any
    writers: "Dict[int, Any]" = field(default_factory=dict)
    reader: Any = None


class ReplicatedKVStore:
    """One emulated register per key, all on the chosen substrate."""

    def __init__(self, config: "Optional[KVConfig]" = None, **overrides):
        self.config = config or KVConfig(**overrides)
        if overrides and config is not None:
            raise ValueError("pass either a KVConfig or keyword overrides")
        self.config.validate()
        self._keys: "Dict[str, _KeyState]" = {}
        self._seed = self.config.seed
        self._fleet = None
        self._fleet_next = 0
        if self.config.shared_fleet:
            from repro.core.multi import MultiRegisterDeployment
            from repro.sim.scheduling import RandomScheduler

            self._fleet = MultiRegisterDeployment(
                m=self.config.max_keys,
                k=self.config.k_writers,
                n=self.config.n,
                f=self.config.f,
                scheduler=RandomScheduler(self.config.seed),
            )

    # -- deployment -----------------------------------------------------------

    def _new_emulation(self):
        cfg = self.config
        self._seed += 1
        scheduler = RandomScheduler(self._seed)
        if cfg.substrate == "register":
            return WSRegisterEmulation(
                k=cfg.k_writers, n=cfg.n, f=cfg.f, scheduler=scheduler
            )
        if cfg.substrate == "max-register":
            return ABDEmulation(n=cfg.n, f=cfg.f, scheduler=scheduler)
        return CASABDEmulation(n=cfg.n, f=cfg.f, scheduler=scheduler)

    def _key_state(self, key: str) -> _KeyState:
        state = self._keys.get(key)
        if state is None:
            if self._fleet is not None:
                if self._fleet_next >= self.config.max_keys:
                    raise RuntimeError(
                        f"shared fleet provisioned for"
                        f" {self.config.max_keys} keys; {key!r} exceeds it"
                    )
                emulation = self._fleet.register(self._fleet_next)
                self._fleet_next += 1
            else:
                emulation = self._new_emulation()
            state = _KeyState(emulation=emulation)
            state.reader = state.emulation.add_reader()
            self._keys[key] = state
        return state

    def _writer(self, state: _KeyState, writer_index: int):
        if not 0 <= writer_index < self.config.k_writers:
            raise ValueError(
                f"writer index {writer_index} out of range"
                f" [0, {self.config.k_writers})"
            )
        runtime = state.writers.get(writer_index)
        if runtime is None:
            runtime = state.emulation.add_writer(writer_index)
            state.writers[writer_index] = runtime
        return runtime

    # -- operations -------------------------------------------------------------

    def put(self, key: str, value: Any, writer_index: int = 0) -> None:
        """Write ``value`` to ``key`` on behalf of ``writer_index``."""
        state = self._key_state(key)
        writer = self._writer(state, writer_index)
        writer.enqueue("write", value)
        result = state.emulation.system.run_to_quiescence()
        if not result.satisfied:
            raise RuntimeError(f"put({key!r}) did not complete: {result}")

    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key``; returns ``default`` for never-written or deleted
        keys."""
        state = self._keys.get(key)
        if state is None:
            return default
        state.reader.enqueue("read")
        result = state.emulation.system.run_to_quiescence()
        if not result.satisfied:
            raise RuntimeError(f"get({key!r}) did not complete: {result}")
        value = state.emulation.history.reads[-1].result
        if value is None or value == TOMBSTONE:
            return default
        return value

    def delete(self, key: str, writer_index: int = 0) -> None:
        """Delete ``key`` (writes a tombstone; registers cannot shrink).

        Deleting an unknown key is a no-op.
        """
        if key in self._keys:
            self.put(key, TOMBSTONE, writer_index=writer_index)

    def keys(self) -> "List[str]":
        return sorted(self._keys)

    def snapshot(self) -> "Dict[str, Any]":
        """Read every key once; a per-key-consistent view of the store.

        Not an atomic multi-key snapshot (keys are independent emulated
        registers); each entry individually satisfies the substrate's
        consistency condition.  Deleted keys are omitted.
        """
        view = {}
        for key in self.keys():
            value = self.get(key)
            if value is not None:
                view[key] = value
        return view

    # -- failure injection ---------------------------------------------------------

    def crash_server(self, server_index: int) -> None:
        """Crash server ``server_index``.

        On a shared fleet this is one crash event hitting every key; on
        per-key deployments the crash is mirrored into each (the store
        models one fleet either way).
        """
        from repro.sim.ids import ServerId

        if not 0 <= server_index < self.config.n:
            raise ValueError(f"server index {server_index} out of range")
        if self._fleet is not None:
            self._fleet.crash_server(server_index)
            return
        for state in self._keys.values():
            state.emulation.kernel.crash_server(ServerId(server_index))

    # -- accounting and auditing ------------------------------------------------------

    @property
    def base_objects(self) -> int:
        """Total base objects across all keys (Table 1, aggregated)."""
        return sum(self.base_objects_per_key().values())

    def base_objects_per_key(self) -> "Dict[str, int]":
        if self._fleet is not None:
            return {
                key: state.emulation.layout.total_registers
                for key, state in self._keys.items()
            }
        return {
            key: state.emulation.object_map.n_objects
            for key, state in self._keys.items()
        }

    def audit(self) -> "Dict[str, bool]":
        """Check every key's history against its consistency condition.

        The RMW substrates (with read write-back) are atomic; the register
        substrate guarantees WS-Regularity.  Returns key -> ok.
        """
        results = {}
        for key, state in self._keys.items():
            history = state.emulation.history
            if self.config.substrate == "register":
                ok = not check_ws_regular(history)
            else:
                ok = is_register_history_atomic(history)
            results[key] = ok
        return results
