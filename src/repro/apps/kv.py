"""A replicated key-value store over register emulations.

Each key is one emulated f-tolerant register; the substrate — which base
object type the servers expose — is pluggable, so the store directly
inherits Table 1's space economics:

* ``"max-register"`` / ``"cas"``: 2f+1 base objects per key, unbounded
  writers;
* ``"register"``: kf + ceil(k/z)(f+1) base objects per key, k fixed
  writers (the store enforces the writer bound).

Clients talk to the store through *sessions*::

    store = ReplicatedKVStore(KVConfig.make("max-register", n=5, f=2))
    with store.session(writer=0) as s:
        s.put("alpha", 1)
        assert s.get("alpha") == 1
        s.delete("alpha")

A session carries the writer identity once, instead of every ``put``
carrying a positional ``writer_index``; any number of sessions may be
open concurrently (the sharded service in :mod:`repro.apps.shard`
multiplexes thousands).  The pre-session methods
``put(key, value, writer_index=...)`` / ``delete(key, writer_index=...)``
remain as thin deprecated shims.

Failures are typed (:mod:`repro.errors`): an out-of-range writer raises
:class:`~repro.errors.WriterBoundExceeded`, a stalled quorum raises
:class:`~repro.errors.QuorumUnavailable`, and a full shared fleet raises
:class:`~repro.errors.ShardCapacityExceeded`.  ``audit()`` replays every
key's history through the appropriate consistency checker.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.errors import (
    BoundViolation,
    InvalidConfig,
    QuorumUnavailable,
    SessionClosed,
    ShardCapacityExceeded,
    WriterBoundExceeded,
)
from repro.sim.scheduling import RandomScheduler

SUBSTRATES = ("register", "max-register", "cas")


class _Tombstone:
    """Sentinel written by :meth:`KVSession.delete`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<deleted>"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Tombstone)

    def __hash__(self) -> int:
        # A fixed constant, not hash("_Tombstone"): str hashing is salted
        # per process, and the sentinel is a process-wide singleton anyway.
        return 0x70B5


TOMBSTONE = _Tombstone()


@dataclass(frozen=True)
class KVConfig:
    """Deployment parameters of the store.

    Validated eagerly at construction (``__post_init__``), frozen and
    picklable, so a config can travel inside experiment specs and key
    the result cache (:meth:`cache_payload`) exactly like
    :class:`~repro.net.config.TransportConfig` does.

    ``shared_fleet=True`` (register substrate only) hosts every key on
    one physical fleet: a single crash event hits all keys and per-server
    storage is the sum over keys — the realistic consolidation regime.
    ``max_keys`` bounds the number of keys provisioned on the shared
    fleet.
    """

    substrate: str = "max-register"
    n: int = 5
    f: int = 2
    k_writers: int = 4
    seed: int = 0
    shared_fleet: bool = False
    max_keys: int = 16

    def __post_init__(self) -> None:
        self.validate()

    @classmethod
    def make(cls, substrate: str = "max-register", **params) -> "KVConfig":
        """Build a config, mirroring ``EmulationSpec.make``'s shape."""
        return cls(substrate=substrate, **params)

    def validate(self) -> None:
        if self.substrate not in SUBSTRATES:
            raise InvalidConfig(
                f"substrate must be one of {SUBSTRATES},"
                f" got {self.substrate!r}"
            )
        if self.n < 2 * self.f + 1:
            raise InvalidConfig(
                f"n must be at least 2f+1 = {2 * self.f + 1}, got {self.n}"
            )
        if self.k_writers <= 0:
            raise InvalidConfig("k_writers must be positive")
        if self.shared_fleet and self.substrate != "register":
            raise InvalidConfig(
                "shared_fleet deployment is implemented for the register"
                " substrate"
            )
        if self.max_keys <= 0:
            raise InvalidConfig("max_keys must be positive")

    def cache_payload(self) -> "Dict[str, Any]":
        """A canonical JSON-able form for result-cache cell keys."""
        return asdict(self)


@dataclass
class _KeyState:
    emulation: Any
    writers: "Dict[int, Any]" = field(default_factory=dict)
    reader: Any = None


class KVSession:
    """One client's handle on a store: a writer identity plus
    ``put``/``get``/``delete``/``scan``.

    Sessions are context managers; a closed session refuses further
    operations.  Read-only sessions pass ``writer=None`` — their ``put``
    and ``delete`` raise :class:`~repro.errors.WriterBoundExceeded`.
    """

    def __init__(self, store: "ReplicatedKVStore", writer: "Optional[int]"):
        if writer is not None:
            store._check_writer(writer)
        self._store = store
        self.writer = writer
        self.closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "KVSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosed("operation on a closed KV session")

    def _writer_index(self) -> int:
        if self.writer is None:
            raise WriterBoundExceeded(
                "read-only session (opened with writer=None) cannot write"
            )
        return self.writer

    # -- operations --------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Write ``value`` to ``key`` as this session's writer."""
        self._check_open()
        self._store._put(key, value, self._writer_index())

    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key``; ``default`` for never-written or deleted keys."""
        self._check_open()
        return self._store._get(key, default)

    def delete(self, key: str) -> None:
        """Delete ``key`` (writes a tombstone; registers cannot shrink).

        Deleting an unknown key is a no-op.
        """
        self._check_open()
        self._store._delete(key, self._writer_index())

    def scan(self, prefix: str = "") -> "Dict[str, Any]":
        """Read every live key starting with ``prefix`` (sorted).

        Per-key consistent, not an atomic multi-key snapshot — each
        entry individually satisfies the substrate's condition.
        """
        self._check_open()
        view = {}
        for key in self._store.keys():
            if not key.startswith(prefix):
                continue
            value = self._store._get(key, None)
            if value is not None:
                view[key] = value
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"KVSession(writer={self.writer}, {state})"


class ReplicatedKVStore:
    """One emulated register per key, all on the chosen substrate."""

    def __init__(self, config: "Optional[KVConfig]" = None, **overrides):
        self.config = config or KVConfig(**overrides)
        if overrides and config is not None:
            raise InvalidConfig("pass either a KVConfig or keyword overrides")
        self._keys: "Dict[str, _KeyState]" = {}
        self._seed = self.config.seed
        self._fleet = None
        self._fleet_next = 0
        if self.config.shared_fleet:
            from repro.core.multi import MultiRegisterDeployment

            self._fleet = MultiRegisterDeployment(
                m=self.config.max_keys,
                k=self.config.k_writers,
                n=self.config.n,
                f=self.config.f,
                scheduler=RandomScheduler(self.config.seed),
            )

    # -- sessions --------------------------------------------------------------

    def session(self, writer: "Optional[int]" = 0) -> KVSession:
        """Open a client session bound to writer ``writer``.

        ``writer=None`` opens a read-only session.  Sessions are cheap;
        open as many concurrently as there are clients.
        """
        return KVSession(self, writer)

    # -- deployment -----------------------------------------------------------

    def _new_emulation(self):
        cfg = self.config
        self._seed += 1
        scheduler = RandomScheduler(self._seed)
        if cfg.substrate == "register":
            return WSRegisterEmulation(
                k=cfg.k_writers, n=cfg.n, f=cfg.f, scheduler=scheduler
            )
        if cfg.substrate == "max-register":
            return ABDEmulation(n=cfg.n, f=cfg.f, scheduler=scheduler)
        return CASABDEmulation(n=cfg.n, f=cfg.f, scheduler=scheduler)

    def _key_state(self, key: str) -> _KeyState:
        state = self._keys.get(key)
        if state is None:
            if self._fleet is not None:
                if self._fleet_next >= self.config.max_keys:
                    raise ShardCapacityExceeded(
                        f"shared fleet provisioned for"
                        f" {self.config.max_keys} keys; {key!r} exceeds it"
                    )
                emulation = self._fleet.register(self._fleet_next)
                self._fleet_next += 1
            else:
                emulation = self._new_emulation()
            state = _KeyState(emulation=emulation)
            state.reader = state.emulation.add_reader()
            self._keys[key] = state
        return state

    def _check_writer(self, writer_index: int) -> None:
        if not 0 <= writer_index < self.config.k_writers:
            raise WriterBoundExceeded(
                f"writer index {writer_index} out of range"
                f" [0, {self.config.k_writers})"
            )

    def _writer(self, state: _KeyState, writer_index: int):
        self._check_writer(writer_index)
        runtime = state.writers.get(writer_index)
        if runtime is None:
            runtime = state.emulation.add_writer(writer_index)
            state.writers[writer_index] = runtime
        return runtime

    # -- operations (session-internal) -------------------------------------------

    def _put(self, key: str, value: Any, writer_index: int) -> None:
        state = self._key_state(key)
        writer = self._writer(state, writer_index)
        writer.enqueue("write", value)
        result = state.emulation.system.run_to_quiescence()
        if not result.satisfied:
            raise QuorumUnavailable(
                f"put({key!r}) did not complete: {result}"
            )

    def _get(self, key: str, default: Any = None) -> Any:
        state = self._keys.get(key)
        if state is None:
            return default
        state.reader.enqueue("read")
        result = state.emulation.system.run_to_quiescence()
        if not result.satisfied:
            raise QuorumUnavailable(
                f"get({key!r}) did not complete: {result}"
            )
        value = state.emulation.history.reads[-1].result
        if value is None or value == TOMBSTONE:
            return default
        return value

    def _delete(self, key: str, writer_index: int) -> None:
        if key in self._keys:
            self._put(key, TOMBSTONE, writer_index)

    # -- deprecated pre-session surface ---------------------------------------

    def put(self, key: str, value: Any, writer_index: int = 0) -> None:
        """Deprecated: use ``store.session(writer=i).put(key, value)``."""
        warnings.warn(
            "ReplicatedKVStore.put(key, value, writer_index=...) is"
            " deprecated; open a session instead:"
            " store.session(writer=i).put(key, value)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._put(key, value, writer_index)

    def delete(self, key: str, writer_index: int = 0) -> None:
        """Deprecated: use ``store.session(writer=i).delete(key)``."""
        warnings.warn(
            "ReplicatedKVStore.delete(key, writer_index=...) is"
            " deprecated; open a session instead:"
            " store.session(writer=i).delete(key)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._delete(key, writer_index)

    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key`` (writer-free; equivalent to a read-only session)."""
        return self._get(key, default)

    def keys(self) -> "List[str]":
        return sorted(self._keys)

    def snapshot(self) -> "Dict[str, Any]":
        """Read every key once; a per-key-consistent view of the store.

        Not an atomic multi-key snapshot (keys are independent emulated
        registers); each entry individually satisfies the substrate's
        consistency condition.  Deleted keys are omitted.
        """
        view = {}
        for key in self.keys():
            value = self._get(key)
            if value is not None:
                view[key] = value
        return view

    # -- failure injection ---------------------------------------------------------

    def crash_server(self, server_index: int) -> None:
        """Crash server ``server_index``.

        On a shared fleet this is one crash event hitting every key; on
        per-key deployments the crash is mirrored into each (the store
        models one fleet either way).
        """
        from repro.sim.ids import ServerId

        if not 0 <= server_index < self.config.n:
            raise BoundViolation(f"server index {server_index} out of range")
        if self._fleet is not None:
            self._fleet.crash_server(server_index)
            return
        for state in self._keys.values():
            state.emulation.kernel.crash_server(ServerId(server_index))

    # -- accounting and auditing ------------------------------------------------------

    @property
    def base_objects(self) -> int:
        """Total base objects across all keys (Table 1, aggregated)."""
        return sum(self.base_objects_per_key().values())

    def base_objects_per_key(self) -> "Dict[str, int]":
        if self._fleet is not None:
            return {
                key: state.emulation.layout.total_registers
                for key, state in self._keys.items()
            }
        return {
            key: state.emulation.object_map.n_objects
            for key, state in self._keys.items()
        }

    def audit(self) -> "Dict[str, bool]":
        """Check every key's history against its consistency condition.

        The RMW substrates (with read write-back) are atomic; the register
        substrate guarantees WS-Regularity.  Returns key -> ok.
        """
        results = {}
        for key, state in self._keys.items():
            history = state.emulation.history
            if self.config.substrate == "register":
                ok = not check_ws_regular(history)
            else:
                ok = is_register_history_atomic(history)
            results[key] = ok
        return results
