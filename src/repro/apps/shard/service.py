"""The sharded KV service: S independent fleets behind one session API.

Keys route by stable hash to one of ``S`` shards
(:class:`~repro.apps.shard.router.ShardRouter`); each shard is an
independent :class:`~repro.apps.shard.fleet.ShardFleet` with its own
quorum layout, scheduler stream and (optionally) its own socket
transport.  Clients interact through :class:`ServiceSession` handles:

* synchronous ``put/get/delete/scan`` — each drives the owning shard to
  quiescence, the semantics ``ReplicatedKVStore`` always had;
* an asynchronous ``submit``/:meth:`ShardedKVService.drain_completions`
  path — operations are enqueued with opaque tokens and completed by
  stepping the shard kernels, which is how the open-loop load generator
  multiplexes thousands of concurrent sessions over bounded client
  pools without one blocking drive per operation.

Failures are typed: unknown writers raise
:class:`~repro.errors.WriterBoundExceeded` (register substrate's ``k``
bound, per shard), stalled quorums raise
:class:`~repro.errors.QuorumUnavailable`, full shards raise
:class:`~repro.errors.ShardCapacityExceeded`, and operations routed
with an outdated shard map raise :class:`~repro.errors.StaleShardMap`
until the session refreshes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.apps.shard.config import ShardServiceConfig
from repro.apps.shard.fleet import ShardFleet
from repro.apps.shard.router import ShardRouter
from repro.errors import (
    InvalidConfig,
    QuorumUnavailable,
    SessionClosed,
    ShardCapacityExceeded,
    WriterBoundExceeded,
)

#: Deletion sentinel.  A *string* (unlike ``apps.kv.TOMBSTONE``) so it
#: survives both wire codecs unchanged — shard values cross process
#: boundaries in socket deployments.
TOMBSTONE = "\x00repro:tombstone"


class ShardedKVService:
    """S shards, versioned routing, session handles, typed failures."""

    def __init__(
        self,
        config: ShardServiceConfig,
        transports: "Optional[Sequence[Any]]" = None,
    ):
        if transports is not None and len(transports) != config.n_shards:
            raise InvalidConfig(
                f"got {len(transports)} transport(s) for"
                f" {config.n_shards} shards: pass one per shard (None"
                " entries select in-process delivery)"
            )
        self.config = config
        self.router = ShardRouter(config.n_shards)
        self.fleets: "List[ShardFleet]" = [
            ShardFleet(
                shard,
                # independent, deterministic scheduler stream per shard
                seed=config.seed * 7919 + shard_index,
                transport=transports[shard_index] if transports else None,
            )
            for shard_index, shard in enumerate(config.shards)
        ]
        #: per shard: key -> slot index (lazy, first-come placement)
        self._assignments: "List[Dict[str, int]]" = [
            {} for _ in config.shards
        ]
        self._completions: "Deque[Tuple[Any, str, Any, Any]]" = deque()
        self._results: "Dict[Any, Any]" = {}
        self._sync_counter = 0
        self._session_counter = 0
        self._clock: "Optional[Callable[[], float]]" = None

    # -- sessions ------------------------------------------------------------

    def session(self, writer: int = 0) -> "ServiceSession":
        """Open a session bound to writer identity ``writer``.

        Sessions capture the current shard-map version; after a
        :meth:`bump_map` they fail with ``StaleShardMap`` until
        refreshed.  Any number may be open concurrently.
        """
        if writer < 0:
            raise WriterBoundExceeded(
                f"writer identity must be non-negative, got {writer}"
            )
        session_index = self._session_counter
        self._session_counter += 1
        return ServiceSession(self, writer, session_index)

    def set_completion_clock(
        self, clock: "Optional[Callable[[], float]]"
    ) -> None:
        """Stamp async completions with ``clock()`` (loadgen latency)."""
        self._clock = clock

    # -- routing -------------------------------------------------------------

    def shard_of(self, key: str) -> int:
        return self.router.shard_of(key)

    def _slot_for(self, shard_index: int, key: str, create: bool):
        assignment = self._assignments[shard_index]
        slot = assignment.get(key)
        if slot is None and create:
            capacity = self.config.shards[shard_index].capacity
            if len(assignment) >= capacity:
                raise ShardCapacityExceeded(
                    f"shard {shard_index} is full ({capacity} slots);"
                    f" cannot place key {key!r}"
                )
            slot = len(assignment)
            assignment[key] = slot
        return slot

    def _writer_runtime(self, shard_index: int, slot: int, writer: int):
        shard = self.config.shards[shard_index]
        if shard.substrate == "register":
            if writer >= shard.k_writers:
                raise WriterBoundExceeded(
                    f"writer {writer} exceeds shard {shard_index}'s"
                    f" provisioned bound k={shard.k_writers}"
                    " (register substrate; Table 1's space economics are"
                    " per provisioned writer)"
                )
            writer_index = writer
        else:
            # Unbounded-writer substrates: multiplex sessions onto a
            # bounded per-slot client pool.
            writer_index = writer % self.config.writer_pool
        runtime = self.fleets[shard_index].writer(slot, writer_index)
        self._attach_hook(runtime)
        return runtime

    def _reader_runtime(self, shard_index: int, slot: int, session_index: int):
        reader_index = session_index % self.config.reader_pool
        runtime = self.fleets[shard_index].reader(slot, reader_index)
        self._attach_hook(runtime)
        return runtime

    def _attach_hook(self, runtime) -> None:
        if runtime.on_complete is None:
            runtime.on_complete = self._on_complete

    def _on_complete(self, token: Any, name: str, result: Any) -> None:
        if token is None:
            return
        stamp = self._clock() if self._clock is not None else None
        self._completions.append((token, name, result, stamp))

    # -- synchronous operations ----------------------------------------------

    def _sync_op(self, shard_index: int, runtime, name: str, *args) -> Any:
        token = ("sync", self._sync_counter)
        self._sync_counter += 1
        runtime.enqueue(name, *args, token=token)
        result = self.fleets[shard_index].run_to_quiescence()
        if not result.satisfied:
            raise QuorumUnavailable(
                f"{name} on shard {shard_index} did not complete: {result}"
            )
        # Harvest sync completions only; async tokens stay queued for
        # drain_completions (sync and async calls may interleave).
        kept: "Deque[Tuple[Any, str, Any, Any]]" = deque()
        while self._completions:
            item = self._completions.popleft()
            tok = item[0]
            if isinstance(tok, tuple) and tok and tok[0] == "sync":
                self._results[tok] = item[2]
            else:
                kept.append(item)
        self._completions = kept
        return self._results.pop(token)

    def _put(self, key: str, value: Any, writer: int) -> None:
        shard_index = self.router.shard_of(key)
        slot = self._slot_for(shard_index, key, create=True)
        runtime = self._writer_runtime(shard_index, slot, writer)
        self._sync_op(shard_index, runtime, "write", value)

    def _get(self, key: str, default: Any, session_index: int) -> Any:
        shard_index = self.router.shard_of(key)
        slot = self._slot_for(shard_index, key, create=False)
        if slot is None:
            return default
        runtime = self._reader_runtime(shard_index, slot, session_index)
        value = self._sync_op(shard_index, runtime, "read")
        if value is None or value == TOMBSTONE:
            return default
        return value

    def _delete(self, key: str, writer: int) -> None:
        shard_index = self.router.shard_of(key)
        if self._slot_for(shard_index, key, create=False) is not None:
            self._put(key, TOMBSTONE, writer)

    # -- asynchronous operations (load generation) ---------------------------

    def submit(
        self,
        session: "ServiceSession",
        kind: str,
        key: str,
        value: Any = None,
        token: Any = None,
    ) -> Any:
        """Enqueue ``kind`` (``"put"``/``"get"``/``"delete"``) without
        driving the shard; completion arrives via
        :meth:`drain_completions` once the kernels are stepped."""
        self.router.check_version(session.map_version)
        shard_index = self.router.shard_of(key)
        if kind == "get":
            slot = self._slot_for(shard_index, key, create=False)
            if slot is None:
                # Never-written key: complete immediately, no quorum round.
                self._on_complete(token, "read", None)
                return token
            runtime = self._reader_runtime(
                shard_index, slot, session.session_index
            )
            runtime.enqueue("read", token=token)
            return token
        slot = self._slot_for(shard_index, key, create=kind == "put")
        if slot is None:  # delete of an unknown key
            self._on_complete(token, "write", "ack")
            return token
        runtime = self._writer_runtime(shard_index, slot, session.writer)
        payload = TOMBSTONE if kind == "delete" else value
        runtime.enqueue("write", payload, token=token)
        return token

    def step(self, max_steps_per_shard: int = 2_000, batch_size=None) -> int:
        """Advance every shard kernel a bounded amount; returns steps run.

        The loadgen's pump: bounded so the caller's admission loop keeps
        control of wall-clock pacing even when a shard has a deep queue.
        """
        total = 0
        for fleet in self.fleets:
            result = fleet.run_to_quiescence(
                max_steps=max_steps_per_shard, batch_size=batch_size
            )
            total += result.steps
        return total

    def drain_completions(self) -> "List[Tuple[Any, str, Any, Any]]":
        """All (token, op name, result, clock stamp) completed so far."""
        drained = list(self._completions)
        self._completions.clear()
        return drained

    # -- whole-service views ---------------------------------------------------

    def keys(self) -> "List[str]":
        return sorted(
            key
            for assignment in self._assignments
            for key in assignment
        )

    def audit(self) -> "Dict[str, bool]":
        """Per-key consistency audit with the substrate's checker.

        Key ↔ slot is one-to-one, so each key's audit is its slot's
        filtered history run through ``check_ws_regular`` (register) or
        ``is_register_history_atomic`` (max-register / cas).
        """
        results: "Dict[str, bool]" = {}
        for shard_index, assignment in enumerate(self._assignments):
            fleet = self.fleets[shard_index]
            for key, slot in assignment.items():
                results[key] = fleet.audit_slot(slot)
        return results

    def describe(self) -> "Dict[str, Any]":
        return {
            "shards": self.config.n_shards,
            "map_version": self.router.version,
            "keys": len(self.keys()),
            "base_objects": [f.total_objects for f in self.fleets],
            "substrates": [s.substrate for s in self.config.shards],
        }

    # -- control plane ---------------------------------------------------------

    def bump_map(self) -> int:
        """Advance the shard-map version; open sessions must refresh."""
        return self.router.bump()

    def crash_server(self, server_index: int) -> None:
        """Crash sim server ``server_index`` in every shard (one node of
        the physical fleet dying takes its replica of each shard)."""
        for fleet in self.fleets:
            fleet.crash_server(server_index)

    def partition(self, server_indices) -> None:
        """Blackhole the given servers on every shard's socket transport."""
        for fleet in self.fleets:
            transport = fleet.transport
            if transport is not None and hasattr(transport, "set_blackhole"):
                transport.set_blackhole(server_indices)

    def heal(self) -> None:
        for fleet in self.fleets:
            transport = fleet.transport
            if transport is not None and hasattr(transport, "heal"):
                transport.heal()

    def close(self) -> None:
        for fleet in self.fleets:
            transport = fleet.transport
            if transport is not None and hasattr(transport, "close"):
                transport.close()


class ServiceSession:
    """One client's handle on the sharded service.

    Carries the writer identity and the shard-map version it routed
    with; context-manager lifecycle like
    :class:`repro.apps.kv.KVSession`.
    """

    def __init__(
        self, service: ShardedKVService, writer: int, session_index: int
    ):
        self._service = service
        self.writer = writer
        self.session_index = session_index
        self.map_version = service.router.version
        self.closed = False

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.closed = True

    def refresh(self) -> None:
        """Re-capture the service's current shard map."""
        self.map_version = self._service.router.version

    def _check(self) -> None:
        if self.closed:
            raise SessionClosed("operation on a closed service session")
        self._service.router.check_version(self.map_version)

    # -- synchronous operations --------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._check()
        self._service._put(key, value, self.writer)

    def get(self, key: str, default: Any = None) -> Any:
        self._check()
        return self._service._get(key, default, self.session_index)

    def delete(self, key: str) -> None:
        self._check()
        self._service._delete(key, self.writer)

    def scan(self, prefix: str = "") -> "Dict[str, Any]":
        """Read every live key starting with ``prefix`` (per-key
        consistent, not an atomic cross-shard snapshot)."""
        self._check()
        view: "Dict[str, Any]" = {}
        for key in self._service.keys():
            if not key.startswith(prefix):
                continue
            value = self._service._get(key, None, self.session_index)
            if value is not None:
                view[key] = value
        return view

    # -- asynchronous operations -------------------------------------------

    def submit_put(self, key: str, value: Any, token: Any) -> Any:
        self._check()
        return self._service.submit(self, "put", key, value, token=token)

    def submit_get(self, key: str, token: Any) -> Any:
        self._check()
        return self._service.submit(self, "get", key, token=token)

    def submit_delete(self, key: str, token: Any) -> Any:
        self._check()
        return self._service.submit(self, "delete", key, token=token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (
            f"ServiceSession(writer={self.writer},"
            f" v{self.map_version}, {state})"
        )
