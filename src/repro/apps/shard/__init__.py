"""``repro.apps.shard`` — the sharded KV service and its load generator.

The composition the ROADMAP's "millions of users" story asks for: keys
hash to shards, each shard is an independent emulated register fleet
(any Table 1 substrate), shards serve either in-process or over real
sockets, and an open-loop generator drives Zipfian traffic from
thousands of concurrent sessions while per-key consistency is audited
with the paper's checkers.
"""

from repro.apps.shard.config import ShardConfig, ShardServiceConfig
from repro.apps.shard.fleet import ShardFleet, shard_placements
from repro.apps.shard.loadgen import Scenario, run_loadgen
from repro.apps.shard.router import ShardRouter, stable_key_hash
from repro.apps.shard.service import (
    TOMBSTONE,
    ServiceSession,
    ShardedKVService,
)

__all__ = [
    "ShardConfig",
    "ShardServiceConfig",
    "ShardFleet",
    "shard_placements",
    "Scenario",
    "run_loadgen",
    "ShardRouter",
    "stable_key_hash",
    "TOMBSTONE",
    "ServiceSession",
    "ShardedKVService",
]
