"""Open-loop load generation against the sharded KV service.

Operations arrive on a seeded Poisson process at a configured rate and
are *submitted regardless of whether earlier operations completed* —
the open-loop discipline.  Latency therefore includes queueing delay:
when the service falls behind the offered rate, latencies grow without
bound instead of the generator politely slowing down, which is exactly
the signal a capacity experiment needs (closed-loop generators hide
saturation by self-throttling — the coordinated-omission trap).

Thousands of concurrent :class:`~repro.apps.shard.service.ServiceSession`
handles issue the traffic; keys are drawn Zipfian
(:class:`~repro.workloads.generators.ZipfKeys`), so a few hot keys
concentrate load on their shards while the tail exercises placement
breadth.

This module reads no clock of its own — ``clock``/``sleep`` callables
are injected (the CLI passes ``time.perf_counter``/``time.sleep``), so
the module stays inside the repo's simulation discipline (lint R002)
and tests can drive it with a fake clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.shard.service import ShardedKVService
from repro.workloads.generators import ZipfKeys


@dataclass
class Scenario:
    """A fault injected mid-run: ``action()`` fires once at ``at`` seconds
    of elapsed run time.  ``action`` returns a short description that is
    recorded in the report's scenario log."""

    at: float
    name: str
    action: "Callable[[], Optional[str]]"


def _percentile(sorted_values: "List[float]", fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * len(sorted_values))
    )
    return sorted_values[index]


def run_loadgen(
    service: ShardedKVService,
    *,
    clock: "Callable[[], float]",
    sleep: "Callable[[float], None]",
    rate: float = 500.0,
    duration: float = 5.0,
    sessions: int = 1000,
    keys: int = 100,
    zipf_s: float = 1.1,
    read_fraction: float = 0.7,
    seed: int = 0,
    scenarios: "Sequence[Scenario]" = (),
    step_budget: int = 4_000,
    drain_timeout: float = 15.0,
    batch_size: "Optional[int]" = None,
) -> "Dict[str, Any]":
    """Drive Zipfian traffic at ``rate`` ops/s for ``duration`` seconds.

    Returns the ``BENCH_kv.json``-shaped report: offered vs completed
    throughput, p50/p95/p99 latency, the scenario log, and the per-key
    consistency audit.
    """
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    if sessions <= 0:
        raise ValueError("need at least one session")
    rng = random.Random(seed)
    sampler = ZipfKeys(keys, s=zipf_s, seed=seed + 1)

    # Writer identities must respect the tightest register-substrate
    # bound; unbounded substrates take any identity (the service folds
    # them onto its client pool).
    register_bounds = [
        shard.k_writers
        for shard in service.config.shards
        if shard.substrate == "register"
    ]
    writer_span = min(register_bounds) if register_bounds else sessions
    pool = [
        service.session(writer=index % writer_span)
        for index in range(sessions)
    ]

    service.set_completion_clock(clock)
    pending: "Dict[int, Tuple[float, str]]" = {}
    latencies: "List[float]" = []
    scenario_log: "List[Dict[str, Any]]" = []
    todo = sorted(scenarios, key=lambda s: s.at)
    fired = 0
    offered = 0
    failed_submits = 0

    start = clock()
    deadline = start + duration
    next_arrival = start

    def _drain() -> None:
        for token, _name, _result, stamp in service.drain_completions():
            started = pending.pop(token, None)
            if started is not None:
                end = stamp if stamp is not None else clock()
                latencies.append(end - started[0])

    now = start
    while now < deadline:
        # Fire due scenarios (one per loop pass keeps bookkeeping simple).
        if fired < len(todo) and now - start >= todo[fired].at:
            scenario = todo[fired]
            detail = scenario.action()
            scenario_log.append(
                {
                    "name": scenario.name,
                    "at_s": round(now - start, 3),
                    "detail": detail or "",
                }
            )
            fired += 1
        # Admit every arrival whose scheduled time has passed (open loop:
        # no waiting for completions).
        while next_arrival <= now:
            token = offered
            offered += 1
            session = pool[token % sessions]
            key = sampler.key()
            try:
                if rng.random() < read_fraction:
                    pending[token] = (next_arrival, "get")
                    session.submit_get(key, token=token)
                else:
                    pending[token] = (next_arrival, "put")
                    session.submit_put(key, f"v{token}", token=token)
            except Exception:
                # A shard refusing the op (capacity, stale map) is load
                # the service shed, not generator failure.
                pending.pop(token, None)
                failed_submits += 1
            next_arrival += rng.expovariate(rate)
        service.step(
            max_steps_per_shard=step_budget, batch_size=batch_size
        )
        _drain()
        now = clock()
        if next_arrival > now and not pending:
            sleep(min(0.001, next_arrival - now))
            now = clock()

    # Stop admitting; let in-flight operations finish (bounded).
    drain_deadline = clock() + drain_timeout
    while pending and clock() < drain_deadline:
        service.step(max_steps_per_shard=step_budget, batch_size=batch_size)
        _drain()
    finished = clock()
    service.set_completion_clock(None)

    wall = finished - start
    completed = len(latencies)
    latencies.sort()
    audits = service.audit()
    audit_ok = sum(1 for ok in audits.values() if ok)
    report: "Dict[str, Any]" = {
        "benchmark": "kv_loadgen",
        "params": {
            "rate_ops_s": rate,
            "duration_s": duration,
            "sessions": sessions,
            "keys": keys,
            "zipf_s": zipf_s,
            "read_fraction": read_fraction,
            "seed": seed,
            "shards": service.config.n_shards,
            "substrates": [s.substrate for s in service.config.shards],
            "n": [s.n for s in service.config.shards],
            "f": [s.f for s in service.config.shards],
        },
        "offered_ops": offered,
        "completed_ops": completed,
        "failed_submits": failed_submits,
        "incomplete_ops": len(pending),
        "sustained_fraction": (completed / offered) if offered else 0.0,
        "wall_seconds": round(wall, 4),
        "throughput_ops_s": round(completed / wall, 2) if wall > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p95": round(_percentile(latencies, 0.95) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean": round(
                (sum(latencies) / completed) * 1e3 if completed else 0.0, 3
            ),
            "max": round(
                (latencies[-1] * 1e3) if latencies else 0.0, 3
            ),
        },
        "scenarios": scenario_log,
        "audit": {
            "keys": len(audits),
            "ok": audit_ok,
            "ok_fraction": (audit_ok / len(audits)) if audits else 1.0,
            "all_ok": audit_ok == len(audits),
        },
    }
    return report
