"""Key routing: stable hash of key → shard, behind a versioned map.

The hash is CRC-32 of the UTF-8 key — *stable* across processes and
Python releases, unlike the builtin ``hash`` (salted per process by
``PYTHONHASHSEED``): a load generator in one process and replica
servers in others must agree on the placement of every key.

The map is versioned like production shard directories: sessions
capture the version they routed with, and a service-side bump (e.g. a
re-shard or re-addressing after recovery) makes stale sessions fail
loudly with :class:`~repro.errors.StaleShardMap` instead of silently
writing through an outdated placement.
"""

from __future__ import annotations

import zlib
from typing import List

from repro.errors import StaleShardMap


def stable_key_hash(key: str) -> int:
    """Process-independent 32-bit hash of a key."""
    return zlib.crc32(key.encode("utf-8"))


class ShardRouter:
    """Versioned key → shard map over ``n_shards`` shards."""

    def __init__(self, n_shards: int):
        if n_shards <= 0:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.version = 1

    def shard_of(self, key: str) -> int:
        return stable_key_hash(key) % self.n_shards

    def bump(self) -> int:
        """Advance the map version (placement unchanged; clients holding
        the old version must refresh before their next operation)."""
        self.version += 1
        return self.version

    def check_version(self, held_version: int) -> None:
        """Raise :class:`StaleShardMap` if ``held_version`` is outdated."""
        if held_version != self.version:
            raise StaleShardMap(
                f"session routed with shard-map v{held_version}, service"
                f" is at v{self.version}; call session.refresh()"
            )

    def partition_keys(self, keys: "List[str]") -> "List[List[str]]":
        """Group ``keys`` by shard (diagnostics / balance reporting)."""
        groups: "List[List[str]]" = [[] for _ in range(self.n_shards)]
        for key in keys:
            groups[self.shard_of(key)].append(key)
        return groups
