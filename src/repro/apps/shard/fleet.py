"""One shard: a multi-slot register fleet on a single kernel.

A shard provisions ``capacity`` independent emulated registers ("slots")
over one fleet of ``n`` servers — one kernel, one schedule, one crash
event per server, with per-slot histories so every slot audits against
its own consistency condition.  The layout generalises
:class:`~repro.core.multi.MultiRegisterDeployment` (register substrate)
to all three Table 1 substrates:

* ``register`` — each slot is an Algorithm 2 layout shifted into the
  shared object-id space (``kf + ceil(k/z)(f+1)`` registers per slot,
  ``k_writers`` bound);
* ``max-register`` — each slot is an ABD instance over ``n``
  max-registers, one per server (2f+1 at the minimum, writers
  unbounded);
* ``cas`` — ABD whose per-server max-register is Algorithm 1 over a
  single CAS object.

Placements are a pure function of the config (:func:`shard_placements`),
so a replica process in another machine image rebuilds byte-identical
base objects from the same :class:`ShardConfig` — the static-placement
contract remote serving depends on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.apps.shard.config import ShardConfig
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.layout import RegisterLayout
from repro.core.multi import FilteredHistory, OffsetLayout
from repro.sim.client import ClientRuntime
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.scheduling import RandomScheduler, Scheduler
from repro.sim.system import Placement, SimSystem, build_system
from repro.sim.values import bottom_tsval

#: per-slot client-id partitioning (same scheme as core/multi.py):
#: slot ``s`` owns ids ``[s*100_000, (s+1)*100_000)``; writers at the
#: bottom, readers from ``+50_000``.
_SLOT_STRIDE = 100_000
_READER_BASE = 50_000


def shard_placements(
    config: ShardConfig,
) -> "Tuple[List[Placement], Optional[List[OffsetLayout]]]":
    """Deterministic base-object placements for one shard.

    Returns ``(placements, layouts)``; ``layouts`` is the per-slot
    :class:`OffsetLayout` list for the register substrate (``None`` for
    the quorum substrates, whose slot ``s`` simply owns object
    ``s*n + i`` on server ``i``).
    """
    if config.substrate == "register":
        placements: "List[Placement]" = []
        layouts: "List[OffsetLayout]" = []
        offset = 0
        for _ in range(config.capacity):
            base = RegisterLayout(config.k_writers, config.n, config.f, None)
            base.validate()
            layouts.append(OffsetLayout(base, offset))
            placements.extend(base.placements())
            offset += base.total_registers
        return placements, layouts
    type_name = "max-register" if config.substrate == "max-register" else "cas"
    v0 = bottom_tsval(None)
    placements = [
        (server_index, type_name, v0)
        for _ in range(config.capacity)
        for server_index in range(config.n)
    ]
    return placements, None


class _Slot:
    """Bookkeeping for one register slot of the shard."""

    __slots__ = ("index", "history", "writers", "readers")

    def __init__(self, index: int):
        self.index = index
        self.history = FilteredHistory(())
        self.writers: "Dict[int, ClientRuntime]" = {}
        self.readers: "Dict[int, ClientRuntime]" = {}


class ShardFleet:
    """``capacity`` emulated registers over one fleet of ``n`` servers."""

    def __init__(
        self,
        config: ShardConfig,
        seed: int = 0,
        scheduler: "Optional[Scheduler]" = None,
        transport: Any = None,
    ):
        self.config = config
        placements, layouts = shard_placements(config)
        self.layouts = layouts
        self.system: SimSystem = build_system(
            config.n,
            placements,
            scheduler=scheduler or RandomScheduler(seed),
            transport=transport,
        )
        self.slots = [_Slot(index) for index in range(config.capacity)]
        for slot in self.slots:
            # Listeners live exactly as long as the fleet: per-slot
            # histories must span every run, crash and restart.
            self.kernel.add_listener(slot.history)  # repro-lint: disable=R005 fleet-lifetime listener

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def object_map(self):
        return self.system.object_map

    @property
    def transport(self):
        return self.kernel.transport

    # -- per-slot clients -----------------------------------------------------

    def _slot_objects(self, slot_index: int) -> "List[ObjectId]":
        n = self.config.n
        return [ObjectId(slot_index * n + i) for i in range(n)]

    def _make_protocol(self, slot_index: int, writer_index: "Optional[int]"):
        cfg = self.config
        if cfg.substrate == "register":
            from repro.core.ws_register import WSRegisterClient

            return WSRegisterClient(
                self.layouts[slot_index],
                self.object_map,
                writer_index=writer_index,
                initial_value=None,
            )
        client_tag = slot_index * _SLOT_STRIDE + (
            writer_index if writer_index is not None else _READER_BASE
        )
        if cfg.substrate == "max-register":
            from repro.core.abd import ABDClient

            return ABDClient(
                cfg.n,
                cfg.f,
                writer_id=client_tag,
                object_ids=self._slot_objects(slot_index),
            )
        from repro.core.cas_maxreg import CASABDClient

        return CASABDClient(
            cfg.n,
            cfg.f,
            writer_id=client_tag,
            object_ids=self._slot_objects(slot_index),
        )

    def writer(self, slot_index: int, writer_index: int) -> ClientRuntime:
        """The slot's writer client ``writer_index`` (created lazily).

        For the register substrate ``writer_index`` must respect the
        provisioned ``k_writers`` bound — the *caller* (the service's
        session layer) is responsible for raising
        :class:`~repro.errors.WriterBoundExceeded` on violations; this
        layer asserts the invariant.
        """
        slot = self.slots[slot_index]
        runtime = slot.writers.get(writer_index)
        if runtime is None:
            if self.config.substrate == "register":
                assert 0 <= writer_index < self.config.k_writers
            client_id = ClientId(slot_index * _SLOT_STRIDE + writer_index)
            protocol = self._make_protocol(slot_index, writer_index)
            runtime = self.kernel.add_client(client_id, protocol)
            slot.history.admit(client_id)
            slot.writers[writer_index] = runtime
        return runtime

    def reader(self, slot_index: int, reader_index: int = 0) -> ClientRuntime:
        """The slot's reader client ``reader_index`` (created lazily)."""
        slot = self.slots[slot_index]
        runtime = slot.readers.get(reader_index)
        if runtime is None:
            client_id = ClientId(
                slot_index * _SLOT_STRIDE + _READER_BASE + reader_index
            )
            protocol = self._make_protocol(slot_index, None)
            runtime = self.kernel.add_client(client_id, protocol)
            slot.history.admit(client_id)
            slot.readers[reader_index] = runtime
        return runtime

    # -- running ------------------------------------------------------------

    def run_to_quiescence(self, max_steps: int = 200_000, batch_size=None):
        return self.system.run_to_quiescence(
            max_steps=max_steps, batch_size=batch_size
        )

    def crash_server(self, server_index: int) -> None:
        """One crash event: every slot loses that server at once."""
        self.kernel.crash_server(ServerId(server_index))

    # -- auditing ------------------------------------------------------------

    def audit_slot(self, slot_index: int) -> bool:
        """Check the slot's history against its substrate's condition."""
        history = self.slots[slot_index].history
        if self.config.substrate == "register":
            return not check_ws_regular(history)
        return is_register_history_atomic(history)

    @property
    def total_objects(self) -> int:
        """Base objects this shard consumes (Table 1, summed over slots)."""
        return self.object_map.n_objects

    def storage_profile(self):
        """Per-server base-object counts (Theorem 7's capacity view)."""
        return self.object_map.storage_profile()
