"""Frozen, picklable configuration for the sharded KV service.

Mirrors :class:`~repro.net.config.TransportConfig`: eager validation in
``__post_init__``, classmethod constructors, and a ``cache_payload()``
canonical form so shard configs can key the experiment engine's
:class:`~repro.exec.ResultCache` and travel through pickled specs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

from repro.errors import InvalidConfig

#: substrates a shard can run on; maps 1:1 to Table 1 rows (register =
#: Algorithm 2's kf + ceil(k/z)(f+1) economics with a k-writer bound;
#: max-register / cas = 2f+1 per slot, unbounded writers).
SHARD_SUBSTRATES = ("register", "max-register", "cas")


@dataclass(frozen=True)
class ShardConfig:
    """One shard: an independent emulated register fleet.

    ``capacity`` register slots are provisioned up front — remote
    replica processes are built from a static placement snapshot, so the
    slot set cannot grow after deployment; keys are assigned to slots
    lazily and a full shard raises
    :class:`~repro.errors.ShardCapacityExceeded`.
    """

    substrate: str = "max-register"
    n: int = 3
    f: int = 1
    k_writers: int = 4
    capacity: int = 8

    def __post_init__(self) -> None:
        if self.substrate not in SHARD_SUBSTRATES:
            raise InvalidConfig(
                f"substrate must be one of {SHARD_SUBSTRATES},"
                f" got {self.substrate!r}"
            )
        if self.n < 2 * self.f + 1:
            raise InvalidConfig(
                f"n must be at least 2f+1 = {2 * self.f + 1}, got {self.n}"
            )
        if self.k_writers <= 0:
            raise InvalidConfig("k_writers must be positive")
        if self.capacity <= 0:
            raise InvalidConfig("capacity must be positive")

    @classmethod
    def make(cls, substrate: str = "max-register", **params) -> "ShardConfig":
        """Build a shard config, mirroring ``EmulationSpec.make``."""
        return cls(substrate=substrate, **params)

    def cache_payload(self) -> "Dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class ShardServiceConfig:
    """The whole service: a tuple of shards plus client-pool sizing.

    Shards may be heterogeneous (different substrates or quorum
    layouts); :meth:`make` builds the common uniform case.  ``seed``
    derives every shard's scheduler seed; ``writer_pool`` bounds the
    per-slot client pool that unbounded-writer substrates multiplex
    sessions onto; ``reader_pool`` is the per-slot reader count.
    """

    shards: "Tuple[ShardConfig, ...]"
    seed: int = 0
    writer_pool: int = 4
    reader_pool: int = 2

    def __post_init__(self) -> None:
        if not self.shards:
            raise InvalidConfig("need at least one shard")
        if not all(isinstance(s, ShardConfig) for s in self.shards):
            raise InvalidConfig("shards must be ShardConfig instances")
        if self.writer_pool <= 0:
            raise InvalidConfig("writer_pool must be positive")
        if self.reader_pool <= 0:
            raise InvalidConfig("reader_pool must be positive")

    @classmethod
    def make(
        cls,
        shards: int = 3,
        substrate: str = "max-register",
        seed: int = 0,
        writer_pool: int = 4,
        reader_pool: int = 2,
        **shard_params,
    ) -> "ShardServiceConfig":
        """A uniform service: ``shards`` identical :class:`ShardConfig`."""
        if shards <= 0:
            raise InvalidConfig("need at least one shard")
        shard = ShardConfig.make(substrate=substrate, **shard_params)
        return cls(
            shards=(shard,) * shards,
            seed=seed,
            writer_pool=writer_pool,
            reader_pool=reader_pool,
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def cache_payload(self) -> "Dict[str, Any]":
        return {
            "shards": [shard.cache_payload() for shard in self.shards],
            "seed": self.seed,
            "writer_pool": self.writer_pool,
            "reader_pool": self.reader_pool,
        }
