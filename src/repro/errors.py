"""Typed error hierarchy for the service-facing layers.

Every failure the KV/service/net paths can signal derives from
:class:`ReproError`, so callers can catch one root and branch on type,
and the CLI can map each failure class to a distinct exit code
(see :func:`repro.cli.exit_code_for`).

Each concrete error *also* subclasses the builtin its call site
historically raised (``ValueError`` for caller mistakes,
``RuntimeError`` for environmental failures), so pre-existing
``except ValueError`` / ``except RuntimeError`` handlers — inside and
outside this repo — keep working unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every typed failure raised by repro's service layers."""


class WriterBoundExceeded(ReproError, ValueError):
    """A write used a writer identity outside the provisioned bound.

    The register substrate provisions ``k`` writers per register
    (Table 1's ``kf + ceil(k/z)(f+1)`` economics are *per writer*);
    naming writer ``i >= k`` is a caller error, not a transient fault.
    """


class QuorumUnavailable(ReproError, RuntimeError):
    """An operation could not reach its quorum and did not complete.

    Raised when driving the simulation to quiescence stalls — more than
    ``f`` servers are crashed or unreachable, or the transport cannot
    deliver enough responses for the protocol to return.
    """


class StaleShardMap(ReproError, RuntimeError):
    """A session holds an outdated shard map.

    The sharded service versions its key→shard placement; a session
    opened against version ``v`` that performs an operation after the
    service moved to ``v' > v`` is told to refresh instead of being
    silently routed by a stale map.
    """


class ShardCapacityExceeded(ReproError, RuntimeError):
    """A shard's pre-provisioned register slots are all assigned.

    Shards provision a fixed number of emulated registers up front
    (remote replica processes are built from a static placement
    snapshot); a new key arriving at a full shard cannot be placed.
    """


class WireDecodeError(ReproError, ValueError):
    """A wire frame failed to decode (truncation, trailing bytes,
    unknown tags, malformed payloads)."""


class InvalidConfig(ReproError, ValueError):
    """A configuration object was built with inconsistent parameters.

    Raised by the eager ``__post_init__``/``validate`` checks of the
    frozen config dataclasses (``KVConfig``, ``ShardConfig``,
    ``ShardServiceConfig``, …): a bad substrate name, a writer pool of
    zero, transports that do not match the shard count.  Caller error,
    detected before any simulation state exists.
    """


class BoundViolation(ReproError, ValueError):
    """A parameter is outside the domain of one of the paper's bounds.

    The closed-form functions in :mod:`repro.core.bounds` implement
    Table 1 and Theorems 1-7, whose statements require ``k > 0``,
    ``f > 0`` and ``n >= 2f + 1``; calling them outside that domain is
    a caller error, not a property of the emulation.
    """


class SessionClosed(ReproError, RuntimeError):
    """An operation was attempted on a closed session handle.

    Session handles (``KVSession``, ``ServiceSession``) are single-use
    context managers; using one after ``close()`` is a lifecycle bug in
    the caller, distinct from any transient quorum failure.
    """


class QueueError(ReproError, RuntimeError):
    """A distributed experiment queue operation failed.

    Root of the :mod:`repro.exec.queue` failures: schema mismatches on a
    shared queue file, exporting an undrained queue, invalid lifecycle
    transitions.  The specific claim-protocol failures below subclass
    this, so ``except QueueError`` catches the whole family.
    """


class CellClaimLost(QueueError):
    """A worker's claim on a cell disappeared before write-back.

    The claim CAS (``claimed`` + owner) failed: a stale-claim reset
    reopened the cell — or another worker already wrote it — while this
    worker was still executing.  The worker's result is discarded; the
    queue's copy is whatever the current owner writes.
    """


class CodeVersionMismatch(QueueError):
    """A worker refused cells enqueued under different experiment code.

    Queue rows record the exec-engine code fingerprint
    (:func:`repro.exec.cache.experiment_code_version`) they were
    enqueued with; a worker whose checkout fingerprints differently
    must not execute them — its results would be silently incomparable,
    exactly the staleness the ResultCache's versioned keys prevent
    locally.
    """


class GridFailed(ReproError, RuntimeError):
    """Every cell of an experiment grid failed.

    Raised by :func:`repro.exec.engine.run_experiment_grid` when no cell
    produced a result to merge; the per-cell tracebacks ride along in
    the message.  Partial failures do *not* raise — they merge the
    survivors and surface in the engine report.
    """


class NoMergeableResults(ReproError, ValueError):
    """A result merge was attempted with no successful results.

    Raised by :func:`repro.exec.engine.merge_results` when every entry
    is ``None`` (all shards failed, or the caller filtered everything
    out) — a caller error distinct from the grid-level
    :class:`GridFailed`.
    """


class UnknownExperiment(ReproError, ValueError):
    """An experiment id is not in the registry.

    Raised by :func:`repro.experiments.get_experiment` for ids (and
    function-name aliases) that resolve to nothing; the message lists
    the registered ids.
    """
