"""Measurement and reporting helpers.

* :mod:`repro.analysis.resources` — resource consumption, covering and
  point-contention meters (the paper's complexity measures).
* :mod:`repro.analysis.tables` — ASCII table rendering for the benchmark
  harness.
"""

from repro.analysis.invariants import (
    InvariantViolation,
    MonotoneTimestampInvariant,
    QuorumResponseInvariant,
    WriterCoverInvariant,
)
from repro.analysis.resources import (
    PointContentionMeter,
    ResourceMeter,
    StepMeter,
)
from repro.analysis.tables import render_table

__all__ = [
    "InvariantViolation",
    "MonotoneTimestampInvariant",
    "PointContentionMeter",
    "QuorumResponseInvariant",
    "ResourceMeter",
    "StepMeter",
    "WriterCoverInvariant",
    "render_table",
]
