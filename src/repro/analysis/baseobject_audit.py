"""Self-audit: are the simulated base objects really atomic?

The whole reproduction rests on the premise that base objects are atomic
(Appendix A: "we assume that the base objects are atomic").  Our kernel
realizes atomicity constructively — operations take effect at their
respond step — but that is a *claim about the implementation*, so this
module re-derives it empirically: it projects the low-level operation
record of a finished run onto each base object (the paper's ``r|b``) and
runs the generic linearizability checker over every projection.

Used by the property-based test suite as a meta-validation of the
substrate: if the kernel ever mis-applied an operation, the audit — not
just some downstream emulation test — pinpoints the object.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import (
    CASSpec,
    MaxRegisterSpec,
    RegisterSpec,
    SequentialSpec,
)
from repro.sim.history import HistoryOp
from repro.sim.ids import ObjectId
from repro.sim.kernel import Kernel
from repro.sim.objects import (
    AtomicRegister,
    BaseObject,
    CASObject,
    MaxRegister,
    OpKind,
)

_OP_NAMES = {
    OpKind.READ: "read",
    OpKind.WRITE: "write",
    OpKind.READ_MAX: "read_max",
    OpKind.WRITE_MAX: "write_max",
    OpKind.CAS: "cas",
}


def spec_for(obj: BaseObject) -> SequentialSpec:
    """The sequential specification matching a base object's type."""
    if isinstance(obj, AtomicRegister):
        return RegisterSpec(obj.initial_value)
    if isinstance(obj, MaxRegister):
        return MaxRegisterSpec(obj.initial_value)
    if isinstance(obj, CASObject):
        return CASSpec(obj.initial_value)
    raise TypeError(f"no spec for base object type {type(obj).__name__}")


def object_projection(kernel: Kernel, object_id: ObjectId) -> "List[HistoryOp]":
    """The run's projection ``r|b``: this object's low-level operations as
    history records (trigger = invoke, respond = return)."""
    projection = []
    for op in kernel.ops.values():
        if op.object_id != object_id:
            continue
        projection.append(
            HistoryOp(
                seq=op.op_id.value,
                client_id=op.client_id,
                name=_OP_NAMES[op.kind],
                args=op.args,
                invoke_time=op.trigger_time,
                return_time=op.respond_time,
                result=op.result,
            )
        )
    return projection


def audit_base_objects(
    kernel: Kernel, max_ops_per_object: "Optional[int]" = 40
) -> "Dict[ObjectId, bool]":
    """Linearizability verdict for every base object's projection.

    ``max_ops_per_object`` skips projections too large for the exact
    checker (returns True for them — they are not *checked*, not known
    bad; pass None to force checking everything).
    """
    verdicts: "Dict[ObjectId, bool]" = {}
    for obj in kernel.object_map.objects:
        projection = object_projection(kernel, obj.object_id)
        if (
            max_ops_per_object is not None
            and len(projection) > max_ops_per_object
        ):
            verdicts[obj.object_id] = True
            continue
        verdicts[obj.object_id] = is_linearizable(projection, spec_for(obj))
    return verdicts


def assert_base_objects_atomic(kernel: Kernel, **kwargs) -> None:
    """Raise if any base object projection fails linearizability."""
    verdicts = audit_base_objects(kernel, **kwargs)
    bad = [str(oid) for oid, ok in verdicts.items() if not ok]
    assert not bad, f"non-linearizable base object histories: {bad}"
