"""ASCII table rendering for the benchmark harness.

The benches print paper-shaped tables; this keeps the formatting in one
place.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(
    headers: "Sequence[str]",
    rows: "Sequence[Sequence[Any]]",
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]

    def fmt(row: "List[str]") -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append(separator)
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)
