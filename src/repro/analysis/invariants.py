"""Online invariant monitors for the paper's structural lemmas.

Attach these listeners to a kernel and they assert, after every step,
properties the paper proves about Algorithm 2's executions:

* :class:`WriterCoverInvariant` — **Observation 3**: a writer with no
  in-flight high-level write covers at most f base registers.
* :class:`MonotoneTimestampInvariant` — **Lemma 6 / Corollary 3**: in
  write-sequential runs, each completed high-level write carries a
  strictly larger timestamp than the writes preceding it (checked from
  the TSVal payloads of low-level writes).
* :class:`QuorumResponseInvariant` — clients never wait for more than
  ``n - f`` servers: at every step, each client's *oldest* high-level
  operation has pending low-level ops on at most f distinct correct
  servers once it has gathered its quorum (a liveness-debugging aid).

The property-based tests attach these to randomized runs so a regression
in the algorithm trips an invariant at the exact step it happens, rather
than surfacing later as a checker violation.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.sim.events import (
    EventListener,
    InvokeEvent,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)
from repro.sim.ids import ClientId, ObjectId
from repro.sim.values import TSVal


class InvariantViolation(AssertionError):
    """An online invariant failed; the message pinpoints step and actor."""


class WriterCoverInvariant(EventListener):
    """Observation 3: idle writers cover at most f registers."""

    def __init__(self, f: int, write_name: str = "write"):
        self.f = f
        self.write_name = write_name
        self._pending: "Dict[ClientId, Set[int]]" = {}
        self._in_flight: "Set[ClientId]" = set()
        self.checks = 0

    def on_invoke(self, event: InvokeEvent) -> None:
        if event.name == self.write_name:
            self._in_flight.add(event.client_id)

    def on_return(self, event: ReturnEvent) -> None:
        if event.name == self.write_name:
            self._in_flight.discard(event.client_id)

    def on_trigger(self, event: TriggerEvent) -> None:
        if event.op.is_mutator:
            self._pending.setdefault(event.op.client_id, set()).add(
                event.op.op_id.value
            )

    def on_respond(self, event: RespondEvent) -> None:
        if event.op.is_mutator:
            pending = self._pending.get(event.op.client_id)
            if pending is not None:
                pending.discard(event.op.op_id.value)

    def on_step(self, time: int) -> None:
        self.checks += 1
        for client_id, pending in self._pending.items():
            if client_id in self._in_flight:
                continue  # mid-operation: the bound applies at idle time
            if len(pending) > self.f:
                raise InvariantViolation(
                    f"Observation 3 violated at t={time}: idle writer"
                    f" {client_id} covers {len(pending)} > f={self.f}"
                    " registers"
                )


class MonotoneTimestampInvariant(EventListener):
    """Lemma 6: sequential high-level writes use increasing timestamps.

    Watches the TSVal payloads of low-level writes: the timestamps used
    by a high-level write must strictly exceed those of every write that
    *returned* before it was invoked.
    """

    def __init__(self, write_name: str = "write"):
        self.write_name = write_name
        #: largest timestamp used by any returned high-level write
        self._completed_ts = 0
        #: seq -> max ts observed among the op's low-level writes
        self._op_ts: "Dict[int, int]" = {}
        #: seq -> floor it must exceed (snapshot at invocation)
        self._floor: "Dict[int, int]" = {}

    def on_invoke(self, event: InvokeEvent) -> None:
        if event.name == self.write_name:
            self._floor[event.seq] = self._completed_ts
            self._op_ts[event.seq] = 0

    def on_trigger(self, event: TriggerEvent) -> None:
        op = event.op
        seq = op.highlevel_seq
        if seq not in self._op_ts or not op.is_mutator:
            return
        value = op.args[0] if op.args else None
        if isinstance(value, TSVal):
            self._op_ts[seq] = max(self._op_ts[seq], value.ts)
            if value.ts <= self._floor[seq]:
                raise InvariantViolation(
                    f"Lemma 6 violated at t={event.time}: write #{seq}"
                    f" used ts={value.ts} <= floor {self._floor[seq]}"
                )

    def on_return(self, event: ReturnEvent) -> None:
        if event.seq in self._op_ts:
            self._completed_ts = max(
                self._completed_ts, self._op_ts.pop(event.seq)
            )
            self._floor.pop(event.seq, None)


class QuorumResponseInvariant(EventListener):
    """No client accumulates pending ops on more than ``max_servers``
    distinct correct servers (a deadlock early-warning, not a paper
    lemma: useful when developing new emulations on the substrate)."""

    def __init__(self, object_map, max_servers: int):
        self.object_map = object_map
        self.max_servers = max_servers
        self._pending: "Dict[ClientId, Dict[int, ObjectId]]" = {}

    def on_trigger(self, event: TriggerEvent) -> None:
        self._pending.setdefault(event.op.client_id, {})[
            event.op.op_id.value
        ] = event.op.object_id

    def on_respond(self, event: RespondEvent) -> None:
        ops = self._pending.get(event.op.client_id)
        if ops is not None:
            ops.pop(event.op.op_id.value, None)

    def on_step(self, time: int) -> None:
        for client_id, ops in self._pending.items():
            correct = {
                self.object_map.server_of(oid)
                for oid in ops.values()
                if not self.object_map.object(oid).crashed
            }
            if len(correct) > self.max_servers:
                raise InvariantViolation(
                    f"client {client_id} has pending ops on {len(correct)}"
                    f" correct servers (> {self.max_servers}) at t={time}"
                )
