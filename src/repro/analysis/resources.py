"""Meters for the paper's complexity measures.

* **Resource consumption** (Section 2): the number of base objects *used*
  in a run.  :class:`ResourceMeter` counts objects that received at least
  one trigger, plus covering statistics.
* **Point contention** (Appendix C, Theorem 8): the maximum number of
  clients with an incomplete high-level invocation at any single point.
  :class:`PointContentionMeter` tracks it online.
* **Step counts** per high-level operation (the time-complexity metric of
  Section 5's discussion): :class:`StepMeter`.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.sim.events import (
    EventListener,
    InvokeEvent,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)
from repro.sim.ids import ObjectId, ServerId
from repro.sim.server import ObjectMap


class ResourceMeter(EventListener):
    """Counts base objects used and covered in a run."""

    def __init__(self, object_map: ObjectMap):
        self.object_map = object_map
        self.used: "Set[ObjectId]" = set()
        self._pending_mutators: "Dict[ObjectId, int]" = {}
        self.max_covered = 0

    def on_trigger(self, event: TriggerEvent) -> None:
        self.used.add(event.op.object_id)
        if event.op.is_mutator:
            count = self._pending_mutators.get(event.op.object_id, 0)
            self._pending_mutators[event.op.object_id] = count + 1
            self.max_covered = max(self.max_covered, self.covered_now)

    def on_respond(self, event: RespondEvent) -> None:
        # A respond for an untracked object belongs to an op triggered
        # before this meter attached (e.g. in-flight beyond the quorum a
        # previous workload waited for) — not part of this run's measure.
        if event.op.is_mutator and self._pending_mutators.get(
            event.op.object_id, 0
        ) > 0:
            self._pending_mutators[event.op.object_id] -= 1

    @property
    def resource_consumption(self) -> int:
        """Objects used so far (the paper's resource consumption)."""
        return len(self.used)

    @property
    def covered_now(self) -> int:
        """Registers currently covered by a pending write."""
        return sum(1 for c in self._pending_mutators.values() if c > 0)

    def used_per_server(self) -> "Dict[ServerId, int]":
        profile: "Dict[ServerId, int]" = {}
        for oid in self.used:
            sid = self.object_map.server_of(oid)
            profile[sid] = profile.get(sid, 0) + 1
        return profile


class PointContentionMeter(EventListener):
    """Tracks point contention of the run and of each operation.

    ``PntCont(r)`` is the maximum number of clients with an incomplete
    high-level invocation after some finite prefix of ``r``.
    """

    def __init__(self) -> None:
        self._active: "Set[int]" = set()
        self.run_point_contention = 0
        #: seq -> point contention during that operation's interval
        self.per_op: "Dict[int, int]" = {}

    def on_invoke(self, event: InvokeEvent) -> None:
        self._active.add(event.seq)
        now = len(self._active)
        self.run_point_contention = max(self.run_point_contention, now)
        for seq in self._active:
            self.per_op[seq] = max(self.per_op.get(seq, 0), now)

    def on_return(self, event: ReturnEvent) -> None:
        self._active.discard(event.seq)


class StepMeter(EventListener):
    """Counts low-level operations per high-level operation.

    The per-op trigger count is the natural time-complexity proxy in the
    asynchronous model (each trigger/respond pair is a round trip to a
    base object).
    """

    def __init__(self) -> None:
        self.triggers_per_op: "Dict[int, int]" = {}
        self.durations: "Dict[int, int]" = {}
        self._invoked_at: "Dict[int, int]" = {}

    def on_invoke(self, event: InvokeEvent) -> None:
        self.triggers_per_op[event.seq] = 0
        self._invoked_at[event.seq] = event.time

    def on_trigger(self, event: TriggerEvent) -> None:
        seq = event.op.highlevel_seq
        if seq is not None and seq in self.triggers_per_op:
            self.triggers_per_op[seq] += 1

    def on_return(self, event: ReturnEvent) -> None:
        invoked = self._invoked_at.get(event.seq)
        if invoked is not None:
            self.durations[event.seq] = event.time - invoked

    def mean_triggers(self) -> float:
        if not self.triggers_per_op:
            return 0.0
        return sum(self.triggers_per_op.values()) / len(self.triggers_per_op)

    def mean_duration(self) -> float:
        if not self.durations:
            return 0.0
        return sum(self.durations.values()) / len(self.durations)
