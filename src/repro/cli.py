"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bounds  -k K -n N -f F``  — print the Table 1 row for the parameters.
* ``layout  -k K -n N -f F``  — print the Figure 1-style register layout.
* ``sweep   -k K -f F``       — register bounds vs the server count,
  measured on deployed Algorithm 2 layouts (Theorem 1 through the grid
  engine: one cell per n).
* ``lemma1  -k K -n N -f F``  — run the lower-bound adversary against
  Algorithm 2 and print the covering growth.
* ``ablate``                  — break Algorithm 2's mechanisms and show
  the resulting WS-Safety violations (one cell per variant).
* ``experiment <id>``         — regenerate paper tables/figures by id.
* ``demo``                    — a quick write/read/crash walkthrough.

``experiment``, ``sweep`` and ``ablate`` route through the parallel
experiment engine (:mod:`repro.exec`): ``--jobs N`` fans independent
cells out to worker processes, results persist in a content-addressed
cache under ``--cache-dir`` (default ``.repro_cache/``), and repeated
invocations complete from cache without simulating a single kernel step.
Tables print to stdout; per-cell progress and the
``engine: cells=... hits=... misses=...`` summary go to stderr, so
stdout stays byte-identical between serial, parallel and cached runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.layout import RegisterLayout
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.exec import (
    ResultCache,
    expand_experiment,
    merge_results,
    run_cells,
    run_experiment_grid,
)
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


def _add_knf(parser: argparse.ArgumentParser, need_n: bool = True) -> None:
    parser.add_argument("-k", type=int, default=3, help="number of writers")
    if need_n:
        parser.add_argument("-n", type=int, default=7, help="number of servers")
    parser.add_argument("-f", type=int, default=2, help="failure threshold")


def _add_seed(
    parser: argparse.ArgumentParser, default: "Optional[int]" = None
) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=default,
        help="scheduler seed (recorded in result payloads)",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent cells (1 = in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache entirely",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every cell and overwrite its cached result",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        metavar="PATH",
        help="result cache root (default: .repro_cache)",
    )


def _engine_cache(args) -> "Optional[ResultCache]":
    return None if args.no_cache else ResultCache(args.cache_dir)


def _progress(message: str) -> None:
    print(message, file=sys.stderr)


def cmd_bounds(args) -> int:
    rows = []
    for base in ("max-register", "cas", "register"):
        row = bounds.table1_row(base, args.k, args.n, args.f)
        rows.append([base, row["lower"], row["upper"]])
    print(
        render_table(
            ["base object", "lower bound", "upper bound"],
            rows,
            title=f"Table 1 @ k={args.k}, n={args.n}, f={args.f}",
        )
    )
    return 0


def cmd_layout(args) -> int:
    layout = RegisterLayout(args.k, args.n, args.f)
    layout.validate()
    print(layout.render())
    return 0


def cmd_sweep(args) -> int:
    result, report = run_experiment_grid(
        "TH1",
        {"k": args.k, "f": args.f},
        seed=args.seed,
        jobs=args.jobs,
        cache=_engine_cache(args),
        refresh=args.refresh,
        progress=_progress,
    )
    print(result.render())
    return 1 if report.failed else 0


def cmd_lemma1(args) -> int:
    def factory(scheduler):
        return WSRegisterEmulation(
            k=args.k, n=args.n, f=args.f, scheduler=scheduler
        )

    scheduler = None if args.seed is None else RandomScheduler(args.seed)
    runner = Lemma1Runner(factory, k=args.k, f=args.f, scheduler=scheduler)
    reports = runner.run()
    rows = [
        [r.index, r.covered, r.index * args.f, r.covered_servers_in_F]
        for r in reports
    ]
    print(
        render_table(
            ["write", "covered", ">= i*f", "covered on F"],
            rows,
            title=(
                f"Lemma 1 adversary vs Algorithm 2 @ k={args.k},"
                f" n={args.n}, f={args.f}"
            ),
        )
    )
    runner.assert_all_claims()
    print("all Lemma 1 claims hold")
    return 0


def cmd_ablate(args) -> int:
    result, report = run_experiment_grid(
        "ABL",
        {},
        jobs=args.jobs,
        cache=_engine_cache(args),
        refresh=args.refresh,
        progress=_progress,
    )
    print(result.render())
    return 1 if report.failed else 0


def cmd_theorem5(args) -> int:
    from repro.core.theorem5 import partition_violation

    violations = partition_violation(args.f)
    print(
        f"n = 2f = {2 * args.f} servers, f = {args.f}:"
        f" split-brain run -> {violations[0] if violations else 'no violation?'}"
    )
    print(f"Theorem 5 minimum: {bounds.min_servers(args.f)} servers")
    return 0 if violations else 1


def cmd_experiment(args) -> int:
    import json

    from repro.experiments import list_experiments

    if args.list or (args.id is None and not args.all):
        print("available experiments:")
        for experiment_id in list_experiments():
            print(f"  {experiment_id}")
        return 0
    ids = list_experiments() if args.all else [args.id]

    # One engine pass over every cell of every requested experiment: the
    # whole batch shares the pool, the cache and a single summary line.
    cells = []
    spans = []
    for experiment_id in ids:
        expansion = expand_experiment(experiment_id, {}, seed=args.seed)
        spans.append((len(cells), len(cells) + len(expansion)))
        cells.extend(expansion)
    report = run_cells(
        cells,
        jobs=args.jobs,
        cache=_engine_cache(args),
        refresh=args.refresh,
        progress=_progress,
    )
    results = []
    for experiment_id, (start, end) in zip(ids, spans):
        shard_results = [o.result for o in report.outcomes[start:end]]
        try:
            results.append(merge_results(shard_results))
        except ValueError:
            print(
                f"error: every cell of {experiment_id!r} failed",
                file=sys.stderr,
            )
    if args.json:
        payload = [result.to_dict() for result in results]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(results)} experiment(s) to {args.json}")
    else:
        for result in results:
            print(result.render())
            print()
    return 1 if report.failed else 0


def cmd_lint(args) -> int:
    import os

    from repro.lint import (
        Baseline,
        lint_paths,
        render_json,
        render_rules,
        render_text,
    )

    if args.list_rules:
        print(render_rules())
        return 0
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if os.path.exists(args.baseline):
            baseline = Baseline.load(args.baseline)
        elif args.baseline != "lint-baseline.json":
            print(
                f"error: baseline file not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
    try:
        result = lint_paths(args.paths or ["src"], baseline=baseline)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.from_findings(result.active).save(args.baseline)
        print(
            f"wrote {len(result.active)} entr(y/ies) to {args.baseline};"
            " replace the placeholder reasons before committing",
            file=sys.stderr,
        )
        return 0
    if args.json:
        payload = render_json(result)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    text = render_text(result, verbose=args.verbose)
    if args.json != "-":
        print(text)
    return 0 if result.ok and not result.stale_baseline else 1


def cmd_demo(args) -> int:
    emu = WSRegisterEmulation(
        k=1, n=5, f=2, scheduler=RandomScheduler(args.seed)
    )
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    writer.enqueue("write", "hello, fault tolerance")
    emu.system.run_to_quiescence()
    emu.kernel.crash_server(ServerId(0))
    emu.kernel.crash_server(ServerId(1))
    reader.enqueue("read")
    emu.system.run_to_quiescence()
    value = emu.history.reads[-1].result
    print(
        f"wrote and read back {value!r} through 2 server crashes"
        f" ({emu.layout.total_registers} base registers, Theorem 3)"
    )
    return 0


#: algorithm -> (write op, read op, value kind, safety check) for `cluster`.
_CLUSTER_TABLE = {
    "ws-register": ("write", "read", "str", "ws"),
    "abd": ("write", "read", "str", "register"),
    "cas-abd": ("write", "read", "str", "register"),
    "replicated-maxreg": ("write", "read", "str", "ws"),
    "collect-maxreg": ("write_max", "read_max", "int", "maxreg"),
    "ft-maxreg": ("write_max", "read_max", "int", "maxreg"),
    "single-cas": ("write_max", "read_max", "int", "maxreg"),
}


def _spec_params(args) -> dict:
    params = {}
    for name in ("k", "n", "f"):
        value = getattr(args, name, None)
        if value is not None:
            params[name] = value
    return params


def cmd_cluster(args) -> int:
    from repro.consistency.linearizability import is_linearizable
    from repro.consistency.specs import MaxRegisterSpec, RegisterSpec
    from repro.consistency.ws import check_ws_regular
    from repro.core.emulation import EmulationSpec
    from repro.net import TransportConfig

    if args.demo:
        args.algorithm, args.n, args.f, args.rounds = "abd", 3, 1, 2
    write_op, read_op, value_kind, check = _CLUSTER_TABLE[args.algorithm]
    spec = EmulationSpec.make(
        args.algorithm,
        seed=args.seed,
        transport=TransportConfig.asyncio(
            tuple(args.address), codec=args.codec
        ),
        **_spec_params(args),
    )
    try:
        emulation = spec.build()
    except TypeError as error:
        print(
            f"error: {error} (pass -k/-n/-f as the algorithm requires)",
            file=sys.stderr,
        )
        return 2
    transport = emulation.kernel.transport
    try:
        writer = emulation.add_writer(0)
        reader = emulation.add_reader()
        for round_index in range(args.rounds):
            value = (
                round_index + 1
                if value_kind == "int"
                else f"value-{round_index}"
            )
            writer.enqueue(write_op, value)
            reader.enqueue(read_op)
            result = emulation.system.run_to_quiescence(
                max_steps=100_000, batch_size=args.batch_size
            )
            if not result.satisfied:
                print(f"cluster run stalled: {result}", file=sys.stderr)
                return 1
        where = transport.describe()
        history = emulation.history
        if check == "ws":
            ok = check_ws_regular(history, cross_check=True) == []
        elif check == "register":
            ok = is_linearizable(history.all_ops(), RegisterSpec(None))
        else:
            ok = is_linearizable(history.all_ops(), MaxRegisterSpec(0))
    finally:
        transport.close()
    endpoints = where["addresses"] or [
        f"{where['host']}:{port}" for _, port in sorted(where["ports"].items())
    ]
    print(
        f"{args.algorithm} over real sockets ({', '.join(endpoints)}):"
        f" {len(history.all_ops())} ops, safety check"
        f" {'passed' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


def cmd_serve(args) -> int:
    from repro.core.emulation import EmulationSpec
    from repro.net.asyncio_transport import (
        run_replica_server,
        snapshot_placements,
    )

    spec = EmulationSpec.make(args.algorithm, seed=0, **_spec_params(args))
    try:
        emulation = spec.build()
    except TypeError as error:
        print(
            f"error: {error} (pass -k/-n/-f as the algorithm requires)",
            file=sys.stderr,
        )
        return 2
    placements = snapshot_placements(emulation.kernel.object_map)
    if args.server not in placements:
        print(
            f"error: no server {args.server} in this layout"
            f" (servers: {sorted(placements)})",
            file=sys.stderr,
        )
        return 2
    try:
        run_replica_server(
            args.server,
            placements[args.server],
            host=args.host,
            port=args.port,
            codec=args.codec,
        )
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Space Complexity of Fault-Tolerant Register Emulations"
            " (Chockler & Spiegelman, PODC 2017) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bounds = sub.add_parser("bounds", help="Table 1 row for (k, n, f)")
    _add_knf(p_bounds)
    p_bounds.set_defaults(fn=cmd_bounds)

    p_layout = sub.add_parser("layout", help="Figure 1 register layout")
    _add_knf(p_layout)
    p_layout.set_defaults(fn=cmd_layout)

    p_sweep = sub.add_parser(
        "sweep", help="register bounds vs n, measured (Theorem 1 grid)"
    )
    _add_knf(p_sweep, need_n=False)
    _add_seed(p_sweep)
    _add_engine_flags(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_lemma1 = sub.add_parser("lemma1", help="run the covering adversary")
    _add_knf(p_lemma1)
    _add_seed(p_lemma1)
    p_lemma1.set_defaults(fn=cmd_lemma1)

    p_ablate = sub.add_parser(
        "ablate", help="break Algorithm 2's mechanisms and show violations"
    )
    _add_engine_flags(p_ablate)
    p_ablate.set_defaults(fn=cmd_ablate)

    p_th5 = sub.add_parser(
        "theorem5", help="split-brain demonstration on 2f servers"
    )
    p_th5.add_argument("-f", type=int, default=1, help="failure threshold")
    p_th5.set_defaults(fn=cmd_theorem5)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a paper table/figure by id"
    )
    p_exp.add_argument("id", nargs="?", help="experiment id (e.g. T1, L1)")
    p_exp.add_argument(
        "--list", action="store_true", help="list experiment ids"
    )
    p_exp.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    p_exp.add_argument(
        "--json", metavar="PATH", help="write results as JSON to PATH"
    )
    _add_seed(p_exp)
    _add_engine_flags(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_lint = sub.add_parser(
        "lint", help="simulation-discipline static analysis (R001-R006)"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--json",
        metavar="PATH",
        help='write the JSON findings report to PATH ("-" for stdout)',
    )
    p_lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        metavar="PATH",
        help="baseline file of grandfathered findings",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline file",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    p_lint.add_argument(
        "--verbose",
        action="store_true",
        help="also show suppressed and baselined findings",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_demo = sub.add_parser("demo", help="quick write/read/crash demo")
    _add_seed(p_demo, default=0)
    p_demo.set_defaults(fn=cmd_demo)

    p_cluster = sub.add_parser(
        "cluster",
        help="run an emulation over real localhost sockets (asyncio)",
    )
    p_cluster.add_argument(
        "--algorithm",
        default="abd",
        choices=sorted(_CLUSTER_TABLE),
        help="registry algorithm to run (default: abd)",
    )
    p_cluster.add_argument("-k", type=int, default=None, help="writers")
    p_cluster.add_argument("-n", type=int, default=None, help="servers")
    p_cluster.add_argument(
        "-f", type=int, default=None, help="failure threshold"
    )
    p_cluster.add_argument(
        "--rounds", type=int, default=2, help="write/read rounds (default: 2)"
    )
    p_cluster.add_argument(
        "--address",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="connect to an external `repro serve` process for the next"
        " server index (repeat to cover every server — all or none;"
        " default: self-host every server)",
    )
    p_cluster.add_argument(
        "--codec",
        default="json",
        choices=("json", "binary"),
        help="wire codec for the request/response frames; must match the"
        " --codec of any external `repro serve` processes"
        " (default: json)",
    )
    p_cluster.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="K",
        help="run the kernel through its batched fast path, revalidating"
        " per K steps instead of every step (default: unbatched)",
    )
    p_cluster.add_argument(
        "--demo",
        action="store_true",
        help="self-hosted ABD n=3 f=1 demo (overrides the other flags)",
    )
    _add_seed(p_cluster, default=0)
    p_cluster.set_defaults(fn=cmd_cluster)

    p_serve = sub.add_parser(
        "serve", help="host one sim server's replicas for `repro cluster`"
    )
    p_serve.add_argument(
        "--algorithm",
        default="abd",
        choices=sorted(_CLUSTER_TABLE),
        help="registry algorithm whose layout to serve (default: abd)",
    )
    p_serve.add_argument("-k", type=int, default=None, help="writers")
    p_serve.add_argument("-n", type=int, default=None, help="servers")
    p_serve.add_argument(
        "-f", type=int, default=None, help="failure threshold"
    )
    p_serve.add_argument(
        "--server",
        type=int,
        default=0,
        metavar="INDEX",
        help="which sim server's replicas to host (default: 0)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind host (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=0, help="bind port (default: ephemeral)"
    )
    p_serve.add_argument(
        "--codec",
        default="json",
        choices=("json", "binary"),
        help="wire codec to speak; must match the cluster's --codec"
        " (default: json)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
