"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bounds  -k K -n N -f F``  — print the Table 1 row for the parameters.
* ``layout  -k K -n N -f F``  — print the Figure 1-style register layout.
* ``sweep   -k K -f F``       — register bounds vs the server count,
  measured on deployed Algorithm 2 layouts (Theorem 1 through the grid
  engine: one cell per n).
* ``lemma1  -k K -n N -f F``  — run the lower-bound adversary against
  Algorithm 2 and print the covering growth.
* ``ablate``                  — break Algorithm 2's mechanisms and show
  the resulting WS-Safety violations (one cell per variant).
* ``experiment <id>``         — regenerate paper tables/figures by id.
* ``queue <verb>``            — the distributed experiment queue:
  ``create`` enqueues a grid into a shared sqlite table, ``work`` runs
  a claim/execute/write-back worker (any number of them, any machine),
  ``status``/``reset`` inspect and reopen cells, ``export`` renders the
  finished table (``table|csv|md|latex``).
* ``demo``                    — a quick write/read/crash walkthrough.

``experiment``, ``sweep`` and ``ablate`` route through the parallel
experiment engine (:mod:`repro.exec`): ``--jobs N`` fans independent
cells out to worker processes, results persist in a content-addressed
cache under ``--cache-dir`` (default ``.repro_cache/``), and repeated
invocations complete from cache without simulating a single kernel step.
Tables print to stdout; per-cell progress and the
``engine: cells=... hits=... misses=...`` summary go to stderr, so
stdout stays byte-identical between serial, parallel and cached runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.layout import RegisterLayout
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.exec import (
    ResultCache,
    expand_experiment,
    merge_results,
    run_cells,
    run_experiment_grid,
)
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


def _add_knf(parser: argparse.ArgumentParser, need_n: bool = True) -> None:
    parser.add_argument("-k", type=int, default=3, help="number of writers")
    if need_n:
        parser.add_argument("-n", type=int, default=7, help="number of servers")
    parser.add_argument("-f", type=int, default=2, help="failure threshold")


def _add_seed(
    parser: argparse.ArgumentParser, default: "Optional[int]" = None
) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=default,
        help="scheduler seed (recorded in result payloads)",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent cells (1 = in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache entirely",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every cell and overwrite its cached result",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        metavar="PATH",
        help="result cache root (default: .repro_cache)",
    )


def _add_export_flag(parser: argparse.ArgumentParser) -> None:
    from repro.exec.queue import EXPORT_FORMATS

    parser.add_argument(
        "--export",
        choices=EXPORT_FORMATS,
        default="table",
        help="stdout format for the result table (default: table,"
        " the classic ASCII rendering)",
    )


def _engine_cache(args) -> "Optional[ResultCache]":
    return None if args.no_cache else ResultCache(args.cache_dir)


def _progress(message: str) -> None:
    print(message, file=sys.stderr)


def cmd_bounds(args) -> int:
    rows = []
    for base in ("max-register", "cas", "register"):
        row = bounds.table1_row(base, args.k, args.n, args.f)
        rows.append([base, row["lower"], row["upper"]])
    print(
        render_table(
            ["base object", "lower bound", "upper bound"],
            rows,
            title=f"Table 1 @ k={args.k}, n={args.n}, f={args.f}",
        )
    )
    return 0


def cmd_layout(args) -> int:
    layout = RegisterLayout(args.k, args.n, args.f)
    layout.validate()
    print(layout.render())
    return 0


def cmd_sweep(args) -> int:
    from repro.exec.queue import render_export

    result, report = run_experiment_grid(
        "TH1",
        {"k": args.k, "f": args.f},
        seed=args.seed,
        jobs=args.jobs,
        cache=_engine_cache(args),
        refresh=args.refresh,
        progress=_progress,
    )
    print(render_export(result, args.export))
    return 1 if report.failed else 0


def cmd_lemma1(args) -> int:
    def factory(scheduler):
        return WSRegisterEmulation(
            k=args.k, n=args.n, f=args.f, scheduler=scheduler
        )

    scheduler = None if args.seed is None else RandomScheduler(args.seed)
    runner = Lemma1Runner(factory, k=args.k, f=args.f, scheduler=scheduler)
    reports = runner.run()
    rows = [
        [r.index, r.covered, r.index * args.f, r.covered_servers_in_F]
        for r in reports
    ]
    print(
        render_table(
            ["write", "covered", ">= i*f", "covered on F"],
            rows,
            title=(
                f"Lemma 1 adversary vs Algorithm 2 @ k={args.k},"
                f" n={args.n}, f={args.f}"
            ),
        )
    )
    runner.assert_all_claims()
    print("all Lemma 1 claims hold")
    return 0


def cmd_ablate(args) -> int:
    result, report = run_experiment_grid(
        "ABL",
        {},
        jobs=args.jobs,
        cache=_engine_cache(args),
        refresh=args.refresh,
        progress=_progress,
    )
    print(result.render())
    return 1 if report.failed else 0


def cmd_theorem5(args) -> int:
    from repro.core.theorem5 import partition_violation

    violations = partition_violation(args.f)
    print(
        f"n = 2f = {2 * args.f} servers, f = {args.f}:"
        f" split-brain run -> {violations[0] if violations else 'no violation?'}"
    )
    print(f"Theorem 5 minimum: {bounds.min_servers(args.f)} servers")
    return 0 if violations else 1


def cmd_experiment(args) -> int:
    import json

    from repro.experiments import list_experiments

    if args.list or (args.id is None and not args.all):
        print("available experiments:")
        for experiment_id in list_experiments():
            print(f"  {experiment_id}")
        return 0
    ids = list_experiments() if args.all else [args.id]

    # One engine pass over every cell of every requested experiment: the
    # whole batch shares the pool, the cache and a single summary line.
    cells = []
    spans = []
    for experiment_id in ids:
        expansion = expand_experiment(experiment_id, {}, seed=args.seed)
        spans.append((len(cells), len(cells) + len(expansion)))
        cells.extend(expansion)
    report = run_cells(
        cells,
        jobs=args.jobs,
        cache=_engine_cache(args),
        refresh=args.refresh,
        progress=_progress,
    )
    results = []
    for experiment_id, (start, end) in zip(ids, spans):
        shard_results = [o.result for o in report.outcomes[start:end]]
        try:
            results.append(merge_results(shard_results))
        except ValueError:
            print(
                f"error: every cell of {experiment_id!r} failed",
                file=sys.stderr,
            )
    if args.json:
        payload = [result.to_dict() for result in results]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(results)} experiment(s) to {args.json}")
    else:
        from repro.exec.queue import render_export

        for result in results:
            print(render_export(result, args.export))
            print()
    return 1 if report.failed else 0


def cmd_lint(args) -> int:
    import os

    from repro.lint import (
        Baseline,
        collect_files,
        git_changed_files,
        lint_paths,
        render_explain,
        render_json,
        render_rules,
        render_sarif,
        render_text,
    )

    if args.list_rules:
        print(render_rules())
        return 0
    if args.explain:
        print(render_explain(args.explain))
        return 0
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if os.path.exists(args.baseline):
            baseline = Baseline.load(args.baseline)
        elif args.baseline != "lint-baseline.json":
            print(
                f"error: baseline file not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
    paths = args.paths or ["src"]
    if args.changed:
        changed = git_changed_files()
        if changed is None:
            print(
                "warning: --changed needs a git work tree; linting"
                " everything",
                file=sys.stderr,
            )
        else:
            try:
                selected = [
                    path
                    for path in collect_files(paths)
                    if path.resolve() in changed
                ]
            except FileNotFoundError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            if not selected:
                print("repro lint: no changed files under the given paths")
                return 0
            paths = selected
    try:
        result = lint_paths(paths, baseline=baseline, jobs=args.jobs)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.from_findings(result.active).save(args.baseline)
        print(
            f"wrote {len(result.active)} entr(y/ies) to {args.baseline};"
            " replace the placeholder reasons before committing",
            file=sys.stderr,
        )
        return 0
    if args.prune_baseline:
        if baseline is None:
            print(
                "error: --prune-baseline needs a baseline file",
                file=sys.stderr,
            )
            return 2
        pruned = baseline.pruned(result.stale_baseline)
        dropped = len(baseline.entries) - len(pruned.entries)
        pruned.save(args.baseline)
        print(
            f"pruned {dropped} stale entr(y/ies) from {args.baseline}"
            f" ({len(pruned.entries)} remain)",
            file=sys.stderr,
        )
        result.stale_baseline = []
    if args.json:
        payload = render_json(result)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if args.format == "sarif":
        reasons = baseline.reasons() if baseline is not None else None
        print(render_sarif(result, baseline_reasons=reasons))
    elif args.format == "json":
        if args.json != "-":
            print(render_json(result))
    else:
        text = render_text(result, verbose=args.verbose)
        if args.json != "-":
            print(text)
    return 0 if result.ok and not result.stale_baseline else 1


def cmd_demo(args) -> int:
    emu = WSRegisterEmulation(
        k=1, n=5, f=2, scheduler=RandomScheduler(args.seed)
    )
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    writer.enqueue("write", "hello, fault tolerance")
    emu.system.run_to_quiescence()
    emu.kernel.crash_server(ServerId(0))
    emu.kernel.crash_server(ServerId(1))
    reader.enqueue("read")
    emu.system.run_to_quiescence()
    value = emu.history.reads[-1].result
    print(
        f"wrote and read back {value!r} through 2 server crashes"
        f" ({emu.layout.total_registers} base registers, Theorem 3)"
    )
    return 0


#: algorithm -> (write op, read op, value kind, safety check) for `cluster`.
_CLUSTER_TABLE = {
    "ws-register": ("write", "read", "str", "ws"),
    "abd": ("write", "read", "str", "register"),
    "cas-abd": ("write", "read", "str", "register"),
    "replicated-maxreg": ("write", "read", "str", "ws"),
    "collect-maxreg": ("write_max", "read_max", "int", "maxreg"),
    "ft-maxreg": ("write_max", "read_max", "int", "maxreg"),
    "single-cas": ("write_max", "read_max", "int", "maxreg"),
}


def _spec_params(args) -> dict:
    params = {}
    for name in ("k", "n", "f"):
        value = getattr(args, name, None)
        if value is not None:
            params[name] = value
    return params


def cmd_cluster(args) -> int:
    from repro.consistency.linearizability import is_linearizable
    from repro.consistency.specs import MaxRegisterSpec, RegisterSpec
    from repro.consistency.ws import check_ws_regular
    from repro.core.emulation import EmulationSpec
    from repro.net import TransportConfig

    if args.demo:
        args.algorithm, args.n, args.f, args.rounds = "abd", 3, 1, 2
    write_op, read_op, value_kind, check = _CLUSTER_TABLE[args.algorithm]
    spec = EmulationSpec.make(
        args.algorithm,
        seed=args.seed,
        transport=TransportConfig.asyncio(
            tuple(args.address), codec=args.codec
        ),
        **_spec_params(args),
    )
    try:
        emulation = spec.build()
    except TypeError as error:
        print(
            f"error: {error} (pass -k/-n/-f as the algorithm requires)",
            file=sys.stderr,
        )
        return 2
    transport = emulation.kernel.transport
    try:
        writer = emulation.add_writer(0)
        reader = emulation.add_reader()
        for round_index in range(args.rounds):
            value = (
                round_index + 1
                if value_kind == "int"
                else f"value-{round_index}"
            )
            writer.enqueue(write_op, value)
            reader.enqueue(read_op)
            result = emulation.system.run_to_quiescence(
                max_steps=100_000, batch_size=args.batch_size
            )
            if not result.satisfied:
                print(f"cluster run stalled: {result}", file=sys.stderr)
                return 1
        where = transport.describe()
        history = emulation.history
        if check == "ws":
            ok = check_ws_regular(history, cross_check=True) == []
        elif check == "register":
            ok = is_linearizable(history.all_ops(), RegisterSpec(None))
        else:
            ok = is_linearizable(history.all_ops(), MaxRegisterSpec(0))
    finally:
        transport.close()
    endpoints = where["addresses"] or [
        f"{where['host']}:{port}" for _, port in sorted(where["ports"].items())
    ]
    print(
        f"{args.algorithm} over real sockets ({', '.join(endpoints)}):"
        f" {len(history.all_ops())} ops, safety check"
        f" {'passed' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


def _shard_service_config(args):
    from repro.apps.shard import ShardServiceConfig

    return ShardServiceConfig.make(
        shards=args.shards,
        substrate=args.substrate,
        n=args.n if args.n is not None else 3,
        f=args.f if args.f is not None else 1,
        k_writers=args.k if args.k is not None else 4,
        capacity=args.capacity,
        seed=getattr(args, "seed", 0) or 0,
    )


def _serve_shards(args) -> int:
    """``repro serve --shards S``: host one node of a sharded service.

    The process serves sim server ``--server`` of *every* shard — one
    listener per shard, announced as ``serving s<i>/shard<j> on h:p``.
    Placements are a pure function of the shard config, so the load
    generator and every serve process rebuild identical base objects
    from the same flags.
    """
    from repro.apps.shard import shard_placements
    from repro.net.asyncio_transport import run_shard_servers

    config = _shard_service_config(args)
    shard_replicas = {}
    for shard_index, shard in enumerate(config.shards):
        placements, _ = shard_placements(shard)
        replicas = [
            (object_index, type_name, initial)
            for object_index, (server_index, type_name, initial) in enumerate(
                placements
            )
            if server_index == args.server
        ]
        if not replicas:
            print(
                f"error: no replicas for server {args.server} in shard"
                f" {shard_index} (servers: 0..{shard.n - 1})",
                file=sys.stderr,
            )
            return 2
        shard_replicas[shard_index] = replicas
    ports = None
    if args.ports:
        values = [int(port) for port in args.ports.split(",")]
        if len(values) != len(shard_replicas):
            print(
                f"error: --ports names {len(values)} port(s) for"
                f" {len(shard_replicas)} shards",
                file=sys.stderr,
            )
            return 2
        ports = dict(enumerate(values))
    try:
        run_shard_servers(
            args.server,
            shard_replicas,
            host=args.host,
            ports=ports,
            codec=args.codec,
        )
    except KeyboardInterrupt:
        pass
    return 0


def cmd_serve(args) -> int:
    from repro.core.emulation import EmulationSpec
    from repro.net.asyncio_transport import (
        run_replica_server,
        snapshot_placements,
    )

    if args.shards is not None:
        return _serve_shards(args)
    spec = EmulationSpec.make(args.algorithm, seed=0, **_spec_params(args))
    try:
        emulation = spec.build()
    except TypeError as error:
        print(
            f"error: {error} (pass -k/-n/-f as the algorithm requires)",
            file=sys.stderr,
        )
        return 2
    placements = snapshot_placements(emulation.kernel.object_map)
    if args.server not in placements:
        print(
            f"error: no server {args.server} in this layout"
            f" (servers: {sorted(placements)})",
            file=sys.stderr,
        )
        return 2
    try:
        run_replica_server(
            args.server,
            placements[args.server],
            host=args.host,
            port=args.port,
            codec=args.codec,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _spawn_shard_node(args, server_index: int, ports=None):
    """Start one `repro serve --shards` process; returns (proc, ports).

    Blocks until the process announces every shard listener; ``ports``
    pins the listener ports (process restart must reuse them so the
    transports' reconnect loops find the replica again).
    """
    import os
    import re
    import subprocess

    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--shards",
        str(args.shards),
        "--substrate",
        args.substrate,
        "-n",
        str(args.n if args.n is not None else 3),
        "-f",
        str(args.f if args.f is not None else 1),
        "-k",
        str(args.k if args.k is not None else 4),
        "--capacity",
        str(args.capacity),
        "--server",
        str(server_index),
        "--codec",
        args.codec,
    ]
    if ports:
        command += [
            "--ports",
            ",".join(str(ports[j]) for j in sorted(ports)),
        ]
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    announced = {}
    pattern = re.compile(r"serving s(\d+)/shard(\d+) on ([\d.]+):(\d+)")
    while len(announced) < args.shards:
        line = proc.stdout.readline()
        if not line:
            from repro.errors import QuorumUnavailable

            raise QuorumUnavailable(
                f"serve process for server {server_index} exited before"
                " announcing its listeners"
            )
        match = pattern.search(line)
        if match:
            announced[int(match.group(2))] = (
                match.group(3),
                int(match.group(4)),
            )
    return proc, announced


def _loadgen_scenarios(args, service, procs, ports_by_server):
    """Build the mid-run fault schedule for `repro loadgen`."""
    import signal

    from repro.apps.shard import Scenario

    if args.scenario == "none":
        return []
    n = args.n if args.n is not None else 3
    duration = args.duration
    partition_target = 1 % n
    crash_target = n - 1
    events = []

    def _partition():
        service.partition({partition_target})
        return f"blackholed server {partition_target} on every shard"

    def _heal():
        service.heal()
        return "partition healed"

    if procs:  # external serve processes: a crash is a real SIGKILL

        def _crash():
            procs[crash_target].send_signal(signal.SIGKILL)
            procs[crash_target].wait()
            return f"SIGKILLed serve process for server {crash_target}"

        def _restart():
            proc, _ = _spawn_shard_node(
                args, crash_target, ports=ports_by_server[crash_target]
            )
            procs[crash_target] = proc
            return (
                f"restarted serve process for server {crash_target}"
                " on its old ports"
            )

    else:  # self-hosted replicas: crash retains state (stable storage)

        def _crash():
            for fleet in service.fleets:
                fleet.transport.crash_replica(crash_target)
            return f"crashed self-hosted replica {crash_target}"

        def _restart():
            for fleet in service.fleets:
                fleet.transport.restart_replica(crash_target)
            return f"restarted replica {crash_target}"

    events.append(Scenario(0.20 * duration, "partition", _partition))
    events.append(Scenario(0.40 * duration, "heal", _heal))
    events.append(Scenario(0.55 * duration, "crash", _crash))
    events.append(Scenario(0.75 * duration, "restart", _restart))
    return events


def cmd_loadgen(args) -> int:
    """Open-loop Zipfian load against a sharded KV service."""
    import json
    import time

    from repro.apps.shard import ShardedKVService, run_loadgen

    n = args.n if args.n is not None else 3
    f = args.f if args.f is not None else 1
    if args.transport == "spawn" and args.scenario == "gauntlet":
        # A SIGKILLed serve process restarts with empty replicas —
        # amnesia consumes failure budget beyond the f crash-stop
        # allowance.  Every read quorum must still intersect every
        # write quorum in a non-amnesiac server: n >= 2f + 2.
        if n < 2 * f + 2:
            print(
                f"error: the spawn-mode crash+restart scenario needs"
                f" n >= 2f+2 (restarted replicas lose their state);"
                f" got n={n}, f={f}. Use -n {2 * f + 2} or"
                " --scenario none",
                file=sys.stderr,
            )
            return 2
    config = _shard_service_config(args)
    transports = None
    procs = {}
    ports_by_server = {}
    if args.transport in ("asyncio", "spawn"):
        from repro.net.asyncio_transport import AsyncioTransport

        if args.transport == "spawn":
            for server_index in range(n):
                proc, announced = _spawn_shard_node(args, server_index)
                procs[server_index] = proc
                ports_by_server[server_index] = {
                    shard: port for shard, (_, port) in announced.items()
                }
            transports = [
                AsyncioTransport(
                    addresses=tuple(
                        f"127.0.0.1:{ports_by_server[i][shard_index]}"
                        for i in range(n)
                    ),
                    idle_timeout=args.idle_timeout,
                    codec=args.codec,
                )
                for shard_index in range(args.shards)
            ]
        else:
            transports = [
                AsyncioTransport(
                    idle_timeout=args.idle_timeout, codec=args.codec
                )
                for _ in range(args.shards)
            ]
    service = ShardedKVService(config, transports=transports)
    try:
        scenarios = _loadgen_scenarios(args, service, procs, ports_by_server)
        report = run_loadgen(
            service,
            clock=time.perf_counter,
            sleep=time.sleep,
            rate=args.rate,
            duration=args.duration,
            sessions=args.sessions,
            keys=args.keys,
            zipf_s=args.zipf,
            read_fraction=args.read_fraction,
            seed=args.seed if args.seed is not None else 0,
            scenarios=scenarios,
            drain_timeout=args.drain_timeout,
        )
    finally:
        service.close()
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
                proc.wait()
    report["transport"] = args.transport
    report["codec"] = args.codec if args.transport != "sim" else None
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    else:
        print(payload)
    print(
        f"loadgen: {report['completed_ops']}/{report['offered_ops']} ops"
        f" ({report['throughput_ops_s']} ops/s),"
        f" p50={report['latency_ms']['p50']}ms"
        f" p99={report['latency_ms']['p99']}ms,"
        f" audit {report['audit']['ok']}/{report['audit']['keys']} ok",
        file=sys.stderr,
    )
    ok = (
        report["audit"]["all_ok"]
        and report["sustained_fraction"] >= args.min_sustained
    )
    return 0 if ok else 1


def _queue_backend(args):
    from repro.exec.queue import SqliteQueue

    return SqliteQueue(args.db)


def _import_modules(args) -> None:
    """Import extension modules that register extra experiments."""
    import importlib

    for module in getattr(args, "import_module", None) or ():
        importlib.import_module(module)


def cmd_queue_create(args) -> int:
    import json
    import time

    from repro.exec.queue import enqueue_cells
    from repro.experiments import list_experiments

    _import_modules(args)
    if args.all:
        ids = list_experiments()
    elif args.ids:
        ids = args.ids
    else:
        print(
            "error: name experiment ids to enqueue (or pass --all)",
            file=sys.stderr,
        )
        return 2
    overrides = json.loads(args.params) if args.params else {}
    if args.seeds:
        seeds: "List[Optional[int]]" = [
            int(part) for part in args.seeds.split(",") if part.strip()
        ]
    else:
        seeds = [args.seed]
    cells = []
    for experiment_id in ids:
        for seed in seeds:
            cells.extend(
                expand_experiment(experiment_id, dict(overrides), seed=seed)
            )
    backend = _queue_backend(args)
    try:
        added = enqueue_cells(backend, cells)
        status = backend.status(time.time(), args.ttl)
    finally:
        backend.close()
    print(
        f"queue {args.db}: enqueued {added} new cell(s),"
        f" {len(cells) - added} already present"
    )
    print(status.summary())
    return 0


def cmd_queue_work(args) -> int:
    from repro.exec.queue import QueueWorker

    _import_modules(args)
    backend = _queue_backend(args)
    try:
        worker = QueueWorker(
            backend,
            worker_id=args.worker_id,
            cache=_engine_cache(args),
            refresh=args.refresh,
            ttl=args.ttl,
            check_version=not args.no_version_check,
            progress=_progress,
        )
        report = worker.run(max_cells=args.max_cells)
    finally:
        backend.close()
    return 1 if report.failed else 0


def cmd_queue_status(args) -> int:
    import json
    import time

    backend = _queue_backend(args)
    try:
        status = backend.status(time.time(), args.ttl)
        rows = backend.rows() if args.json else []
    finally:
        backend.close()
    if args.json:
        payload = {
            "counts": status.counts,
            "stale": status.stale,
            "experiments": status.experiments,
            "cells": [
                {
                    "cell_id": row.cell_id,
                    "index": row.index,
                    "experiment_id": row.experiment_id,
                    "seed": row.seed,
                    "status": row.status,
                    "owner": row.owner,
                    "attempts": row.attempts,
                    "steps": row.steps,
                    "elapsed": row.elapsed,
                    "error": row.error,
                }
                for row in rows
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(status.summary())
    return 0


def cmd_queue_reset(args) -> int:
    import time

    if not (args.stale or args.failed or args.cell):
        print(
            "error: pick what to reopen: --stale, --failed and/or"
            " --cell ID",
            file=sys.stderr,
        )
        return 2
    backend = _queue_backend(args)
    try:
        reopened = backend.reset(
            stale_before=(time.time() - args.ttl) if args.stale else None,
            failed=args.failed,
            cell_ids=args.cell or None,
        )
    finally:
        backend.close()
    print(f"reopened {len(reopened)} cell(s)")
    for cell_id in reopened:
        print(f"  {cell_id}")
    return 0


def cmd_queue_export(args) -> int:
    from repro.exec.queue import export_queue

    backend = _queue_backend(args)
    try:
        rendered = export_queue(
            backend, fmt=args.export, partial=args.partial
        )
    finally:
        backend.close()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered)
    return 0


def _add_queue_db(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db",
        required=True,
        metavar="PATH",
        help="the shared queue file (any path every worker can reach)",
    )


def _add_queue_ttl(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat time-to-live: claims not renewed for this long"
        " count as stale (default: 30)",
    )


def _add_import_module(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--import-module",
        action="append",
        metavar="MODULE",
        help="import MODULE first (registers extra experiments;"
        " repeatable)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Space Complexity of Fault-Tolerant Register Emulations"
            " (Chockler & Spiegelman, PODC 2017) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bounds = sub.add_parser("bounds", help="Table 1 row for (k, n, f)")
    _add_knf(p_bounds)
    p_bounds.set_defaults(fn=cmd_bounds)

    p_layout = sub.add_parser("layout", help="Figure 1 register layout")
    _add_knf(p_layout)
    p_layout.set_defaults(fn=cmd_layout)

    p_sweep = sub.add_parser(
        "sweep", help="register bounds vs n, measured (Theorem 1 grid)"
    )
    _add_knf(p_sweep, need_n=False)
    _add_seed(p_sweep)
    _add_engine_flags(p_sweep)
    _add_export_flag(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_lemma1 = sub.add_parser("lemma1", help="run the covering adversary")
    _add_knf(p_lemma1)
    _add_seed(p_lemma1)
    p_lemma1.set_defaults(fn=cmd_lemma1)

    p_ablate = sub.add_parser(
        "ablate", help="break Algorithm 2's mechanisms and show violations"
    )
    _add_engine_flags(p_ablate)
    p_ablate.set_defaults(fn=cmd_ablate)

    p_th5 = sub.add_parser(
        "theorem5", help="split-brain demonstration on 2f servers"
    )
    p_th5.add_argument("-f", type=int, default=1, help="failure threshold")
    p_th5.set_defaults(fn=cmd_theorem5)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a paper table/figure by id"
    )
    p_exp.add_argument("id", nargs="?", help="experiment id (e.g. T1, L1)")
    p_exp.add_argument(
        "--list", action="store_true", help="list experiment ids"
    )
    p_exp.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    p_exp.add_argument(
        "--json", metavar="PATH", help="write results as JSON to PATH"
    )
    _add_seed(p_exp)
    _add_engine_flags(p_exp)
    _add_export_flag(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_lint = sub.add_parser(
        "lint", help="simulation-discipline static analysis (R001-R010)"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--json",
        metavar="PATH",
        help='write the JSON findings report to PATH ("-" for stdout)',
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format on stdout (sarif = SARIF 2.1.0 for CI"
        " annotations)",
    )
    p_lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs HEAD (staged, unstaged,"
        " untracked)",
    )
    p_lint.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="analyze files across N worker processes (0 = sequential)",
    )
    p_lint.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's rationale and fix guidance (e.g. R010)",
    )
    p_lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop stale entries from the baseline file and rewrite it",
    )
    p_lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        metavar="PATH",
        help="baseline file of grandfathered findings",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline file",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    p_lint.add_argument(
        "--verbose",
        action="store_true",
        help="also show suppressed and baselined findings",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_demo = sub.add_parser("demo", help="quick write/read/crash demo")
    _add_seed(p_demo, default=0)
    p_demo.set_defaults(fn=cmd_demo)

    p_cluster = sub.add_parser(
        "cluster",
        help="run an emulation over real localhost sockets (asyncio)",
    )
    p_cluster.add_argument(
        "--algorithm",
        default="abd",
        choices=sorted(_CLUSTER_TABLE),
        help="registry algorithm to run (default: abd)",
    )
    p_cluster.add_argument("-k", type=int, default=None, help="writers")
    p_cluster.add_argument("-n", type=int, default=None, help="servers")
    p_cluster.add_argument(
        "-f", type=int, default=None, help="failure threshold"
    )
    p_cluster.add_argument(
        "--rounds", type=int, default=2, help="write/read rounds (default: 2)"
    )
    p_cluster.add_argument(
        "--address",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="connect to an external `repro serve` process for the next"
        " server index (repeat to cover every server — all or none;"
        " default: self-host every server)",
    )
    p_cluster.add_argument(
        "--codec",
        default="json",
        choices=("json", "binary"),
        help="wire codec for the request/response frames; must match the"
        " --codec of any external `repro serve` processes"
        " (default: json)",
    )
    p_cluster.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="K",
        help="run the kernel through its batched fast path, revalidating"
        " per K steps instead of every step (default: unbatched)",
    )
    p_cluster.add_argument(
        "--demo",
        action="store_true",
        help="self-hosted ABD n=3 f=1 demo (overrides the other flags)",
    )
    _add_seed(p_cluster, default=0)
    p_cluster.set_defaults(fn=cmd_cluster)

    p_serve = sub.add_parser(
        "serve", help="host one sim server's replicas for `repro cluster`"
    )
    p_serve.add_argument(
        "--algorithm",
        default="abd",
        choices=sorted(_CLUSTER_TABLE),
        help="registry algorithm whose layout to serve (default: abd)",
    )
    p_serve.add_argument("-k", type=int, default=None, help="writers")
    p_serve.add_argument("-n", type=int, default=None, help="servers")
    p_serve.add_argument(
        "-f", type=int, default=None, help="failure threshold"
    )
    p_serve.add_argument(
        "--server",
        type=int,
        default=0,
        metavar="INDEX",
        help="which sim server's replicas to host (default: 0)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind host (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=0, help="bind port (default: ephemeral)"
    )
    p_serve.add_argument(
        "--codec",
        default="json",
        choices=("json", "binary"),
        help="wire codec to speak; must match the cluster's --codec"
        " (default: json)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="serve one node of an S-shard KV service instead of a"
        " single-fleet algorithm layout (one listener per shard;"
        " pairs with `repro loadgen`)",
    )
    p_serve.add_argument(
        "--substrate",
        default="max-register",
        choices=("register", "max-register", "cas"),
        help="shard substrate for --shards mode (default: max-register)",
    )
    p_serve.add_argument(
        "--capacity",
        type=int,
        default=8,
        metavar="SLOTS",
        help="register slots per shard in --shards mode (default: 8)",
    )
    p_serve.add_argument(
        "--ports",
        default=None,
        metavar="P0,P1,...",
        help="pin the per-shard listener ports in --shards mode (used"
        " when restarting a node on the ports its clients redial)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="open-loop Zipfian load against a sharded KV service",
    )
    p_loadgen.add_argument(
        "--shards", type=int, default=3, help="shard count (default: 3)"
    )
    p_loadgen.add_argument(
        "--substrate",
        default="max-register",
        choices=("register", "max-register", "cas"),
        help="shard substrate (default: max-register)",
    )
    p_loadgen.add_argument("-k", type=int, default=None, help="writer bound")
    p_loadgen.add_argument(
        "-n", type=int, default=None, help="servers per shard (default: 3)"
    )
    p_loadgen.add_argument(
        "-f", type=int, default=None, help="failure threshold (default: 1)"
    )
    p_loadgen.add_argument(
        "--capacity",
        type=int,
        default=32,
        help="register slots per shard (default: 32)",
    )
    p_loadgen.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="offered arrival rate, ops/s (default: 500)",
    )
    p_loadgen.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="traffic window, seconds (default: 5)",
    )
    p_loadgen.add_argument(
        "--sessions",
        type=int,
        default=1000,
        help="concurrent client sessions (default: 1000)",
    )
    p_loadgen.add_argument(
        "--keys",
        type=int,
        default=64,
        help="key universe size (default: 64; keep <= shards*capacity)",
    )
    p_loadgen.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        help="Zipf popularity exponent (default: 1.1)",
    )
    p_loadgen.add_argument(
        "--read-fraction",
        type=float,
        default=0.7,
        help="fraction of operations that are reads (default: 0.7)",
    )
    p_loadgen.add_argument(
        "--transport",
        default="sim",
        choices=("sim", "asyncio", "spawn"),
        help="sim: in-process kernels; asyncio: self-hosted localhost"
        " sockets; spawn: real `repro serve` subprocesses, one per"
        " server (default: sim)",
    )
    p_loadgen.add_argument(
        "--codec",
        default="json",
        choices=("json", "binary"),
        help="wire codec for socket transports (default: json)",
    )
    p_loadgen.add_argument(
        "--scenario",
        default="none",
        choices=("none", "gauntlet"),
        help="gauntlet: partition+heal then replica crash+restart"
        " mid-traffic (default: none)",
    )
    p_loadgen.add_argument(
        "--idle-timeout",
        type=float,
        default=0.02,
        help="socket-transport idle wait per step, seconds (default: 0.02)",
    )
    p_loadgen.add_argument(
        "--drain-timeout",
        type=float,
        default=15.0,
        help="post-traffic completion drain bound, seconds (default: 15)",
    )
    p_loadgen.add_argument(
        "--min-sustained",
        type=float,
        default=0.99,
        help="fail (exit 1) if completed/offered falls below this"
        " (default: 0.99)",
    )
    p_loadgen.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report here instead of stdout",
    )
    _add_seed(p_loadgen, default=0)
    p_loadgen.set_defaults(fn=cmd_loadgen)

    p_queue = sub.add_parser(
        "queue",
        help="distributed experiment queue over a shared table",
    )
    queue_sub = p_queue.add_subparsers(dest="queue_command", required=True)

    q_create = queue_sub.add_parser(
        "create", help="enqueue experiment grids into the shared table"
    )
    _add_queue_db(q_create)
    q_create.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids to enqueue (e.g. T1 TH1)",
    )
    q_create.add_argument(
        "--all", action="store_true", help="enqueue every experiment"
    )
    _add_seed(q_create)
    q_create.add_argument(
        "--seeds",
        metavar="A,B,C",
        help="enqueue one replicate grid per seed (overrides --seed)",
    )
    q_create.add_argument(
        "--params",
        metavar="JSON",
        help='kwargs overrides as a JSON object (e.g. \'{"k": 3}\')',
    )
    _add_queue_ttl(q_create)
    _add_import_module(q_create)
    q_create.set_defaults(fn=cmd_queue_create)

    q_work = queue_sub.add_parser(
        "work", help="claim/execute/write-back until no OPEN cells remain"
    )
    _add_queue_db(q_work)
    q_work.add_argument(
        "--worker-id",
        metavar="ID",
        help="claim owner label (default: hostname-pid)",
    )
    q_work.add_argument(
        "--max-cells",
        type=int,
        metavar="N",
        help="stop after claiming N cells (default: drain the queue)",
    )
    _add_queue_ttl(q_work)
    q_work.add_argument(
        "--no-version-check",
        action="store_true",
        help="execute cells enqueued under a different code fingerprint",
    )
    q_work.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the local result cache entirely",
    )
    q_work.add_argument(
        "--refresh",
        action="store_true",
        help="recompute claimed cells even when cached locally",
    )
    q_work.add_argument(
        "--cache-dir",
        default=".repro_cache",
        metavar="PATH",
        help="local result cache root (default: .repro_cache)",
    )
    _add_import_module(q_work)
    q_work.set_defaults(fn=cmd_queue_work)

    q_status = queue_sub.add_parser(
        "status", help="aggregate counts (and per-cell detail with --json)"
    )
    _add_queue_db(q_status)
    q_status.add_argument(
        "--json",
        action="store_true",
        help="print the full per-cell table as JSON",
    )
    _add_queue_ttl(q_status)
    q_status.set_defaults(fn=cmd_queue_status)

    q_reset = queue_sub.add_parser(
        "reset", help="reopen stale claims, failed cells, or exact ids"
    )
    _add_queue_db(q_reset)
    q_reset.add_argument(
        "--stale",
        action="store_true",
        help="reopen claimed cells whose heartbeat exceeded --ttl",
    )
    q_reset.add_argument(
        "--failed", action="store_true", help="reopen failed cells"
    )
    q_reset.add_argument(
        "--cell",
        action="append",
        metavar="CELL_ID",
        help="reopen this exact cell id (repeatable)",
    )
    _add_queue_ttl(q_reset)
    q_reset.set_defaults(fn=cmd_queue_reset)

    q_export = queue_sub.add_parser(
        "export", help="render the finished table(s) from the queue"
    )
    _add_queue_db(q_export)
    _add_export_flag(q_export)
    q_export.add_argument(
        "--partial",
        action="store_true",
        help="export even while cells are still open or claimed",
    )
    q_export.add_argument(
        "--out",
        metavar="PATH",
        help="write to PATH instead of stdout",
    )
    q_export.set_defaults(fn=cmd_queue_export)

    return parser


def exit_code_for(error) -> int:
    """Distinct exit code per typed failure (see :mod:`repro.errors`).

    Scripts driving ``repro cluster``/``serve``/``loadgen`` can branch
    on the class of failure without parsing stderr.
    """
    from repro import errors

    for error_class, code in (
        (errors.WriterBoundExceeded, 3),
        (errors.QuorumUnavailable, 4),
        (errors.StaleShardMap, 5),
        (errors.ShardCapacityExceeded, 6),
        (errors.WireDecodeError, 7),
        (errors.InvalidConfig, 8),
        (errors.BoundViolation, 9),
        (errors.SessionClosed, 10),
        # subclasses precede QueueError so they keep distinct codes.
        (errors.CellClaimLost, 12),
        (errors.CodeVersionMismatch, 13),
        (errors.QueueError, 11),
        (errors.GridFailed, 14),
        (errors.NoMergeableResults, 15),
        (errors.UnknownExperiment, 16),
    ):
        if isinstance(error, error_class):
            return code
    return 2


def main(argv: "Optional[List[str]]" = None) -> int:
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
