"""Wire codec for the asyncio transport.

Newline-delimited JSON with tagged encodings for the two non-JSON value
shapes the protocols put into base objects: tuples (argument lists must
round-trip as tuples — ``LowLevelOp.args`` is one, and CAS compares
``==`` on whatever it is handed) and
:class:`~repro.sim.values.TSVal` timestamps.  The codec is deliberately
closed: an unencodable value is an error, not a silent ``str()`` — a
protocol that started shipping richer values over the wire should extend
the codec, not corrupt comparisons.

Request frame::

    {"op": 7, "client": 0, "object": 2, "kind": "write", "args": [...]}

Response frame::

    {"op": 7, "result": ...}
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.values import TSVal

_TSVAL_TAG = "__tsval__"
_TUPLE_TAG = "__tuple__"


def encode_value(value: Any) -> Any:
    """Encode one value into JSON-safe form (recursive, tagged)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, TSVal):
        return {_TSVAL_TAG: [value.ts, value.wid, encode_value(value.val)]}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in sorted(value.items()):
            if not isinstance(key, str):
                raise TypeError(f"non-string dict key on the wire: {key!r}")
            encoded[key] = encode_value(item)
        return encoded
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if _TSVAL_TAG in value:
            ts, wid, val = value[_TSVAL_TAG]
            return TSVal(ts=ts, wid=wid, val=decode_value(val))
        if _TUPLE_TAG in value:
            return tuple(decode_value(item) for item in value[_TUPLE_TAG])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def encode_request(op: "LowLevelOp") -> bytes:
    frame = {
        "op": op.op_id.value,
        "client": op.client_id.index,
        "object": op.object_id.index,
        "kind": op.kind.value,
        "args": encode_value(list(op.args)),
    }
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode_request(line: bytes) -> "LowLevelOp":
    """Rebuild the operation on the server side.

    ``trigger_time`` is not meaningful across the wire and is set to 0;
    the authoritative timing lives in the client-side kernel.
    """
    frame = json.loads(line.decode("utf-8"))
    return LowLevelOp(
        op_id=OpId(frame["op"]),
        client_id=ClientId(frame["client"]),
        object_id=ObjectId(frame["object"]),
        kind=OpKind(frame["kind"]),
        args=tuple(decode_value(frame["args"])),
        trigger_time=0,
    )


def encode_response(op_value: int, result: Any) -> bytes:
    frame = {"op": op_value, "result": encode_value(result)}
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode_response(line: bytes) -> "Dict[str, Any]":
    frame = json.loads(line.decode("utf-8"))
    return {"op": frame["op"], "result": decode_value(frame["result"])}
