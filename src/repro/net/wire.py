"""Wire codecs for the asyncio transport.

Two interchangeable codecs ship the request/response legs between a
kernel and its replica servers:

* :class:`JsonWireCodec` — newline-delimited JSON with tagged encodings
  for the two non-JSON value shapes the protocols put into base objects:
  tuples (argument lists must round-trip as tuples — ``LowLevelOp.args``
  is one, and CAS compares ``==`` on whatever it is handed) and
  :class:`~repro.sim.values.TSVal` timestamps.  Human-readable; one
  frame per line.
* :class:`BinaryWireCodec` — length-prefixed struct-packed frames with
  one-byte interned type tags and msgpack-style value encoding
  (LEB128 varints, zigzag signed ints of arbitrary precision, UTF-8
  strings, raw bytes, recursive containers).  Several times cheaper to
  encode and decode, and the framing supports pipelining: any number of
  frames can sit in one TCP segment and be split without scanning for
  delimiters.  See ``docs/API.md`` ("Wire format") for the exact frame
  layout.

Both codecs are deliberately closed: an unencodable value is an error,
not a silent ``str()`` — a protocol that started shipping richer values
over the wire should extend the codec, not corrupt comparisons.  Both
reject malformed input loudly: truncated frames, oversized lengths and
unknown tags raise instead of yielding partial values.

JSON request frame::

    {"op": 7, "client": 0, "object": 2, "kind": "write", "args": [...]}

JSON response frame::

    {"op": 7, "result": ...}

Binary frames carry the same fields; ``tests/net/test_wire_binary.py``
pins the cross-codec equivalence on recorded cluster sessions.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

from repro.errors import WireDecodeError
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.values import TSVal

_TSVAL_TAG = "__tsval__"
_TUPLE_TAG = "__tuple__"


def encode_value(value: Any) -> Any:
    """Encode one value into JSON-safe form (recursive, tagged)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, TSVal):
        return {_TSVAL_TAG: [value.ts, value.wid, encode_value(value.val)]}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in sorted(value.items()):
            if not isinstance(key, str):
                raise TypeError(f"non-string dict key on the wire: {key!r}")
            encoded[key] = encode_value(item)
        return encoded
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if _TSVAL_TAG in value:
            ts, wid, val = value[_TSVAL_TAG]
            return TSVal(ts=ts, wid=wid, val=decode_value(val))
        if _TUPLE_TAG in value:
            return tuple(decode_value(item) for item in value[_TUPLE_TAG])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def encode_request(op: "LowLevelOp") -> bytes:
    frame = {
        "op": int(op.op_id.value),
        "client": op.client_id.index,
        "object": op.object_id.index,
        "kind": op.kind.value,
        "args": encode_value(list(op.args)),
    }
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode_request(line: bytes) -> "LowLevelOp":
    """Rebuild the operation on the server side.

    ``trigger_time`` is not meaningful across the wire and is set to 0;
    the authoritative timing lives in the client-side kernel.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
        return LowLevelOp(
            op_id=OpId(frame["op"]),
            client_id=ClientId(frame["client"]),
            object_id=ObjectId(frame["object"]),
            kind=OpKind(frame["kind"]),
            args=tuple(decode_value(frame["args"])),
            trigger_time=0,
        )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
        raise WireDecodeError(f"malformed request frame: {error}") from error


def encode_response(op_value: int, result: Any) -> bytes:
    frame = {"op": int(op_value), "result": encode_value(result)}
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode_response(line: bytes) -> "Dict[str, Any]":
    try:
        frame = json.loads(line.decode("utf-8"))
        return {"op": frame["op"], "result": decode_value(frame["result"])}
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
        raise WireDecodeError(f"malformed response frame: {error}") from error


# -- binary codec ------------------------------------------------------------
#
# Frame:   u32 big-endian payload length | payload.
# Payload: frame-kind byte (0x01 request / 0x02 response) | body.
# Request body:  varint op | varint client | varint object |
#                u8 op-kind code | value (the args tuple).
# Response body: varint op | value (the result).
#
# Values are a one-byte type tag followed by the tag-specific encoding;
# varints are unsigned LEB128, signed ints ride zigzag-mapped LEB128
# (arbitrary precision — Python ints never truncate).  Dicts are sorted
# by key, mirroring the JSON codec's canonical form.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_TSVAL = 0x0A

_FRAME_REQUEST = 0x01
_FRAME_RESPONSE = 0x02

#: interned op-kind codes (definition order of the enum; both ends of a
#: connection run this module, so the table is always in agreement).
_KIND_TO_CODE = {kind: code for code, kind in enumerate(OpKind)}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

#: refuse frames above this size — a corrupt or hostile length prefix
#: must not make the reader allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN_STRUCT = struct.Struct(">I")
_F64_STRUCT = struct.Struct(">d")


def _pack_varint(value: int, out: bytearray) -> None:
    """Unsigned LEB128 (7 bits per byte, high bit = continuation)."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _unpack_varint(buf: bytes, pos: int) -> "Tuple[int, int]":
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise WireDecodeError("truncated varint on the wire")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _pack_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        # bools are handled above; OpId (an int subclass) encodes as its
        # plain value.  Zigzag keeps small negatives short and LEB128
        # carries arbitrary precision.
        out.append(_T_INT)
        value = int(value)
        _pack_varint(
            (value << 1) if value >= 0 else ((-value << 1) - 1), out
        )
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64_STRUCT.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STR)
        _pack_varint(len(encoded), out)
        out += encoded
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _pack_varint(len(value), out)
        out += value
    elif isinstance(value, TSVal):
        out.append(_T_TSVAL)
        _pack_value(value.ts, out)
        _pack_value(value.wid, out)
        _pack_value(value.val, out)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _pack_varint(len(value), out)
        for item in value:
            _pack_value(item, out)
    elif isinstance(value, list):
        out.append(_T_LIST)
        _pack_varint(len(value), out)
        for item in value:
            _pack_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _pack_varint(len(value), out)
        for key, item in sorted(value.items()):
            if not isinstance(key, str):
                raise TypeError(f"non-string dict key on the wire: {key!r}")
            encoded = key.encode("utf-8")
            _pack_varint(len(encoded), out)
            out += encoded
            _pack_value(item, out)
    else:
        raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def _unpack_value(buf: bytes, pos: int) -> "Tuple[Any, int]":
    if pos >= len(buf):
        raise WireDecodeError("truncated value on the wire")
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        raw, pos = _unpack_varint(buf, pos)
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(buf):
            raise WireDecodeError("truncated float on the wire")
        return _F64_STRUCT.unpack_from(buf, pos)[0], end
    if tag == _T_STR or tag == _T_BYTES:
        length, pos = _unpack_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise WireDecodeError("truncated string on the wire")
        raw = bytes(buf[pos:end])
        return (raw.decode("utf-8") if tag == _T_STR else raw), end
    if tag == _T_LIST or tag == _T_TUPLE:
        count, pos = _unpack_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _unpack_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _unpack_varint(buf, pos)
        result: "Dict[str, Any]" = {}
        for _ in range(count):
            length, pos = _unpack_varint(buf, pos)
            end = pos + length
            if end > len(buf):
                raise WireDecodeError("truncated dict key on the wire")
            key = bytes(buf[pos:end]).decode("utf-8")
            item, pos = _unpack_value(buf, end)
            result[key] = item
        return result, pos
    if tag == _T_TSVAL:
        ts, pos = _unpack_value(buf, pos)
        wid, pos = _unpack_value(buf, pos)
        val, pos = _unpack_value(buf, pos)
        return TSVal(ts=ts, wid=wid, val=val), pos
    raise WireDecodeError(f"unknown wire tag 0x{tag:02x}")


def _frame(payload: bytearray) -> bytes:
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte wire limit"
        )
    return _LEN_STRUCT.pack(len(payload)) + bytes(payload)


def encode_binary_request(op: "LowLevelOp") -> bytes:
    payload = bytearray((_FRAME_REQUEST,))
    _pack_varint(int(op.op_id.value), payload)
    _pack_varint(op.client_id.index, payload)
    _pack_varint(op.object_id.index, payload)
    payload.append(_KIND_TO_CODE[op.kind])
    _pack_value(op.args, payload)
    return _frame(payload)


def decode_binary_request(payload: bytes) -> "LowLevelOp":
    """Rebuild the operation on the server side (binary framing)."""
    if not payload or payload[0] != _FRAME_REQUEST:
        raise WireDecodeError("not a binary request frame")
    op_value, pos = _unpack_varint(payload, 1)
    client_index, pos = _unpack_varint(payload, pos)
    object_index, pos = _unpack_varint(payload, pos)
    if pos >= len(payload):
        raise WireDecodeError("truncated request frame on the wire")
    kind = _CODE_TO_KIND.get(payload[pos])
    if kind is None:
        raise WireDecodeError(f"unknown op-kind code {payload[pos]}")
    args, pos = _unpack_value(payload, pos + 1)
    if pos != len(payload):
        raise WireDecodeError(f"{len(payload) - pos} trailing bytes in frame")
    if not isinstance(args, tuple):
        raise WireDecodeError("request args must decode as a tuple")
    return LowLevelOp(
        op_id=OpId(op_value),
        client_id=ClientId(client_index),
        object_id=ObjectId(object_index),
        kind=kind,
        args=args,
        trigger_time=0,
    )


def encode_binary_response(op_value: int, result: Any) -> bytes:
    payload = bytearray((_FRAME_RESPONSE,))
    _pack_varint(int(op_value), payload)
    _pack_value(result, payload)
    return _frame(payload)


def decode_binary_response(payload: bytes) -> "Dict[str, Any]":
    if not payload or payload[0] != _FRAME_RESPONSE:
        raise WireDecodeError("not a binary response frame")
    op_value, pos = _unpack_varint(payload, 1)
    result, pos = _unpack_value(payload, pos)
    if pos != len(payload):
        raise WireDecodeError(f"{len(payload) - pos} trailing bytes in frame")
    return {"op": op_value, "result": result}


# -- codec objects -----------------------------------------------------------


class JsonWireCodec:
    """Newline-delimited JSON framing (the original codec)."""

    name = "json"

    encode_request = staticmethod(encode_request)
    decode_request = staticmethod(decode_request)
    encode_response = staticmethod(encode_response)
    decode_response = staticmethod(decode_response)

    @staticmethod
    async def read_frame(reader) -> "Optional[bytes]":
        """One frame's bytes, or ``None`` on a clean EOF."""
        line = await reader.readline()
        return line if line else None


class BinaryWireCodec:
    """Length-prefixed struct-packed framing (see module docstring)."""

    name = "binary"

    encode_request = staticmethod(encode_binary_request)
    decode_request = staticmethod(decode_binary_request)
    encode_response = staticmethod(encode_binary_response)
    decode_response = staticmethod(decode_binary_response)

    @staticmethod
    async def read_frame(reader) -> "Optional[bytes]":
        """One frame's payload, or ``None`` on a clean EOF.

        A truncated header or body raises (``IncompleteReadError``): a
        peer that dies mid-frame is an error, not a clean shutdown.  A
        length above :data:`MAX_FRAME_BYTES` is rejected before any
        allocation happens.
        """
        import asyncio

        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean EOF on a frame boundary
            raise
        (length,) = _LEN_STRUCT.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ValueError(
                f"frame of {length} bytes exceeds the"
                f" {MAX_FRAME_BYTES}-byte wire limit"
            )
        return await reader.readexactly(length)


#: codec registry for configs and the CLI.
CODECS = {
    JsonWireCodec.name: JsonWireCodec,
    BinaryWireCodec.name: BinaryWireCodec,
}


def get_codec(name: str):
    """Look up a codec by name (``"json"`` or ``"binary"``)."""
    try:
        return CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown wire codec {name!r}; known: {sorted(CODECS)}"
        ) from None
