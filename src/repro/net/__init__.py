"""repro.net — the pluggable message substrate.

The paper's model delivers client→base-object invocations and responses
through an abstract asynchronous channel.  This package makes that
channel an explicit, swappable layer behind ``Context.trigger`` and the
kernel's respond path:

* :class:`~repro.net.transport.Transport` — the seam itself (request
  leg, respond step, response leg, progress hooks);
* :class:`~repro.net.transport.InProcTransport` — the direct delivery
  the kernel always had, now stated as a transport (byte-identical
  seeded histories and traces);
* :class:`~repro.net.lossy.LossyTransport` — deterministic seeded
  network-fault injection composed from the fault models in
  :mod:`repro.net.faults` (drop, duplicate, reorder, delay
  distributions, partition/heal schedules);
* :class:`~repro.net.asyncio_transport.AsyncioTransport` — the same
  unmodified protocol state machines over real localhost sockets
  (``repro cluster`` / ``repro serve``);
* :class:`~repro.net.config.TransportConfig` — the picklable
  description that travels inside an
  :class:`~repro.core.emulation.EmulationSpec` and keys the result
  cache.
"""

from repro.net.transport import InProcTransport, Transport
from repro.net.faults import (
    Delay,
    Drop,
    Duplicate,
    FaultPlan,
    LinkFaults,
    Partition,
    Reorder,
    chaos_faults,
    straggler_plan,
)
from repro.net.lossy import LossyTransport
from repro.net.config import TransportConfig
from repro.net.wire import BinaryWireCodec, JsonWireCodec, get_codec

__all__ = [
    "Transport",
    "InProcTransport",
    "LossyTransport",
    "TransportConfig",
    "JsonWireCodec",
    "BinaryWireCodec",
    "get_codec",
    "FaultPlan",
    "LinkFaults",
    "Drop",
    "Duplicate",
    "Delay",
    "Reorder",
    "Partition",
    "chaos_faults",
    "straggler_plan",
]
