"""Seeded network-fault injection behind the transport seam.

:class:`LossyTransport` runs a :class:`~repro.net.faults.FaultPlan`
between clients and servers: every request and response leg gets a
deterministic :class:`~repro.net.faults.MessageFate` (drop, delay,
reorder jitter, duplicate, partition hold) decided at send time from
``hash((seed, op_id, leg_code, server))`` — an all-int tuple, so the
same seed replays the same fates in any process.  In-flight messages
sit in
delivery heaps keyed by (due tick, send sequence); the kernel pumps the
heaps at the top of every step and, when nothing else is enabled,
force-flushes the earliest message — so every message that is not
dropped is *eventually* delivered (the fairness assumption under which
liveness may be asserted; see docs/MODEL.md).

Relative to the paper's model these are out-of-model stressors: the
kernel still executes one action per step and operations still take
effect at their respond step, but a request may reach its server late,
twice, or never.  Safety checkers must pass regardless; liveness only
holds for plans that preserve eventual delivery to ``n - f`` servers
(no drops beyond ``f``, partitions that heal).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

from repro.net.faults import REQUEST, RESPONSE, FaultPlan, MessageFate
from repro.net.transport import Transport

#: the fate of every message on a neutral link: delivered next pump,
#: no drops, no copies, no jitter.  One shared instance — the fast path
#: must not even pay a dataclass construction per message.
_NEUTRAL_FATE = MessageFate()

#: counter names exposed by :meth:`LossyTransport.stats`.
COUNTERS = (
    "requests_sent",
    "responses_sent",
    "dropped_requests",
    "dropped_responses",
    "duplicate_requests",
    "duplicate_responses",
    "held_by_partition",
    "reordered",
    "flushes",
)


class LossyTransport(Transport):
    """Deterministic lossy delivery driven by a :class:`FaultPlan`.

    ``seed`` and the plan fully determine every fault decision; the
    arrival *times* additionally depend on when the kernel pumps, which
    is itself a deterministic function of the scheduler seed — so a
    seeded run through this transport replays exactly.
    """

    active = True
    remote = False

    def __init__(self, plan: "FaultPlan" = None, seed: int = 0):
        super().__init__()
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed
        self._send_seq = 0
        #: op-id values whose request has been delivered to the server.
        self._arrived: "set[int]" = set()
        #: in-flight request legs: heap of (due tick, send seq, op).
        self._requests: "List[Tuple[int, int, Any]]" = []
        #: in-flight response legs: heap of (due tick, send seq, op).
        self._responses: "List[Tuple[int, int, Any]]" = []
        self.counters: "Dict[str, int]" = {name: 0 for name in COUNTERS}
        #: server index -> True when the plan can never touch that link
        #: (see FaultPlan.link_is_neutral); lazily filled, valid for the
        #: plan's lifetime because neutrality is time-independent.
        self._neutral: "Dict[int, bool]" = {}
        #: the whole plan is inert (no partitions, every link neutral):
        #: sends can skip fate resolution without even a per-server
        #: lookup.  The common case for runs that want the active
        #: transport machinery but no weather, e.g. FaultPlan().
        self._all_neutral = (
            not self.plan.partitions
            and self.plan.default.is_neutral
            and all(
                faults.is_neutral for _, faults in self.plan.per_server
            )
        )

    # -- send side ---------------------------------------------------------

    def _fate(self, op, leg: int):
        kernel = self._kernel
        server_index = kernel.object_map.server_of(op.object_id).index
        # Idle fast path: on a link no rule can ever touch, the fate is
        # a foregone conclusion — skip seeding the per-message stream
        # (a Mersenne-Twister construction per send, by far the most
        # expensive part of a faultless lossy hop).  Stateless streams
        # make the skip invisible: no other message's draws shift.
        neutral = self._neutral.get(server_index)
        if neutral is None:
            neutral = self._neutral[server_index] = (
                self.plan.link_is_neutral(server_index)
            )
        if neutral:
            return kernel.time, _NEUTRAL_FATE
        return kernel.time, self.plan.fate(
            self.seed, op.op_id.value, leg, server_index, kernel.time
        )

    def _enqueue(self, queue, op, now: int, fate) -> None:
        if fate.partitioned:
            self.counters["held_by_partition"] += 1
            # held until the partition heals (covers() guarantees
            # heal_time > now here; heal=None was already a drop).
            heapq.heappush(queue, (fate.heal_time, self._send_seq, op))
            self._send_seq += 1
            return
        if fate.reordered:
            self.counters["reordered"] += 1
        heapq.heappush(queue, (now + fate.delay, self._send_seq, op))
        self._send_seq += 1
        if fate.duplicated:
            heapq.heappush(
                queue, (now + fate.duplicate_delay, self._send_seq, op)
            )
            self._send_seq += 1

    def send_request(self, op) -> None:
        self.counters["requests_sent"] += 1
        if self._all_neutral:
            # Inert plan: the fate is the trivial one, due immediately.
            heapq.heappush(
                self._requests, (self._kernel.time, self._send_seq, op)
            )
            self._send_seq += 1
            return
        now, fate = self._fate(op, REQUEST)
        if fate.dropped:
            self.counters["dropped_requests"] += 1
            return
        if fate.duplicated:
            self.counters["duplicate_requests"] += 1
        self._enqueue(self._requests, op, now, fate)

    def send_response(self, op) -> None:
        self.counters["responses_sent"] += 1
        if self._all_neutral:
            heapq.heappush(
                self._responses, (self._kernel.time, self._send_seq, op)
            )
            self._send_seq += 1
            return
        now, fate = self._fate(op, RESPONSE)
        if fate.dropped:
            self.counters["dropped_responses"] += 1
            return
        if fate.duplicated:
            self.counters["duplicate_responses"] += 1
        self._enqueue(self._responses, op, now, fate)

    # -- oracle ------------------------------------------------------------

    def request_arrived(self, op) -> bool:
        return op.op_id.value in self._arrived

    # -- delivery ----------------------------------------------------------

    def _deliver_request(self, op) -> None:
        self._arrived.add(op.op_id.value)
        # arrive() tolerates duplicates, crashed objects and already-
        # responded ops, so every queued copy can be handed over as-is.
        self._kernel.arrive(op.op_id)

    def _deliver_response(self, op) -> None:
        self._kernel.deliver(op)

    def pump(self) -> None:
        now = self._kernel.time
        requests, responses = self._requests, self._responses
        while requests and requests[0][0] <= now:
            self._deliver_request(heapq.heappop(requests)[2])
        while responses and responses[0][0] <= now:
            self._deliver_response(heapq.heappop(responses)[2])

    def flush_idle(self) -> bool:
        """Force the earliest in-flight message through.

        The kernel clock only advances on steps, so if every client is
        blocked on a delayed (or partition-held) message the clock would
        never reach its due tick.  Flushing delivers the earliest-due
        message anyway — this is exactly the eventual-delivery fairness
        assumption: the schedule may stall a message arbitrarily, but
        not forever.  For a partition-held message, flushing models the
        partition healing once the system has otherwise fully drained.
        """
        request_head = self._requests[0] if self._requests else None
        response_head = self._responses[0] if self._responses else None
        if request_head is None and response_head is None:
            return False
        self.counters["flushes"] += 1
        if response_head is None or (
            request_head is not None and request_head[:2] <= response_head[:2]
        ):
            self._deliver_request(heapq.heappop(self._requests)[2])
        else:
            self._deliver_response(heapq.heappop(self._responses)[2])
        return True

    # -- introspection -----------------------------------------------------

    def in_flight(self) -> int:
        return len(self._requests) + len(self._responses)

    def stats(self) -> "Dict[str, int]":
        snapshot = dict(self.counters)
        snapshot["in_flight"] = self.in_flight()
        return snapshot

    def describe(self) -> "Dict[str, Any]":
        return {
            "transport": "lossy",
            "seed": self.seed,
            "counters": dict(self.counters),
        }
