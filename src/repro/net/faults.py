"""Composable, deterministic network-fault models.

Every fault decision is a pure function of ``(plan, seed, message)`` —
no hidden RNG state, no wall clock.  The per-message stream is derived
the same way :class:`~repro.sim.chaos.ChaosEnvironment` derives its
veto stream: ``random.Random(hash((seed, op_id, leg, ...)))``, where
every member of the hashed tuple is an ``int`` — including the leg,
which is an integer code, never a string — because int-tuple ``hash()``
is deterministic across processes while str hashing is salted per
process (``PYTHONHASHSEED``).  Two runs of the same plan with the same
seed therefore see identical drops, duplicates, delays and
reorderings, whatever the scheduler does in between and whichever
process they run in.

These faults are **out-of-model stressors** with respect to the paper:
the space bounds assume reliable (if asynchronous) channels, so under a
:class:`FaultPlan` only *safety* is asserted; liveness holds only under
eventual delivery to ``n - f`` servers, which
:meth:`~repro.net.lossy.LossyTransport.flush_idle` realizes
(docs/MODEL.md, "Transports and the paper's assumptions").

The message-level concerns previously expressed as scheduler weights
(:mod:`repro.sim.latency`) and veto storms (:mod:`repro.sim.chaos`)
have direct fault-plan analogues here: :func:`straggler_plan` gives a
slow server long request delays instead of a small scheduling weight,
and :func:`chaos_faults` turns the veto-window idea into delivery
jitter plus reordering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: message-leg codes, used to split the per-message random stream.
#: Integer codes (not strings): the leg is hashed into the RNG key, and
#: only an all-int tuple hashes identically across processes.
REQUEST = 0
RESPONSE = 1


@dataclass(frozen=True)
class Drop:
    """Lose the message with the given probability."""

    probability: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")

    def decide(self, rng: "random.Random") -> bool:
        return self.probability > 0 and rng.random() < self.probability


@dataclass(frozen=True)
class Duplicate:
    """Deliver a second copy of the message, ``offset`` ticks later."""

    probability: float = 0.0
    offset: int = 5

    def __post_init__(self):
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("duplicate probability must be in [0, 1)")
        if self.offset < 1:
            raise ValueError("duplicate offset must be >= 1")

    def decide(self, rng: "random.Random") -> bool:
        return self.probability > 0 and rng.random() < self.probability


@dataclass(frozen=True)
class Delay:
    """Uniform delivery-latency distribution, in kernel ticks."""

    low: int = 0
    high: int = 0

    def __post_init__(self):
        if self.low < 0 or self.high < self.low:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: "random.Random") -> int:
        if self.high == 0:
            return 0
        return rng.randint(self.low, self.high)


@dataclass(frozen=True)
class Reorder:
    """Perturb arrival order: with the given probability, push the
    message up to ``window`` extra ticks past its sampled delay, letting
    later messages overtake it."""

    probability: float = 0.0
    window: int = 10

    def __post_init__(self):
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("reorder probability must be in [0, 1)")
        if self.window < 1:
            raise ValueError("reorder window must be >= 1")

    def jitter(self, rng: "random.Random") -> int:
        if self.probability > 0 and rng.random() < self.probability:
            return rng.randint(1, self.window)
        return 0


@dataclass(frozen=True)
class Partition:
    """Cut the given servers off between kernel times ``start`` and
    ``heal``.  ``heal=None`` means the partition never heals: messages
    to/from those servers sent during it are lost outright."""

    start: int
    heal: "Optional[int]"
    servers: "Tuple[int, ...]"

    def __post_init__(self):
        if self.start < 0:
            raise ValueError("partition start must be non-negative")
        if self.heal is not None and self.heal <= self.start:
            raise ValueError("partition must heal strictly after it starts")
        object.__setattr__(self, "servers", tuple(sorted(set(self.servers))))

    def covers(self, time: int, server_index: int) -> bool:
        if server_index not in self.servers:
            return False
        if time < self.start:
            return False
        return self.heal is None or time < self.heal


@dataclass(frozen=True)
class LinkFaults:
    """The fault profile of one client↔server link (both legs)."""

    drop: "Drop" = field(default_factory=Drop)
    duplicate: "Duplicate" = field(default_factory=Duplicate)
    delay: "Delay" = field(default_factory=Delay)
    reorder: "Reorder" = field(default_factory=Reorder)

    @property
    def is_neutral(self) -> bool:
        """True when no rule on this link can ever fire.

        A neutral link's fate is always the trivial
        :class:`MessageFate` regardless of the random draws, so the
        lossy transport may skip seeding the per-message stream
        entirely.  Skipping is observationally safe *because* the
        streams are stateless — each message's draws are keyed by its
        own ``(seed, op id, leg, server)`` hash, so not consuming one
        message's stream can never shift another's.
        """
        return (
            self.drop.probability == 0.0
            and self.duplicate.probability == 0.0
            and self.delay.high == 0
            and self.reorder.probability == 0.0
        )


@dataclass(frozen=True)
class MessageFate:
    """Everything that will happen to one message, decided at send time."""

    dropped: bool = False
    delay: int = 0
    duplicated: bool = False
    duplicate_delay: int = 0
    reordered: bool = False
    partitioned: bool = False
    heal_time: "Optional[int]" = None


@dataclass(frozen=True)
class FaultPlan:
    """A full network weather report: a default link profile, per-server
    overrides, and a partition schedule.

    ``per_server`` maps server *index* to a :class:`LinkFaults` override
    (stored as a sorted tuple of pairs so the plan stays hashable and
    picklable for :class:`~repro.net.config.TransportConfig`).
    """

    default: "LinkFaults" = field(default_factory=LinkFaults)
    per_server: "Tuple[Tuple[int, LinkFaults], ...]" = ()
    partitions: "Tuple[Partition, ...]" = ()

    def __post_init__(self):
        object.__setattr__(
            self, "per_server", tuple(sorted(self.per_server))
        )
        object.__setattr__(
            self,
            "partitions",
            tuple(sorted(self.partitions, key=lambda p: (p.start, p.servers))),
        )

    def link(self, server_index: int) -> "LinkFaults":
        for index, faults in self.per_server:
            if index == server_index:
                return faults
        return self.default

    def link_is_neutral(self, server_index: int) -> bool:
        """True when no fault in the plan can ever touch this server:
        its link profile is neutral and no partition (at any time) lists
        it.  Time-independent by construction, so callers may cache the
        answer per server for the lifetime of the plan."""
        if any(
            server_index in partition.servers
            for partition in self.partitions
        ):
            return False
        return self.link(server_index).is_neutral

    def partition_covering(
        self, time: int, server_index: int
    ) -> "Optional[Partition]":
        for partition in self.partitions:
            if partition.covers(time, server_index):
                return partition
        return None

    def fate(
        self,
        seed: int,
        op_id: int,
        leg: int,
        server_index: int,
        time: int,
    ) -> "MessageFate":
        """Decide, deterministically, what happens to one message.

        The stream is keyed by (seed, op id, leg code) so the two legs
        of an operation get independent fates, yet replays are exact —
        the key tuple is all ints, so its hash (and hence every fate)
        is identical in every process regardless of hash salting.  Fate
        order matters: partition, drop, delay+reorder, duplicate — each
        consumes a fixed number of draws so adding a fault never shifts
        another message's stream.
        """
        rng = random.Random(hash((seed, op_id, leg, server_index)))
        partition = self.partition_covering(time, server_index)
        if partition is not None:
            if partition.heal is None:
                return MessageFate(
                    dropped=True, partitioned=True, heal_time=None
                )
            return MessageFate(partitioned=True, heal_time=partition.heal)
        link = self.link(server_index)
        if link.drop.decide(rng):
            return MessageFate(dropped=True)
        delay = link.delay.sample(rng)
        jitter = link.reorder.jitter(rng)
        duplicated = link.duplicate.decide(rng)
        return MessageFate(
            delay=delay + jitter,
            duplicated=duplicated,
            duplicate_delay=delay + jitter + link.duplicate.offset,
            reordered=jitter > 0,
        )


def straggler_plan(
    slow_servers,
    slow_delay: "Tuple[int, int]" = (20, 60),
    base_delay: "Tuple[int, int]" = (0, 2),
) -> "FaultPlan":
    """A fleet with slow links to some servers — the network-level
    analogue of :func:`repro.sim.latency.straggler_fleet` (which skews
    the scheduler instead of the channel).

    ``slow_servers`` is an iterable of server indices.
    """
    slow = LinkFaults(delay=Delay(*slow_delay))
    return FaultPlan(
        default=LinkFaults(delay=Delay(*base_delay)),
        per_server=tuple(
            (index, slow) for index in sorted(set(slow_servers))
        ),
    )


def chaos_faults(
    drop: float = 0.1,
    duplicate: float = 0.05,
    reorder: float = 0.3,
    max_delay: int = 30,
) -> "FaultPlan":
    """An everything-at-once weather front — the channel-level analogue
    of :class:`repro.sim.chaos.ChaosEnvironment` (which vetoes responds
    instead of perturbing messages)."""
    return FaultPlan(
        default=LinkFaults(
            drop=Drop(drop),
            duplicate=Duplicate(duplicate),
            delay=Delay(0, max_delay),
            reorder=Reorder(reorder, window=max(1, max_delay // 2)),
        )
    )
