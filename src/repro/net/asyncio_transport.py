"""Real sockets under the unchanged protocol state machines.

:class:`AsyncioTransport` sends every low-level request over a localhost
TCP connection to a replica server process (or an in-process asyncio
server, for ``repro cluster``) that owns the authoritative base-object
state, and feeds the results back into the ordinary kernel respond path.
The protocol code in ``core/`` is untouched: clients still call
``ctx.trigger`` and still see ``on_response`` at the respond step; the
history the kernel records is the same shape the consistency checkers
always consumed.

Division of labour with the kernel:

* the *request leg* is a real socket write; the operation becomes
  respondable (``kernel.arrive``) only once the replica's answer is
  back, so the respond step can take effect instantly with the remote
  result (``remote = True`` — the kernel reads :meth:`result_for`
  instead of applying the op to its local shadow objects, whose state
  is never consulted);
* the *respond step* stays a kernel action: scheduling, environment
  vetoes, events and history recording all behave exactly as in
  simulation;
* the *response leg* is local delivery (the socket round-trip already
  happened on the request leg).

This module is exempt from lint rule R002 (see docs/LINTING.md): it is
the one place in the tree that legitimately touches wall-clock time —
socket startup and idle-drain deadlines are physical waits on a real
network, not hidden inputs to a deterministic simulation.  Nothing here
feeds timing back into scheduling decisions; kernel time remains the
step counter.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.transport import Transport
from repro.net.wire import get_codec
from repro.sim.ids import ObjectId, OpId
from repro.sim.objects import make_object

#: (object index, object type name, initial value) — one replica.
ReplicaSpec = Tuple[int, str, Any]


def snapshot_placements(object_map) -> "Dict[int, List[ReplicaSpec]]":
    """Per-server replica specs, read off a wired object map.

    The spec is enough to rebuild each server's base objects with
    :func:`~repro.sim.objects.make_object` in another process — type
    names are the stable ``TYPE_NAME`` strings the placement lists in
    ``core/`` use.
    """
    placements: "Dict[int, List[ReplicaSpec]]" = {}
    for server in object_map.servers:
        placements[server.server_id.index] = [
            (
                object_id.index,
                object_map.object(object_id).TYPE_NAME,
                object_map.object(object_id).initial_value,
            )
            for object_id in server.object_ids
        ]
    return placements


#: responses written between flow-control drains on a pipelined
#: connection; drains act as back-pressure checkpoints, not flushes —
#: the event loop pushes written bytes to the socket regardless.
_DRAIN_EVERY = 64


class ReplicaServer:
    """One sim server's base objects, served over codec frames.

    Requests are applied to the replicas strictly in arrival order on
    the event loop — the replica is the linearization point for its
    objects, exactly like ``BaseObject.apply`` at the respond step is in
    simulation.  The connection is pipelined: any number of requests may
    be in flight, and responses stream back in apply order without a
    per-frame drain.
    """

    def __init__(
        self,
        server_index: int,
        replicas: "List[ReplicaSpec]",
        codec: Any = "json",
    ):
        self.server_index = server_index
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.replicas = {
            object_index: make_object(
                type_name, ObjectId(object_index), initial_value
            )
            for object_index, type_name, initial_value in replicas
        }
        self.requests_served = 0

    async def handle(self, reader, writer) -> None:
        codec = self.codec
        read_frame = codec.read_frame
        decode_req = codec.decode_request
        encode_resp = codec.encode_response
        replicas = self.replicas
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                op = decode_req(frame)
                result = replicas[op.object_id.index].apply(op)
                self.requests_served += 1
                writer.write(encode_resp(op.op_id.value, result))
                if not self.requests_served % _DRAIN_EVERY:
                    await writer.drain()
        finally:
            writer.close()


class AsyncioTransport(Transport):
    """Low-level operations over real localhost sockets.

    With empty ``addresses`` the transport spawns one asyncio server per
    sim server inside a background event-loop thread (single-process
    cluster, as ``repro cluster`` runs it); with addresses it connects
    to externally hosted ``repro serve`` processes, one ``host:port``
    per server index.  The two modes do not mix: the list must name an
    address for *every* server or be empty — :meth:`bind` rejects a
    partial list, because an op routed to an unlisted server would have
    no connection to go out on and the run would stall silently.
    """

    active = True
    remote = True

    #: replica-server implementation for self-hosted mode; a seam for
    #: benchmarks/tests that need variant server behaviour.
    server_class = ReplicaServer

    def __init__(
        self,
        addresses: "Tuple[str, ...]" = (),
        host: str = "127.0.0.1",
        startup_timeout: float = 10.0,
        idle_timeout: float = 5.0,
        codec: Any = "json",
    ):
        super().__init__()
        self.addresses = tuple(addresses)
        self.host = host
        self.startup_timeout = startup_timeout
        self.idle_timeout = idle_timeout
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.ports: "Dict[int, int]" = {}
        self.servers: "Dict[int, ReplicaServer]" = {}
        self._placements: "Dict[int, List[ReplicaSpec]]" = {}
        self._loop: "Optional[asyncio.AbstractEventLoop]" = None
        self._thread: "Optional[threading.Thread]" = None
        self._ready = threading.Event()
        self._startup_error: "Optional[BaseException]" = None
        #: results coming back from replicas: {"op": int, "result": ...}.
        self._completions: "queue.Queue" = queue.Queue()
        self._results: "Dict[int, Any]" = {}
        self._arrived: "Set[int]" = set()
        self._inflight: "Set[int]" = set()
        self._writers: "Dict[int, asyncio.StreamWriter]" = {}
        self._asyncio_servers: "Dict[int, Any]" = {}
        self._started = False
        self._closing = False
        #: where each server lives, learned at _open; reconnects dial these.
        self._endpoints: "Dict[int, Tuple[str, int]]" = {}
        #: server indices whose connection is currently down (EOF, refused).
        self._down: "Set[int]" = set()
        #: server indices being blackholed (partition injection): request
        #: frames to them are silently dropped, so no response ever comes
        #: back — the protocol sees an unresponsive server, which is
        #: exactly what a network partition looks like from one side.
        self._blackhole: "frozenset[int]" = frozenset()
        #: frames dropped on down or blackholed links (diagnostics).
        self.dropped_frames = 0
        #: crashed self-hosted replicas (crash_replica/restart_replica).
        self._crashed_replicas: "Set[int]" = set()
        #: server indices with a live redial loop (at most one per link).
        self._redialing: "Set[int]" = set()
        #: live background tasks (readers, redialers): asyncio holds
        #: tasks weakly, so the set keeps them alive until done.
        self._tasks: "Set[asyncio.Task]" = set()
        #: first unexpected background-task failure (diagnostics).
        self._background_error: "Optional[BaseException]" = None
        #: frames queued per server index since the last loop flush.
        self._outbox: "Dict[int, List[bytes]]" = {}
        self._outbox_lock = threading.Lock()
        self._flush_scheduled = False

    # -- wiring ------------------------------------------------------------

    def bind(self, kernel) -> None:
        super().bind(kernel)
        self._placements = snapshot_placements(kernel.object_map)
        if self.addresses and len(self.addresses) != len(self._placements):
            raise ValueError(
                f"asyncio transport got {len(self.addresses)} address(es)"
                f" for {len(self._placements)} servers: --address must be"
                " given once per server index, in order (or not at all,"
                " to self-host every server); mixing external and"
                " self-hosted servers is not supported"
            )

    def start(self) -> None:
        """Bring the event-loop thread and the cluster up (idempotent)."""
        if self._started:
            return
        self._started = True
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-net-asyncio", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise RuntimeError("asyncio transport did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "asyncio transport failed to start"
            ) from self._startup_error

    def close(self) -> None:
        self._closing = True
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=self.startup_timeout)
        self._loop = None
        self._thread = None
        self._started = False

    # -- event-loop thread -------------------------------------------------

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._open())
        except BaseException as error:  # surfaced by start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._shutdown())
            loop.close()

    def _spawn(self, coro) -> "asyncio.Task":
        """ensure_future with an exception sink (lint rule R008).

        The task set keeps the handle alive (the event loop holds tasks
        weakly); the done-callback observes failures that escaped the
        task's own error handling, so a buggy reader or redialer fails
        loudly instead of dying silently mid-experiment.
        """
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._reap_task)
        return task

    def _reap_task(self, task: "asyncio.Task") -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        error = task.exception()
        if error is not None:
            if self._background_error is None:
                self._background_error = error
            import sys
            import traceback

            print(
                "repro.net.asyncio_transport: background task failed:",
                file=sys.stderr,
            )
            traceback.print_exception(
                type(error), error, error.__traceback__, file=sys.stderr
            )

    async def _open(self) -> None:
        if self.addresses:
            endpoints = []
            for server_index, address in enumerate(self.addresses):
                host, _, port = address.rpartition(":")
                endpoints.append((server_index, host or self.host, int(port)))
        else:
            endpoints = []
            for server_index, replicas in self._placements.items():
                replica_server = self.server_class(
                    server_index, replicas, codec=self.codec
                )
                self.servers[server_index] = replica_server
                server = await asyncio.start_server(
                    replica_server.handle, self.host, 0
                )
                self._asyncio_servers[server_index] = server
                port = server.sockets[0].getsockname()[1]
                self.ports[server_index] = port
                endpoints.append((server_index, self.host, port))
        for server_index, host, port in endpoints:
            self._endpoints[server_index] = (host, port)
            reader, writer = await asyncio.open_connection(host, port)
            self._writers[server_index] = writer
            self._spawn(self._read_responses(server_index, reader))

    async def _read_responses(self, server_index: int, reader) -> None:
        codec = self.codec
        try:
            while True:
                frame = await codec.read_frame(reader)
                if frame is None:
                    break
                self._completions.put(codec.decode_response(frame))
        except (ConnectionError, OSError, ValueError):
            pass
        self._link_down(server_index)

    # -- link supervision ----------------------------------------------------

    def _link_down(self, server_index: int) -> None:
        """The connection to ``server_index`` broke: mark it down and keep
        redialing (bounded backoff) until it answers or we shut down.

        Runs on the event-loop thread.  While the link is down, frames to
        the server are dropped — the quorum protocols tolerate exactly
        this (an unresponsive server), so the run keeps making progress
        on the surviving replicas and catches up when the link heals.
        """
        if self._closing or server_index in self._down:
            return
        self._down.add(server_index)
        writer = self._writers.get(server_index)
        if writer is not None:
            writer.close()
        if server_index not in self._redialing:
            self._redialing.add(server_index)
            self._spawn(self._redial(server_index))

    async def _redial(self, server_index: int) -> None:
        host, port = self._endpoints[server_index]
        backoff = 0.05
        try:
            while not self._closing:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.5)
                if self._closing:
                    return
                try:
                    reader, writer = await asyncio.open_connection(host, port)
                except (ConnectionError, OSError):
                    continue
                self._writers[server_index] = writer
                self._down.discard(server_index)
                self._spawn(self._read_responses(server_index, reader))
                return
        finally:
            self._redialing.discard(server_index)

    def set_blackhole(self, server_indices) -> None:
        """Partition injection: drop every frame to these servers.

        From the protocol's point of view a blackholed server is
        unresponsive; operations routed to it stay pending (they are
        covering, per the model) while quorums complete on the rest.
        ``set_blackhole(())`` heals the partition.
        """
        self._blackhole = frozenset(server_indices)

    def heal(self) -> None:
        """Clear any injected partition."""
        self._blackhole = frozenset()

    # -- self-hosted replica crash/restart ----------------------------------

    def crash_replica(self, server_index: int) -> None:
        """Kill a self-hosted replica: close its listener and connection.

        Self-hosted mode only.  The replica's object state is *retained*
        (its :class:`ReplicaServer` survives) — :meth:`restart_replica`
        models a crash-recover server with stable storage coming back on
        the same port.
        """
        if self.addresses:
            raise RuntimeError(
                "crash_replica controls self-hosted replicas; external"
                " `repro serve` processes are crashed by killing them"
            )
        if server_index in self._crashed_replicas:
            return
        self._crashed_replicas.add(server_index)

        async def _down() -> None:
            server = self._asyncio_servers.pop(server_index, None)
            if server is not None:
                server.close()
                await server.wait_closed()
            # Dropping the listener does not drop the established
            # connection; close it too so in-flight requests fail like a
            # real process death, not a graceful drain.
            writer = self._writers.get(server_index)
            if writer is not None:
                writer.close()
            self._down.add(server_index)

        asyncio.run_coroutine_threadsafe(_down(), self._loop).result(
            self.startup_timeout
        )

    def restart_replica(self, server_index: int) -> None:
        """Bring a crashed self-hosted replica back on its old port.

        The replica re-serves from its retained state (stable storage);
        the supervision loop re-establishes the connection and the
        transport resumes routing to it.
        """
        if server_index not in self._crashed_replicas:
            raise RuntimeError(f"replica {server_index} is not crashed")

        async def _up() -> None:
            replica_server = self.servers[server_index]
            server = await asyncio.start_server(
                replica_server.handle,
                self.host,
                self.ports[server_index],
            )
            self._asyncio_servers[server_index] = server
            if (
                server_index in self._down
                and server_index not in self._redialing
            ):
                self._redialing.add(server_index)
                self._spawn(self._redial(server_index))

        asyncio.run_coroutine_threadsafe(_up(), self._loop).result(
            self.startup_timeout
        )
        self._crashed_replicas.discard(server_index)

    async def _shutdown(self) -> None:
        # Closing the client-side connections first lets every suspended
        # coroutine finish on EOF: replica handlers see readline() -> b""
        # and return, which in turn closes their response streams and ends
        # the _read_responses tasks.  Cancellation is a last resort only —
        # cancelling a start_server handler task makes asyncio's stream
        # protocol log a spurious CancelledError from its done-callback.
        for writer in self._writers.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        for server in self._asyncio_servers.values():
            server.close()
            await server.wait_closed()
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

    def _flush_outbox(self) -> None:
        # runs on the event-loop thread: ship everything queued since the
        # last flush, one write per connection regardless of how many
        # requests the kernel triggered in between.  Frames to down or
        # blackholed servers are dropped, never buffered: replaying stale
        # requests after a heal would reorder the request leg, and the
        # quorum protocols neither need nor expect retransmission.
        with self._outbox_lock:
            outbox, self._outbox = self._outbox, {}
            self._flush_scheduled = False
        writers = self._writers
        blackhole = self._blackhole
        for server_index, frames in outbox.items():
            if server_index in self._down or server_index in blackhole:
                self.dropped_frames += len(frames)
                continue
            try:
                writers[server_index].write(
                    frames[0] if len(frames) == 1 else b"".join(frames)
                )
            except (ConnectionError, OSError):
                self.dropped_frames += len(frames)
                self._link_down(server_index)

    # -- transport interface -----------------------------------------------

    def send_request(self, op) -> None:
        """Queue the request leg; frames coalesce per event-loop tick.

        The kernel thread only appends to the outbox — at most one loop
        wakeup is in flight at a time, so a burst of triggers between
        loop ticks becomes a single ``writer.write`` per connection
        (pipelining) instead of one wakeup + write + drain per op.
        """
        if not self._started:
            self.start()
        kernel = self._kernel
        server_index = kernel.object_map.server_of(op.object_id).index
        self._inflight.add(op.op_id.value)
        data = self.codec.encode_request(op)
        with self._outbox_lock:
            self._outbox.setdefault(server_index, []).append(data)
            schedule = not self._flush_scheduled
            if schedule:
                self._flush_scheduled = True
        if schedule:
            self._loop.call_soon_threadsafe(self._flush_outbox)

    def request_arrived(self, op) -> bool:
        return op.op_id.value in self._arrived

    def result_for(self, op) -> Any:
        return self._results.pop(op.op_id.value)

    def send_response(self, op) -> None:
        # the socket round-trip already happened on the request leg;
        # delivery to the invoking client is local.
        self._kernel.deliver(op)

    # -- progress ----------------------------------------------------------

    def _complete(self, frame: "Dict[str, Any]") -> None:
        op_value = frame["op"]
        self._inflight.discard(op_value)
        self._results[op_value] = frame["result"]
        self._arrived.add(op_value)
        self._kernel.arrive(OpId(op_value))

    def pump(self) -> None:
        while True:
            try:
                frame = self._completions.get_nowait()
            except queue.Empty:
                return
            self._complete(frame)

    def flush_idle(self) -> bool:
        """Nothing is enabled locally: wait (bounded, wall-clock) for the
        next replica answer.  This is where real-network asynchrony meets
        the step simulation — the wait is physical, not simulated."""
        if not self._inflight:
            return False
        try:
            frame = self._completions.get(timeout=self.idle_timeout)
        except queue.Empty:
            return False
        self._complete(frame)
        # Pipelined runs land answers in bursts: drain whatever else has
        # already arrived so one wall-clock wait can wake many ops.
        while True:
            try:
                frame = self._completions.get_nowait()
            except queue.Empty:
                break
            self._complete(frame)
        return True

    def describe(self) -> "Dict[str, Any]":
        return {
            "transport": "asyncio",
            "host": self.host,
            "ports": dict(self.ports),
            "addresses": list(self.addresses),
            "codec": self.codec.name,
            "dropped_frames": self.dropped_frames,
        }


def run_replica_server(
    server_index: int,
    replicas: "List[ReplicaSpec]",
    host: str = "127.0.0.1",
    port: int = 0,
    announce=print,
    codec: Any = "json",
) -> None:
    """Host one sim server's replicas until interrupted (``repro serve``)."""

    async def _serve() -> None:
        replica_server = ReplicaServer(server_index, replicas, codec=codec)
        server = await asyncio.start_server(replica_server.handle, host, port)
        bound = server.sockets[0].getsockname()
        announce(f"serving s{server_index} on {bound[0]}:{bound[1]}")
        async with server:
            await server.serve_forever()

    asyncio.run(_serve())


def run_shard_servers(
    server_index: int,
    shard_replicas: "Dict[int, List[ReplicaSpec]]",
    host: str = "127.0.0.1",
    ports: "Optional[Dict[int, int]]" = None,
    announce=print,
    codec: Any = "json",
) -> None:
    """Host sim server ``server_index`` of *every* shard in one process.

    A sharded service is S independent fleets; a physical node hosts its
    replica of each fleet.  Each shard gets its own listener (shards are
    independent quorum systems — one socket per shard keeps their request
    streams isolated), announced as ``serving s<i>/shard<j> on h:p`` so a
    supervisor can collect the per-shard address lists.  ``ports`` pins
    each shard's listener port — a restarted process must come back on
    the ports its clients' reconnect loops are dialling.
    """

    async def _serve() -> None:
        servers = []
        for shard_index in sorted(shard_replicas):
            replica_server = ReplicaServer(
                server_index, shard_replicas[shard_index], codec=codec
            )
            port = ports.get(shard_index, 0) if ports else 0
            server = await asyncio.start_server(
                replica_server.handle, host, port
            )
            bound = server.sockets[0].getsockname()
            announce(
                f"serving s{server_index}/shard{shard_index}"
                f" on {bound[0]}:{bound[1]}"
            )
            servers.append(server)
        await asyncio.gather(*(s.serve_forever() for s in servers))

    asyncio.run(_serve())
