"""Picklable transport descriptions.

A live :class:`~repro.net.transport.Transport` holds queues, sockets or
threads and cannot cross a process boundary; a :class:`TransportConfig`
can — it travels inside an :class:`~repro.core.emulation.EmulationSpec`
to the experiment engine's worker processes, and its canonical payload
is folded into the result-cache cell key so sweeps on different
transports can never serve each other's cached results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.net.faults import FaultPlan

#: the transport kinds a config can describe.
KINDS = ("inproc", "lossy", "asyncio")


@dataclass(frozen=True)
class TransportConfig:
    """A frozen, hashable, picklable recipe for one transport.

    ``kind`` selects the implementation; ``seed`` and ``plan`` only
    apply to ``"lossy"``; ``addresses`` and ``codec`` only apply to
    ``"asyncio"`` (empty addresses mean the transport spawns its own
    localhost servers, as ``repro cluster`` does; non-empty lists one
    ``host:port`` per server index for ``repro serve``-hosted processes;
    ``codec`` names the wire codec, ``"json"`` or ``"binary"``, and must
    match what the servers speak).
    """

    kind: str = "inproc"
    seed: int = 0
    plan: "Optional[FaultPlan]" = None
    addresses: "Tuple[str, ...]" = ()
    codec: str = "json"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown transport kind {self.kind!r}; known: {KINDS}"
            )
        if self.plan is not None and self.kind != "lossy":
            raise ValueError("a fault plan only applies to the lossy kind")
        if self.addresses and self.kind != "asyncio":
            raise ValueError("addresses only apply to the asyncio kind")
        from repro.net.wire import CODECS

        if self.codec not in CODECS:
            raise ValueError(
                f"unknown wire codec {self.codec!r}; known: {sorted(CODECS)}"
            )
        if self.codec != "json" and self.kind != "asyncio":
            raise ValueError(
                "a wire codec only applies to the asyncio kind (the"
                " in-proc and lossy transports never serialize)"
            )
        if self.kind == "lossy" and self.plan is None:
            # Normalize: a bare lossy config means "no faults", which is
            # exactly FaultPlan().  Filling it in here keeps directly
            # constructed and .lossy()-built configs equal, so they hash
            # to one result-cache cell instead of two.
            object.__setattr__(self, "plan", FaultPlan())
        object.__setattr__(self, "addresses", tuple(self.addresses))

    # -- constructors ------------------------------------------------------

    @classmethod
    def inproc(cls) -> "TransportConfig":
        return cls(kind="inproc")

    @classmethod
    def lossy(
        cls, plan: "Optional[FaultPlan]" = None, seed: int = 0
    ) -> "TransportConfig":
        return cls(kind="lossy", seed=seed, plan=plan)

    @classmethod
    def asyncio(
        cls, addresses: "Tuple[str, ...]" = (), codec: str = "json"
    ) -> "TransportConfig":
        return cls(kind="asyncio", addresses=tuple(addresses), codec=codec)

    # -- realization -------------------------------------------------------

    def build(self):
        """Instantiate the described transport (unbound)."""
        if self.kind == "inproc":
            from repro.net.transport import InProcTransport

            return InProcTransport()
        if self.kind == "lossy":
            from repro.net.lossy import LossyTransport

            return LossyTransport(plan=self.plan, seed=self.seed)
        # "asyncio": imported lazily — the module is R002-exempt (real
        # sockets, wall-clock deadlines) and only loads when asked for.
        from repro.net.asyncio_transport import AsyncioTransport

        return AsyncioTransport(addresses=self.addresses, codec=self.codec)

    # -- cache keying ------------------------------------------------------

    def cache_payload(self) -> "Dict[str, Any]":
        """A canonical JSON-able form for result-cache cell keys.

        ``dataclasses.asdict`` recurses into the fault plan's frozen
        dataclasses in field order, so equal configs always produce the
        same payload and any change to any fault parameter changes it.
        """
        return asdict(self)
