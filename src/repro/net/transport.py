"""The transport seam: how low-level operations travel.

A :class:`Transport` mediates the two message legs of every low-level
operation:

* the **request leg** — from ``Context.trigger`` to the base object's
  server (an operation becomes *respondable* only once its request has
  arrived there);
* the **response leg** — from the respond step (where the operation
  takes effect, Assumption 1) back to the invoking client.

The kernel owns the model semantics — one action per step, objects
linearize at their respond step, events are published in respond order —
and delegates only the *message substrate* to the transport.  Base
objects therefore remain reachable exclusively through the kernel's
trigger/respond path, whatever the transport (``repro lint`` R004
enforces this for the package).

:class:`InProcTransport` is the direct delivery the kernel hardwired
before the seam existed: requests arrive instantly, responses deliver
inside the respond step.  Seeded runs through it are byte-identical to
the pre-seam kernel (pinned by ``tests/properties/golden_inproc.json``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel
    from repro.sim.objects import LowLevelOp


class Transport:
    """Interface between the kernel and a message substrate.

    Subclasses override the hooks below.  ``active`` tells the kernel
    whether the transport keeps in-flight state that needs pumping each
    step (the in-process transport does not, keeping the hot path free
    of per-step calls); ``remote`` tells the respond step whether the
    operation's effect was computed elsewhere (``result_for``) or must
    be applied to the local base object.
    """

    #: True if the transport holds in-flight messages and needs
    #: :meth:`pump` / :meth:`flush_idle` calls from the run loop.
    active = False

    #: True if results are produced remotely (:meth:`result_for`)
    #: instead of by applying the op to the local base object.
    remote = False

    def __init__(self) -> None:
        self._kernel: "Any" = None

    # -- wiring ------------------------------------------------------------

    def bind(self, kernel: "Kernel") -> None:
        """Attach to a kernel (called from ``Kernel.__init__`` or
        ``Kernel.set_transport``, before any operation is triggered)."""
        self._kernel = kernel

    @property
    def kernel(self) -> "Kernel":
        return self._kernel

    # -- request leg -------------------------------------------------------

    def send_request(self, op: "LowLevelOp") -> None:
        """The request message leaves the client (called by
        ``Kernel.trigger``).  Implementations decide when — and whether —
        the operation becomes respondable via ``kernel.arrive(op_id)``."""
        raise NotImplementedError

    def request_arrived(self, op: "LowLevelOp") -> bool:
        """Oracle query: has the request reached the server?  Must agree
        with the incremental state the transport maintains through
        ``kernel.arrive`` (``Kernel.enabled_actions`` consults this)."""
        raise NotImplementedError

    # -- respond step ------------------------------------------------------

    def result_for(self, op: "LowLevelOp") -> Any:
        """The operation's result, for ``remote`` transports only."""
        raise NotImplementedError

    def send_response(self, op: "LowLevelOp") -> None:
        """The response message leaves the server (called by the kernel
        right after the respond step took effect).  Implementations
        decide when — and whether — the client receives it via
        ``kernel.deliver(op)``."""
        raise NotImplementedError

    # -- failures ----------------------------------------------------------

    def on_server_crash(self, server_id, object_ids) -> None:
        """A server crashed; in-flight requests to it will never arrive.
        ``object_ids`` are the base objects that just crashed."""

    # -- progress (active transports only) ---------------------------------

    def pump(self) -> None:
        """Move messages whose delivery is due at the current kernel
        time (called at the top of every run-loop iteration)."""

    def flush_idle(self) -> bool:
        """No action is enabled but messages may be in flight: force the
        earliest pending delivery.  Return True if progress was made
        (the kernel then re-collects); False ends the run as quiescent.
        This is what makes delivery *eventual*: any message not dropped
        is delivered once the system has nothing else to do."""
        return False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release external resources (sockets, threads).  Idempotent."""

    def describe(self) -> "Dict[str, Any]":
        """A JSON-able self-description (used by reports and the CLI)."""
        return {"transport": type(self).__name__}


class InProcTransport(Transport):
    """Direct in-process delivery — the pre-seam kernel behaviour.

    Requests arrive at the server the instant they are triggered (the
    operation is immediately respondable unless its object is crashed);
    responses are delivered to the client inside the respond step
    itself.  No in-flight state exists, so the kernel's hot path skips
    the pump entirely (``active`` is False).
    """

    active = False
    remote = False

    def send_request(self, op: "LowLevelOp") -> None:
        # Called from Kernel.trigger with the freshly-created op, whose
        # object is cached on it — the guards of the general arrive()
        # path hold vacuously, so take the append-only shortcut.
        obj = op.obj
        if obj is None:  # defensive: an op this kernel did not trigger
            kernel = self._kernel
            if not kernel.object_map.object(op.object_id).crashed:
                kernel.arrive(op.op_id)
        elif not obj.crashed:
            self._kernel.arrive_fresh(op)

    def request_arrived(self, op: "LowLevelOp") -> bool:
        return True

    def send_response(self, op: "LowLevelOp") -> None:
        self._kernel.deliver(op)

    def describe(self) -> "Dict[str, Any]":
        return {"transport": "inproc"}
