"""repro — reproduction of Chockler & Spiegelman,
"Space Complexity of Fault-Tolerant Register Emulations" (PODC 2017).

The package provides:

* a simulator for the paper's asynchronous fault-prone shared memory
  model (:mod:`repro.sim`),
* the paper's emulation algorithms and lower-bound machinery
  (:mod:`repro.core`),
* executable consistency conditions (:mod:`repro.consistency`),
* workloads and measurement (:mod:`repro.workloads`,
  :mod:`repro.analysis`).

Quickstart::

    from repro import WSRegisterEmulation
    emu = WSRegisterEmulation(k=2, n=5, f=2)
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    writer.enqueue("write", "hello")
    emu.system.run_to_quiescence()
    reader.enqueue("read")
    emu.system.run_to_quiescence()
    assert emu.history.reads[-1].result == "hello"
"""

from repro.core import bounds
from repro.core.emulation import Emulation, EmulationSpec
from repro.core.abd import ABDEmulation
from repro.core.adversary import AdversaryAdi
from repro.core.cas_maxreg import CASABDEmulation, SingleCASMaxRegister
from repro.core.collect_maxreg import (
    CollectMaxRegister,
    ReplicatedMaxRegisterEmulation,
)
from repro.core.covering import CoveringTracker
from repro.core.multi import MultiRegisterDeployment
from repro.core.ft_maxreg import FTMaxRegister
from repro.core.layout import RegisterLayout
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.consistency import (
    check_ws_regular,
    check_ws_safe,
    is_linearizable,
    is_register_history_atomic,
)
from repro.apps.config import ConfigService, InstallRaced
from repro.apps.epoch import EpochService
from repro.apps.kv import KVConfig, KVSession, ReplicatedKVStore
from repro.apps.shard import (
    ShardConfig,
    ShardedKVService,
    ShardServiceConfig,
    run_loadgen,
)
from repro.errors import ReproError
from repro.exec import Cell, Grid, ResultCache, run_experiment_grid
from repro.experiments import ExperimentResult, run_experiment
from repro.verify import VerificationReport, verify_run
from repro.workloads import run_workload, write_sequential_workload

__version__ = "1.0.0"

__all__ = [
    "ABDEmulation",
    "AdversaryAdi",
    "CASABDEmulation",
    "Cell",
    "CollectMaxRegister",
    "ConfigService",
    "CoveringTracker",
    "Emulation",
    "EmulationSpec",
    "EpochService",
    "ExperimentResult",
    "FTMaxRegister",
    "Grid",
    "InstallRaced",
    "KVConfig",
    "KVSession",
    "Lemma1Runner",
    "MultiRegisterDeployment",
    "RegisterLayout",
    "ReplicatedKVStore",
    "ReplicatedMaxRegisterEmulation",
    "ReproError",
    "ResultCache",
    "ShardConfig",
    "ShardServiceConfig",
    "ShardedKVService",
    "SingleCASMaxRegister",
    "VerificationReport",
    "WSRegisterEmulation",
    "bounds",
    "check_ws_regular",
    "check_ws_safe",
    "is_linearizable",
    "is_register_history_atomic",
    "run_experiment",
    "run_experiment_grid",
    "run_loadgen",
    "run_workload",
    "verify_run",
    "write_sequential_workload",
]
