"""One-call verification of a finished run.

``verify_run(emulation, condition=...)`` bundles every applicable check:

1. **Well-formedness** — each client's high-level projection is
   sequential (Appendix A.1).
2. **The consistency condition** — one of ``"atomic"``, ``"ws-regular"``,
   ``"ws-safe"``, ``"mw-weak"``, ``"mw-strong"``.
3. **Substrate self-audit** — every base object's low-level projection is
   linearizable (skippable; capped by projection size).

Returns a :class:`VerificationReport`; ``report.ok`` is the single bit,
``report.details()`` the human-readable summary.  The examples and the
KV store's ``audit()`` are thin layers over the same checkers; this is
the general entry point for user-written emulations on the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.baseobject_audit import audit_base_objects
from repro.consistency.mw_regularity import (
    check_mw_regular_strong,
    check_mw_regular_weak,
)
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.schedule import is_well_formed
from repro.consistency.ws import check_ws_regular, check_ws_safe

CONDITIONS = (
    "atomic",
    "ws-regular",
    "ws-safe",
    "mw-weak",
    "mw-strong",
    "max-register-atomic",
)


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_run`."""

    condition: str
    checks: "Dict[str, bool]" = field(default_factory=dict)
    violations: "List[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def details(self) -> str:
        lines = [f"verification against {self.condition!r}:"]
        for name, passed in self.checks.items():
            lines.append(f"  {'PASS' if passed else 'FAIL'}  {name}")
        for violation in self.violations:
            lines.append(f"    - {violation}")
        return "\n".join(lines)


def verify_run(
    emulation,
    condition: str = "ws-regular",
    initial_value: Any = None,
    audit_substrate: bool = True,
    max_ops_per_object: "Optional[int]" = 30,
) -> VerificationReport:
    """Run all applicable checks over a finished emulation run."""
    if condition not in CONDITIONS:
        raise ValueError(
            f"condition must be one of {CONDITIONS}, got {condition!r}"
        )
    history = emulation.history
    report = VerificationReport(condition=condition)

    report.checks["well-formed schedule"] = is_well_formed(history)

    if condition == "atomic":
        ok = is_register_history_atomic(history, initial_value=initial_value)
        report.checks["atomicity (linearizability)"] = ok
    elif condition == "ws-regular":
        violations = check_ws_regular(history, initial_value=initial_value)
        report.checks["WS-Regularity"] = not violations
        report.violations.extend(str(v) for v in violations)
    elif condition == "ws-safe":
        violations = check_ws_safe(history, initial_value=initial_value)
        report.checks["WS-Safety"] = not violations
        report.violations.extend(str(v) for v in violations)
    elif condition == "mw-weak":
        violations = check_mw_regular_weak(
            history, initial_value=initial_value
        )
        report.checks["MW-Weak regularity"] = not violations
        report.violations.extend(str(v) for v in violations)
    elif condition == "mw-strong":
        violations = check_mw_regular_strong(
            history, initial_value=initial_value
        )
        report.checks["MW-Strong regularity"] = not violations
        report.violations.extend(str(v) for v in violations)
    else:  # max-register-atomic
        from repro.consistency.linearizability import is_linearizable
        from repro.consistency.specs import MaxRegisterSpec

        ok = is_linearizable(
            list(history.all_ops()), MaxRegisterSpec(initial_value)
        )
        report.checks["max-register atomicity"] = ok

    if audit_substrate:
        verdicts = audit_base_objects(
            emulation.kernel, max_ops_per_object=max_ops_per_object
        )
        bad = [str(oid) for oid, passed in verdicts.items() if not passed]
        report.checks["base objects atomic"] = not bad
        report.violations.extend(
            f"non-linearizable base object {oid}" for oid in bad
        )
    return report
