"""Servers and the object-to-server mapping ``delta``.

The paper generalizes the fault-prone shared memory model of Jayanti,
Chandra & Toueg by mapping base objects to servers via a function
``delta : B -> S``; the failure granularity is servers, i.e. a server crash
instantaneously crashes all base objects mapped to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.sim.ids import ObjectId, ServerId
from repro.sim.objects import BaseObject


@dataclass
class Server:
    """A crash-prone server hosting a set of base objects."""

    server_id: ServerId
    object_ids: "List[ObjectId]" = field(default_factory=list)
    crashed: bool = False

    def host(self, object_id: ObjectId) -> None:
        if object_id in self.object_ids:
            raise ValueError(f"{object_id} already hosted on {self.server_id}")
        self.object_ids.append(object_id)

    @property
    def storage(self) -> int:
        """Number of base objects stored on this server, ``|delta^-1({s})|``."""
        return len(self.object_ids)

    def __str__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"{self.server_id}[{state}, {self.storage} objects]"


class ObjectMap:
    """The mapping ``delta`` between base objects and servers.

    Provides the image/pre-image notation of the paper:

    * ``delta(B)`` for a set of objects — :meth:`image`;
    * ``delta^-1(S)`` for a set of servers — :meth:`preimage`.
    """

    def __init__(self) -> None:
        self._servers: "Dict[ServerId, Server]" = {}
        self._objects: "Dict[ObjectId, BaseObject]" = {}
        self._delta: "Dict[ObjectId, ServerId]" = {}

    # -- construction -----------------------------------------------------

    def add_server(self, server_id: ServerId) -> Server:
        if server_id in self._servers:
            raise ValueError(f"duplicate server {server_id}")
        server = Server(server_id)
        self._servers[server_id] = server
        return server

    def add_object(self, obj: BaseObject, server_id: ServerId) -> None:
        if obj.object_id in self._objects:
            raise ValueError(f"duplicate object {obj.object_id}")
        if server_id not in self._servers:
            raise ValueError(f"unknown server {server_id}")
        self._objects[obj.object_id] = obj
        self._delta[obj.object_id] = server_id
        self._servers[server_id].host(obj.object_id)

    # -- lookups ----------------------------------------------------------

    @property
    def servers(self) -> "List[Server]":
        return list(self._servers.values())

    @property
    def server_ids(self) -> "List[ServerId]":
        return list(self._servers.keys())

    @property
    def objects(self) -> "List[BaseObject]":
        return list(self._objects.values())

    @property
    def object_ids(self) -> "List[ObjectId]":
        return list(self._objects.keys())

    @property
    def n_servers(self) -> int:
        return len(self._servers)

    @property
    def n_objects(self) -> int:
        return len(self._objects)

    def server(self, server_id: ServerId) -> Server:
        return self._servers[server_id]

    def object(self, object_id: ObjectId) -> BaseObject:
        return self._objects[object_id]

    def server_of(self, object_id: ObjectId) -> ServerId:
        """``delta(b)``: the server hosting ``b``."""
        return self._delta[object_id]

    def image(self, object_ids: "Iterable[ObjectId]") -> "Set[ServerId]":
        """``delta(B)``: the set of servers hosting any object of ``B``."""
        return {self._delta[oid] for oid in object_ids}

    def preimage(self, server_ids: "Iterable[ServerId]") -> "Set[ObjectId]":
        """``delta^-1(S)``: all objects hosted on servers in ``S``."""
        wanted = set(server_ids)
        return {
            oid for oid, sid in self._delta.items() if sid in wanted
        }

    def objects_on(self, server_id: ServerId) -> "List[ObjectId]":
        """``delta^-1({s})`` as an ordered list."""
        return list(self._servers[server_id].object_ids)

    # -- failures ---------------------------------------------------------

    def crash_server(self, server_id: ServerId) -> "List[ObjectId]":
        """Crash a server; all its objects crash instantaneously.

        Returns the list of object ids that crashed (idempotent: crashing a
        crashed server returns an empty list).
        """
        server = self._servers[server_id]
        if server.crashed:
            return []
        server.crashed = True
        crashed = []
        for oid in server.object_ids:
            obj = self._objects[oid]
            if not obj.crashed:
                obj.crashed = True
                crashed.append(oid)
        return crashed

    @property
    def crashed_servers(self) -> "Set[ServerId]":
        return {sid for sid, s in self._servers.items() if s.crashed}

    @property
    def correct_servers(self) -> "Set[ServerId]":
        return {sid for sid, s in self._servers.items() if not s.crashed}

    def storage_profile(self) -> "Dict[ServerId, int]":
        """Objects stored per server (``|delta^-1({s})|`` for each s)."""
        return {sid: s.storage for sid, s in self._servers.items()}
