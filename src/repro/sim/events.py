"""Event records and the listener protocol.

The kernel publishes an event for every action it executes.  Listeners
(history recorders, covering trackers, resource meters) subscribe via
:class:`EventListener`; all hooks default to no-ops so listeners implement
only what they need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.ids import ClientId, ServerId
from repro.sim.objects import LowLevelOp


@dataclass(frozen=True)
class TriggerEvent:
    """A low-level operation was triggered on a base object."""

    time: int
    op: LowLevelOp


@dataclass(frozen=True)
class RespondEvent:
    """A low-level operation responded (and took effect)."""

    time: int
    op: LowLevelOp


@dataclass(frozen=True)
class InvokeEvent:
    """A high-level (emulated) operation was invoked by a client."""

    time: int
    client_id: ClientId
    seq: int
    name: str
    args: tuple


@dataclass(frozen=True)
class ReturnEvent:
    """A high-level (emulated) operation returned to its client."""

    time: int
    client_id: ClientId
    seq: int
    name: str
    result: Any


@dataclass(frozen=True)
class CrashEvent:
    """A server or client crashed."""

    time: int
    server_id: Optional[ServerId] = None
    client_id: Optional[ClientId] = None


class EventListener:
    """Subscribe to kernel events by overriding any subset of hooks."""

    def on_trigger(self, event: TriggerEvent) -> None:  # pragma: no cover
        pass

    def on_respond(self, event: RespondEvent) -> None:  # pragma: no cover
        pass

    def on_invoke(self, event: InvokeEvent) -> None:  # pragma: no cover
        pass

    def on_return(self, event: ReturnEvent) -> None:  # pragma: no cover
        pass

    def on_crash(self, event: CrashEvent) -> None:  # pragma: no cover
        pass

    def on_step(self, time: int) -> None:  # pragma: no cover
        """Called after every kernel step, once all other hooks ran."""
        pass
