"""Latency-aware scheduling: model slow servers and slow clients.

The paper's asynchrony is adversarial; real deployments are merely
*skewed*.  :class:`WeightedScheduler` samples the next action with
probabilities proportional to configurable weights — a server with weight
0.05 responds ~20x less often than one with weight 1.0, emulating a
straggler without violating fairness (every enabled action retains
positive probability, so fair runs remain fair almost surely).

Useful for stress-testing the emulations' wait-freedom under skew and for
benchmarks that want heterogeneous fleets.

The *message-level* expression of the same concern — slow links instead
of a slow scheduler — lives in :func:`repro.net.faults.straggler_plan`:
a :class:`~repro.net.lossy.LossyTransport` with long per-server delay
distributions delays the straggler's messages in flight rather than its
turns.  Prefer that form when the question is about the network; keep
this scheduler when the question is about scheduling fairness itself.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.sim.ids import ClientId, ServerId
from repro.sim.kernel import Action, ActionKind
from repro.sim.scheduling import Scheduler


class WeightedScheduler(Scheduler):
    """Seeded weighted-random action choice.

    Weights: per-server (applied to responds of ops on that server's
    objects), per-client (applied to that client's steps).  Unspecified
    components default to 1.0.  All weights must be positive — a zero
    weight would starve an action and break fairness.
    """

    def __init__(
        self,
        seed: int = 0,
        server_weights: "Optional[Dict[ServerId, float]]" = None,
        client_weights: "Optional[Dict[ClientId, float]]" = None,
    ):
        self.seed = seed
        self._rng = random.Random(seed)
        self.server_weights = dict(server_weights or {})
        self.client_weights = dict(client_weights or {})
        for weight in list(self.server_weights.values()) + list(
            self.client_weights.values()
        ):
            if weight <= 0:
                raise ValueError("weights must be positive (fairness)")

    def _weight(self, action: Action, kernel) -> float:
        if action.kind is ActionKind.CLIENT:
            return self.client_weights.get(action.client_id, 1.0)
        op = kernel.pending.get(action.op_id)
        if op is None:
            return 1.0
        server = kernel.object_map.server_of(op.object_id)
        return self.server_weights.get(server, 1.0)

    def choose(self, actions, kernel) -> Action:
        weights = [self._weight(action, kernel) for action in actions]
        return self._rng.choices(actions, weights=weights, k=1)[0]


def straggler_fleet(
    n: int, slow_servers: "Dict[int, float]", seed: int = 0
) -> WeightedScheduler:
    """Convenience: a fleet of ``n`` servers with the given stragglers.

    ``slow_servers`` maps server index -> weight (e.g. ``{0: 0.05}``
    makes server 0 a 20x straggler).
    """
    return WeightedScheduler(
        seed=seed,
        server_weights={
            ServerId(index): weight
            for index, weight in slow_servers.items()
            if 0 <= index < n
        },
    )
