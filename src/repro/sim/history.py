"""High-level operation history recording.

A :class:`History` listens to the kernel and records the schedule of
high-level (emulated) reads and writes: invocation time, return time,
arguments and results.  The consistency checkers consume histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.sim.events import EventListener, InvokeEvent, ReturnEvent
from repro.sim.ids import ClientId


@dataclass
class HistoryOp:
    """One high-level operation in a history."""

    seq: int
    client_id: ClientId
    name: str
    args: tuple
    invoke_time: int
    return_time: Optional[int] = None
    result: Any = None

    @property
    def complete(self) -> bool:
        return self.return_time is not None

    @property
    def pending(self) -> bool:
        return self.return_time is None

    def precedes(self, other: "HistoryOp") -> bool:
        """Real-time precedence: self returns before other is invoked."""
        return self.complete and self.return_time < other.invoke_time

    def concurrent_with(self, other: "HistoryOp") -> bool:
        return not self.precedes(other) and not other.precedes(self)

    def __str__(self) -> str:
        span = (
            f"[{self.invoke_time},{self.return_time}]"
            if self.complete
            else f"[{self.invoke_time},pending]"
        )
        return f"{self.name}{self.args}->{self.result!r} by {self.client_id} {span}"


class History(EventListener):
    """Recorded schedule of the emulated register's operations."""

    def __init__(self, write_name: str = "write", read_name: str = "read"):
        self.ops: "Dict[int, HistoryOp]" = {}
        self.write_name = write_name
        self.read_name = read_name

    # -- listener hooks ------------------------------------------------------

    def on_invoke(self, event: InvokeEvent) -> None:
        self.ops[event.seq] = HistoryOp(
            seq=event.seq,
            client_id=event.client_id,
            name=event.name,
            args=event.args,
            invoke_time=event.time,
        )

    def on_return(self, event: ReturnEvent) -> None:
        op = self.ops[event.seq]
        op.return_time = event.time
        op.result = event.result

    # -- queries ----------------------------------------------------------------

    def all_ops(self) -> "List[HistoryOp]":
        return sorted(self.ops.values(), key=lambda op: op.seq)

    @property
    def writes(self) -> "List[HistoryOp]":
        return [op for op in self.all_ops() if op.name == self.write_name]

    @property
    def reads(self) -> "List[HistoryOp]":
        return [op for op in self.all_ops() if op.name == self.read_name]

    @property
    def complete_ops(self) -> "List[HistoryOp]":
        return [op for op in self.all_ops() if op.complete]

    @property
    def pending_ops(self) -> "List[HistoryOp]":
        return [op for op in self.all_ops() if op.pending]

    def is_write_sequential(self) -> bool:
        """True iff no two writes are concurrent (the WS in WS-Safety)."""
        writes = self.writes
        for i, first in enumerate(writes):
            for second in writes[i + 1 :]:
                if first.concurrent_with(second):
                    return False
        return True

    def is_write_only(self) -> bool:
        return not self.reads

    def completed_writes_before(self, time: int) -> "List[HistoryOp]":
        """Writes whose return happened at or before ``time``."""
        return [
            w for w in self.writes if w.complete and w.return_time <= time
        ]

    def __len__(self) -> int:
        return len(self.ops)

    def __str__(self) -> str:
        return "\n".join(str(op) for op in self.all_ops())

    def to_dicts(self) -> "List[dict]":
        """JSON-ready records of all operations (for archiving runs)."""

        def cell(value):
            if isinstance(value, (int, float, str, bool)) or value is None:
                return value
            return repr(value)

        return [
            {
                "seq": op.seq,
                "client": op.client_id.index,
                "name": op.name,
                "args": [cell(a) for a in op.args],
                "invoke": op.invoke_time,
                "return": op.return_time,
                "result": cell(op.result),
            }
            for op in self.all_ops()
        ]
