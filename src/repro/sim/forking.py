"""Fork a run into several futures — the proofs' branching, executable.

Lower-bound arguments (Lemma 4, Figure 2) reason about *several
extensions of the same prefix*: the same configuration continued with
different crash patterns or different operations, and indistinguishability
between them.  :func:`fork_kernel` makes that concrete: deep-copy a
kernel at a client-idle configuration and run each copy forward
independently.

The only restriction is that every client must be idle (no in-flight
high-level operation): active client coroutines are Python generators,
which cannot be copied.  Pending low-level operations — the covering
writes the proofs care about — are plain data and fork fine, so the
interesting configurations (end of each Lemma 1 phase) are all forkable.
"""

from __future__ import annotations

import copy
from typing import List

from repro.sim.kernel import Kernel


class ForkError(RuntimeError):
    """The kernel is not in a forkable configuration."""


def assert_forkable(kernel: Kernel) -> None:
    """Raise :class:`ForkError` unless every client is idle."""
    busy = [
        str(client_id)
        for client_id, runtime in kernel.clients.items()
        if runtime.tasks
    ]
    if busy:
        raise ForkError(
            "cannot fork with in-flight high-level operations on clients:"
            f" {', '.join(busy)} (client coroutines are not copyable)"
        )


def fork_kernel(kernel: Kernel) -> Kernel:
    """A deep, independent copy of the kernel's configuration.

    Objects, servers, pending low-level operations, client states,
    listeners (history, trackers) and the scheduler are all copied; the
    fork and the original share nothing mutable and can be run forward
    separately.
    """
    assert_forkable(kernel)
    return copy.deepcopy(kernel)


def fork_many(kernel: Kernel, count: int) -> "List[Kernel]":
    """``count`` independent futures of the same configuration."""
    if count < 1:
        raise ValueError("count must be at least 1")
    assert_forkable(kernel)
    return [copy.deepcopy(kernel) for _ in range(count)]
