"""Client runtime: deterministic state machines as generator coroutines.

The paper models clients as deterministic state machines whose transitions
are actions (triggering low-level operations, executing return steps).  We
express client algorithms as Python generators:

* The algorithm's high-level operation (e.g. Algorithm 2's ``write``) is a
  generator function receiving a :class:`Context`.
* ``ctx.trigger(...)`` triggers a low-level operation and returns
  immediately — clients never block on base objects (base objects are
  crash-prone, so waiting on one would forfeit fault tolerance).
* ``yield predicate`` suspends the coroutine until ``predicate()`` holds
  (the paper's ``wait until ...``); ``yield None`` yields one step.
  Wait predicates must be functions of *client-local* state — the
  protocol's own fields and task handles, which change only when this
  client takes a step or one of its low-level operations responds.  This
  is the paper's model (clients are deterministic state machines whose
  inputs are their own transitions), and the kernel's incremental
  scheduler relies on it: a blocked client's predicates are re-evaluated
  when the client is next touched, not on every global step.  A predicate
  reading global state (e.g. the kernel clock) would require
  ``Kernel.run(..., incremental=False)``.
* ``upon receiving ... respond`` handlers are expressed by overriding
  :meth:`ClientProtocol.on_response`; they run atomically with the respond
  step (see DESIGN.md, "Modeling choices").
* ``ctx.spawn(gen)`` runs a sub-coroutine concurrently within the client
  (used by composed emulations such as ABD over CAS-based max-registers,
  where each per-server max-register operation is itself a loop of CAS
  invocations).

One kernel client-step advances exactly one runnable coroutine by one
yield, so client progress interleaves at the granularity the model
requires.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind

#: A client coroutine yields either ``None`` (take a step) or a zero-argument
#: predicate (resume when it returns True).
ClientCoroutine = Generator[Optional[Callable[[], bool]], None, Any]

#: Scheduling categories a client reports to the kernel
#: (:meth:`ClientRuntime._sched_category`): permanently or temporarily
#: unable to step / definitely able to step / blocked on wait predicates
#: that must be (re-)evaluated to know.
SCHED_DISABLED, SCHED_ENABLED, SCHED_POLLING = 0, 1, 2


class TaskHandle:
    """Handle on a spawned sub-coroutine."""

    __slots__ = ("name", "done", "result")

    def __init__(self, name: str, done: bool = False, result: Any = None):
        self.name = name
        self.done = done
        self.result = result

    def wait(self) -> Callable[[], bool]:
        """Predicate usable as ``yield handle.wait()``."""
        return lambda: self.done

    def __repr__(self) -> str:
        return (
            f"TaskHandle(name={self.name!r}, done={self.done},"
            f" result={self.result!r})"
        )


class _Task:
    """Internal bookkeeping for one coroutine (main or spawned)."""

    __slots__ = ("coroutine", "handle", "waiting")

    def __init__(self, coroutine: ClientCoroutine, handle: TaskHandle):
        self.coroutine = coroutine
        self.handle = handle
        self.waiting: Optional[Callable[[], bool]] = None

    @property
    def runnable(self) -> bool:
        if self.handle.done:
            return False
        if self.waiting is None:
            return True
        return bool(self.waiting())


class ClientProtocol:
    """Base class for the client side of an emulation algorithm.

    Subclasses implement one generator method per high-level operation,
    named ``op_<name>`` (e.g. ``op_write``, ``op_read``), and may override
    :meth:`on_response` to handle low-level responds (Algorithm 2's
    ``upon receiving b.write(*) respond do`` blocks).
    """

    def make_operation(
        self, ctx: "Context", name: str, args: tuple
    ) -> ClientCoroutine:
        method = getattr(self, f"op_{name}", None)
        if method is None:
            raise ValueError(
                f"{type(self).__name__} has no high-level operation {name!r}"
            )
        return method(ctx, *args)

    def on_response(self, ctx: "Context", op: LowLevelOp) -> None:
        """Handle a respond of a low-level op triggered by this client."""


class Context:
    """The API surface a client algorithm sees.

    Wraps the kernel-facing runtime so algorithm code cannot reach into
    scheduler or adversary state.
    """

    __slots__ = ("_runtime",)

    def __init__(self, runtime: "ClientRuntime"):
        self._runtime = runtime

    @property
    def client_id(self) -> ClientId:
        return self._runtime.client_id

    @property
    def time(self) -> int:
        return self._runtime.kernel_time()

    def trigger(self, object_id: ObjectId, kind: OpKind, *args: Any) -> OpId:
        """Trigger a low-level operation; returns immediately."""
        # Inlined ClientRuntime.trigger — one call frame per low-level
        # op is measurable on protocol-heavy runs.
        runtime = self._runtime
        op = runtime._kernel.trigger(
            runtime.client_id, object_id, kind, args, runtime.active_seq
        )
        op_id = op.op_id
        runtime.pending_ops.add(op_id)
        return op_id

    def spawn(self, coroutine: ClientCoroutine, name: str = "task") -> TaskHandle:
        """Run a sub-coroutine concurrently within this client."""
        return self._runtime.spawn(coroutine, name)

    @staticmethod
    def all_done(handles: "List[TaskHandle]") -> Callable[[], bool]:
        return lambda: all(h.done for h in handles)

    @staticmethod
    def count_done(handles: "List[TaskHandle]", count: int) -> Callable[[], bool]:
        def enough_done():
            remaining = count
            for handle in handles:
                if handle.done:
                    remaining -= 1
                    if remaining <= 0:
                        return True
            return remaining <= 0

        return enough_done


class ClientRuntime:
    """Kernel-side state of one client.

    Holds the protocol instance, the queue of not-yet-invoked high-level
    operations, and the active coroutines.  The kernel drives it through
    :meth:`enabled`, :meth:`step` and :meth:`deliver_response`.

    A ``__slots__`` class: one instance lives per client and its
    scheduling fields (``_category``, ``_poll_dirty``/``_poll_cache``,
    ``action``) are read on every kernel step, so attribute storage is
    flat and the kernel's collect loop touches no hash tables.
    """

    __slots__ = (
        "client_id",
        "protocol",
        "context",
        "crashed",
        "program",
        "tasks",
        "active_seq",
        "active_name",
        "pending_ops",
        "duplicate_responses",
        "active_token",
        "on_complete",
        "_kernel",
        "_poll_dirty",
        "_poll_cache",
        "_category",
        "action",
    )

    def __init__(self, client_id: ClientId, protocol: ClientProtocol):
        self.client_id = client_id
        self.protocol = protocol
        self.context = Context(self)
        self.crashed = False
        #: queue of (name, args, token) high-level invocations not yet
        #: started; token is an opaque caller tag carried to completion
        self.program: "Deque[Tuple[str, tuple, Any]]" = deque()
        #: active coroutines; index 0 is the main (high-level op) task
        self.tasks: "List[_Task]" = []
        #: sequence number of the in-flight high-level op, if any
        self.active_seq: Optional[int] = None
        self.active_name: Optional[str] = None
        #: ids of this client's pending low-level ops
        self.pending_ops: "set[OpId]" = set()
        #: duplicate response deliveries dropped (lossy transports only)
        self.duplicate_responses = 0
        #: token of the in-flight high-level op (session bookkeeping)
        self.active_token: Any = None
        #: optional completion callback ``(token, name, result) -> None``
        #: invoked on every high-level return — lets a service multiplex
        #: thousands of sessions over a client pool without scanning the
        #: history for their results
        self.on_complete: Optional[Callable[[Any, str, Any], None]] = None
        # wired by the kernel at registration:
        self._kernel = None
        # Incremental-scheduler poll state: the cached result of the last
        # wait-predicate evaluation, and whether it needs re-evaluating
        # (set whenever this client is touched).  Owned by the kernel.
        self._poll_dirty = True
        self._poll_cache = False
        # Scheduling category (SCHED_*) as last published to the kernel's
        # candidate list, and this client's reusable CLIENT action.  Both
        # owned by the kernel (filled in at registration).
        self._category = SCHED_DISABLED
        self.action = None

    # -- wiring ------------------------------------------------------------

    def attach(self, kernel) -> None:
        self._kernel = kernel

    def kernel_time(self) -> int:
        return self._kernel.time

    # -- program -----------------------------------------------------------

    def enqueue(self, name: str, *args: Any, token: Any = None) -> None:
        """Schedule a high-level operation invocation.

        ``token`` is an opaque tag returned to :attr:`on_complete` when
        the operation finishes; the kernel never interprets it.
        """
        self.program.append((name, tuple(args), token))
        if self._kernel is not None:
            self._kernel._refresh_client(self.client_id)

    @property
    def idle(self) -> bool:
        """True if no high-level operation is in flight."""
        return self.active_seq is None

    # -- actions visible to the kernel --------------------------------------

    def enabled(self) -> bool:
        """Can this client take a step right now?"""
        if self.crashed:
            return False
        if self.idle:
            return bool(self.program)
        return any(task.runnable for task in self.tasks)

    def _sched_category(self) -> int:
        """How the kernel should track this client (incremental scheduling).

        ``SCHED_ENABLED``/``SCHED_DISABLED`` answer :meth:`enabled`
        definitively without touching wait predicates; ``SCHED_POLLING``
        means every task is parked on a predicate, so enabledness requires
        evaluation (:meth:`_poll_now`).
        """
        if self.crashed:
            return SCHED_DISABLED
        if self.active_seq is None:  # idle
            return SCHED_ENABLED if self.program else SCHED_DISABLED
        for task in self.tasks:
            if task.waiting is None and not task.handle.done:
                return SCHED_ENABLED
        return SCHED_POLLING if self.tasks else SCHED_DISABLED

    def _poll_now(self) -> bool:
        """Evaluate the wait predicates of a ``SCHED_POLLING`` client."""
        # _Task.runnable, inlined: every task of a polling client is
        # parked on a predicate (waiting is never None here).
        for task in self.tasks:
            if not task.handle.done and task.waiting():
                return True
        return False

    def step(self) -> None:
        """Execute one client step: start the next op, or advance one task."""
        if self.crashed:
            raise RuntimeError(f"step on crashed client {self.client_id}")
        if self.active_seq is None:  # idle
            self._start_next_operation()
            return
        # First runnable task (_Task.runnable and _advance inlined — this
        # scan plus one coroutine resume runs on every client step).
        for task in self.tasks:
            if not task.handle.done:
                waiting = task.waiting
                if waiting is None or waiting():
                    task.waiting = None
                    try:
                        yielded = next(task.coroutine)
                    except StopIteration as stop:
                        self._finish_task(task, stop.value)
                        return
                    if yielded is not None and not callable(yielded):
                        raise TypeError(
                            f"client coroutine yielded {yielded!r}; expected"
                            " a predicate or None"
                        )
                    task.waiting = yielded
                    return
        raise RuntimeError(f"no runnable task on {self.client_id}")

    def _start_next_operation(self) -> None:
        name, args, token = self.program.popleft()
        seq = self._kernel.record_invoke(self.client_id, name, args)
        self.active_seq = seq
        self.active_name = name
        self.active_token = token
        coroutine = self.protocol.make_operation(self.context, name, args)
        handle = TaskHandle(name=f"{name}#{seq}")
        task = _Task(coroutine, handle)
        self.tasks = [task]
        # The invocation action also runs the operation's first segment
        # (up to its first wait), so triggers issued unconditionally at the
        # start of an operation happen atomically with the invocation.
        self._advance(task)

    def _next_runnable(self) -> Optional[_Task]:
        for task in self.tasks:
            if task.runnable:
                return task
        return None

    def _advance(self, task: _Task) -> None:
        task.waiting = None
        try:
            yielded = next(task.coroutine)
        except StopIteration as stop:
            self._finish_task(task, stop.value)
            return
        if yielded is not None and not callable(yielded):
            raise TypeError(
                f"client coroutine yielded {yielded!r}; expected a predicate"
                " or None"
            )
        task.waiting = yielded

    def _finish_task(self, task: _Task, result: Any) -> None:
        task.handle.done = True
        task.handle.result = result
        if self.tasks and task is self.tasks[0]:
            # Main task: the high-level operation returns.
            seq, name = self.active_seq, self.active_name
            token = self.active_token
            self.active_seq = None
            self.active_name = None
            self.active_token = None
            self.tasks = []
            self._kernel.record_return(self.client_id, seq, name, result)
            if self.on_complete is not None:
                self.on_complete(token, name, result)
        else:
            self.tasks = [t for t in self.tasks if t is not task]

    # -- low-level operations ------------------------------------------------

    def trigger(self, object_id: ObjectId, kind: OpKind, args: tuple) -> OpId:
        op = self._kernel.trigger(
            self.client_id, object_id, kind, args, self.active_seq
        )
        self.pending_ops.add(op.op_id)
        return op.op_id

    def spawn(self, coroutine: ClientCoroutine, name: str) -> TaskHandle:
        if self.active_seq is None:  # idle
            raise RuntimeError("spawn outside a high-level operation")
        handle = TaskHandle(name=name)
        self.tasks.append(_Task(coroutine, handle))
        # A fresh task is runnable (waiting is None), so a client parked
        # on predicates becomes enabled right here.  Keeping the category
        # current lets the kernel skip the full rescan after response
        # deliveries, where spawn is the only category-changing call a
        # protocol can make.  (Candidate-list membership is unaffected:
        # both categories are candidate states.)
        if self._category == SCHED_POLLING:
            self._category = SCHED_ENABLED
        return handle

    def deliver_response(self, op: LowLevelOp) -> None:
        """Called by the kernel when one of our low-level ops responds.

        Idempotent per operation: a lossy transport may deliver the same
        response twice (duplication faults), and ``on_response`` handlers
        are not required to cope — the second copy is counted and
        dropped.  Responses only ever follow a trigger by this client, so
        ``pending_ops`` membership is exactly "not yet delivered".
        """
        try:
            self.pending_ops.remove(op.op_id)
        except KeyError:
            self.duplicate_responses += 1
            return
        if self.crashed:
            return
        self.protocol.on_response(self.context, op)

    # -- failures -------------------------------------------------------------

    def crash(self) -> None:
        self.crashed = True
        self.tasks = []
        self.program.clear()
        if self._kernel is not None:
            self._kernel._refresh_client(self.client_id)
