"""Run tracing: event logs and Figure 2-style timelines.

The paper illustrates its run constructions (Figure 2) as client
timelines with operation intervals.  :class:`TraceRecorder` captures every
kernel event; :func:`render_timeline` draws the high-level operations of
each client as labelled intervals over step-time, and
:func:`render_event_log` dumps the low-level action sequence — both are
plain ASCII, usable in tests, examples and debugging sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.sim.events import (
    CrashEvent,
    EventListener,
    InvokeEvent,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)


@dataclass
class TraceEntry:
    """One recorded event (kind + the original event record)."""

    kind: str  # "invoke" | "return" | "trigger" | "respond" | "crash"
    time: int
    event: Any


#: event kind -> the EventListener hook that produces it.
_HOOK_BY_KIND = {
    "invoke": "on_invoke",
    "return": "on_return",
    "trigger": "on_trigger",
    "respond": "on_respond",
    "crash": "on_crash",
}


class TraceRecorder(EventListener):
    """Chronological record of everything the kernel did.

    ``kinds`` restricts recording to a subset of event kinds (e.g.
    ``{"invoke", "return"}`` for high-level timelines only).  Unwanted
    hooks are masked back to the no-op base before registration, so the
    kernel's pre-bound dispatch skips them entirely — a filtered recorder
    costs nothing on the hooks it ignores.
    """

    def __init__(self, kinds: "Optional[set]" = None) -> None:
        self.entries: "List[TraceEntry]" = []
        if kinds is not None:
            unknown = set(kinds) - set(_HOOK_BY_KIND)
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
            for kind, hook in _HOOK_BY_KIND.items():
                if kind not in kinds:
                    # An instance attribute bound to the base no-op: the
                    # kernel's override detection sees the original
                    # EventListener hook and never dispatches to it.
                    setattr(
                        self, hook, getattr(EventListener, hook).__get__(self)
                    )

    def on_invoke(self, event: InvokeEvent) -> None:
        self.entries.append(TraceEntry("invoke", event.time, event))

    def on_return(self, event: ReturnEvent) -> None:
        self.entries.append(TraceEntry("return", event.time, event))

    def on_trigger(self, event: TriggerEvent) -> None:
        self.entries.append(TraceEntry("trigger", event.time, event))

    def on_respond(self, event: RespondEvent) -> None:
        self.entries.append(TraceEntry("respond", event.time, event))

    def on_crash(self, event: CrashEvent) -> None:
        self.entries.append(TraceEntry("crash", event.time, event))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def horizon(self) -> int:
        """The largest recorded time."""
        return max((entry.time for entry in self.entries), default=0)


def format_entry(entry: TraceEntry) -> str:
    """One event as a log line."""
    e = entry.event
    if entry.kind == "invoke":
        return f"{entry.time:>6}  {e.client_id}  invoke {e.name}{e.args}"
    if entry.kind == "return":
        return f"{entry.time:>6}  {e.client_id}  return {e.name} -> {e.result!r}"
    if entry.kind == "trigger":
        op = e.op
        return (
            f"{entry.time:>6}  {op.client_id}  trigger"
            f" {op.kind.value}{op.args} on {op.object_id}"
        )
    if entry.kind == "respond":
        op = e.op
        return (
            f"{entry.time:>6}  {op.client_id}  respond"
            f" {op.kind.value} on {op.object_id} -> {op.result!r}"
        )
    who = e.server_id if e.server_id is not None else e.client_id
    return f"{entry.time:>6}  CRASH  {who}"


def render_event_log(
    recorder: TraceRecorder,
    kinds: "Optional[set]" = None,
    limit: "Optional[int]" = None,
) -> str:
    """The action sequence as text, optionally filtered by event kind."""
    entries = [
        entry
        for entry in recorder.entries
        if kinds is None or entry.kind in kinds
    ]
    if limit is not None:
        entries = entries[:limit]
    return "\n".join(format_entry(entry) for entry in entries)


def render_timeline(recorder: TraceRecorder, width: int = 72) -> str:
    """Figure 2-style client timelines.

    One lane per client; each high-level operation is drawn as
    ``[---]`` scaled to the run length, labelled ``name:result``; a
    pending operation is drawn open-ended (``[--->``).  Crashes appear as
    ``X`` marks on a dedicated lane.
    """
    horizon = max(recorder.horizon, 1)
    scale = (width - 1) / horizon

    def col(time: int) -> int:
        return min(int(time * scale), width - 1)

    # Collect per-client operations from invoke/return pairs.
    ops = {}
    order: "List" = []
    for entry in recorder.entries:
        if entry.kind == "invoke":
            e = entry.event
            ops[e.seq] = {
                "client": e.client_id,
                "name": e.name,
                "start": entry.time,
                "end": None,
                "result": None,
            }
            if e.client_id not in order:
                order.append(e.client_id)
        elif entry.kind == "return":
            e = entry.event
            record = ops.get(e.seq)
            if record is not None:
                record["end"] = entry.time
                record["result"] = e.result

    lines = [f"time 0..{horizon} (1 col ~ {1 / scale:.1f} steps)"]
    for client in order:
        lane = [" "] * width
        labels = []
        for record in ops.values():
            if record["client"] != client:
                continue
            start = col(record["start"])
            end = col(record["end"]) if record["end"] is not None else width - 1
            open_ended = record["end"] is None
            lane[start] = "["
            for position in range(start + 1, end):
                lane[position] = "-"
            lane[end] = ">" if open_ended else "]"
            label = f"{record['name']}@{record['start']}"
            if record["result"] is not None:
                label += f"={record['result']!r}"
            labels.append(label)
        lines.append(f"{str(client):>8} |{''.join(lane)}| {', '.join(labels)}")

    crash_positions = [
        (entry.time, entry.event)
        for entry in recorder.entries
        if entry.kind == "crash"
    ]
    if crash_positions:
        lane = [" "] * width
        labels = []
        for time, event in crash_positions:
            lane[col(time)] = "X"
            who = (
                event.server_id
                if event.server_id is not None
                else event.client_id
            )
            labels.append(f"{who}@{time}")
        lines.append(f"{'crashes':>8} |{''.join(lane)}| {', '.join(labels)}")
    return "\n".join(lines)
