"""Convenience wiring of servers, objects, kernel and history.

Emulation algorithms describe *placements* — which base object types live
on which servers with which initial values — and :func:`build_system`
turns a placement list into a ready-to-run :class:`SimSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.sim.client import ClientProtocol, ClientRuntime
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.kernel import Environment, Kernel
from repro.sim.objects import make_object
from repro.sim.scheduling import RandomScheduler, Scheduler
from repro.sim.server import ObjectMap

#: (server index, object type name, initial value)
Placement = Tuple[int, str, Any]


@dataclass
class SimSystem:
    """A wired simulation: object map, kernel and history recorder."""

    object_map: ObjectMap
    kernel: Kernel
    history: History

    def add_client(
        self, client_id: ClientId, protocol: ClientProtocol
    ) -> ClientRuntime:
        return self.kernel.add_client(client_id, protocol)

    def run(self, max_steps: int = 100_000, until=None):
        return self.kernel.run(max_steps=max_steps, until=until)

    def run_to_quiescence(
        self, max_steps: int = 100_000, batch_size: "Optional[int]" = None
    ):
        """Run until no high-level operation is in flight and no client has
        queued work (pending low-level ops may remain — they are covering).

        ``batch_size`` routes through :meth:`Kernel.run_batched` (same
        chosen action sequence, amortized per-step bookkeeping); ``None``
        keeps the plain incremental loop.
        """
        def _idle(kernel: Kernel) -> bool:
            return all(
                c.idle and not c.program for c in kernel.clients.values()
            )

        if batch_size is not None:
            return self.kernel.run_batched(
                max_steps=max_steps, until=_idle, batch_size=batch_size
            )
        return self.kernel.run(max_steps=max_steps, until=_idle)

    @property
    def n_servers(self) -> int:
        return self.object_map.n_servers

    @property
    def n_objects(self) -> int:
        return self.object_map.n_objects


def build_system(
    n_servers: int,
    placements: "Sequence[Placement]",
    scheduler: Optional[Scheduler] = None,
    environment: Optional[Environment] = None,
    history: Optional[History] = None,
    transport=None,
) -> SimSystem:
    """Build a simulation from a placement list.

    ``placements[i]`` places object ``b_i`` (ids are assigned in order) on
    the given server with the given type and initial value.  ``transport``
    is a ready :class:`~repro.net.transport.Transport` instance (``None``
    selects direct in-process delivery).
    """
    if n_servers <= 0:
        raise ValueError("need at least one server")
    object_map = ObjectMap()
    for index in range(n_servers):
        object_map.add_server(ServerId(index))
    for object_index, (server_index, type_name, initial) in enumerate(placements):
        if not 0 <= server_index < n_servers:
            raise ValueError(
                f"placement {object_index}: server {server_index} out of range"
            )
        obj = make_object(type_name, ObjectId(object_index), initial)
        object_map.add_object(obj, ServerId(server_index))
    kernel = Kernel(
        object_map,
        scheduler=scheduler or RandomScheduler(seed=0),
        environment=environment,
        transport=transport,
    )
    # Note: an empty History is falsy (len == 0), so test against None.
    recorder = history if history is not None else History()
    kernel.add_listener(recorder)
    return SimSystem(object_map=object_map, kernel=kernel, history=recorder)
