"""Timestamped values used by the emulation algorithms.

Algorithm 2 (and multi-writer ABD) stores ``TSVal`` pairs in base objects:
a payload value tagged with a timestamp.  The paper notes that in
write-sequential runs no writer-id tie-break is required; we carry one
anyway (see DESIGN.md, "Modeling choices") so histories of concurrent runs
remain totally ordered and the consistency checkers stay well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TSVal:
    """A value tagged with a ``(ts, wid)`` timestamp.

    Ordering compares ``(ts, wid)`` lexicographically and ignores the
    payload, which matches the max-register value domain used by the
    ABD-style emulations: a bigger timestamp always wins, and two writes
    with equal timestamps are ordered by writer id.
    """

    ts: int
    wid: int = 0
    val: Any = field(default=None, compare=False)

    def key(self) -> tuple:
        """The comparison key ``(ts, wid)``."""
        return (self.ts, self.wid)

    # Comparisons spell out the (ts, wid) lexicographic order instead of
    # building key() tuples: collects compare timestamps on every scan
    # response, so the tuple allocations showed up in kernel profiles.

    def __lt__(self, other: "TSVal") -> bool:
        if self.ts != other.ts:
            return self.ts < other.ts
        return self.wid < other.wid

    def __le__(self, other: "TSVal") -> bool:
        if self.ts != other.ts:
            return self.ts < other.ts
        return self.wid <= other.wid

    def __gt__(self, other: "TSVal") -> bool:
        if self.ts != other.ts:
            return self.ts > other.ts
        return self.wid > other.wid

    def __ge__(self, other: "TSVal") -> bool:
        if self.ts != other.ts:
            return self.ts > other.ts
        return self.wid >= other.wid

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TSVal):
            return NotImplemented
        return self.ts == other.ts and self.wid == other.wid

    def __hash__(self) -> int:
        return hash(self.key())

    def __str__(self) -> str:
        return f"<ts={self.ts},wid={self.wid},val={self.val!r}>"


def bottom_tsval(initial_value: Any = None) -> TSVal:
    """The initial register content ``<0, v0>`` of Algorithm 2."""
    return TSVal(ts=0, wid=-1, val=initial_value)


def max_tsval(values: "list[TSVal]") -> TSVal:
    """Return the largest :class:`TSVal` of a non-empty list."""
    if not values:
        raise ValueError("max_tsval of an empty list")
    best = values[0]
    for candidate in values[1:]:
        if candidate > best:
            best = candidate
    return best
