"""Base object types hosted on servers.

Three primitives are studied by the paper:

* read/write **register** (``AtomicRegister``),
* **max-register** (``MaxRegister``) — ``write-max(v)`` / ``read-max()``,
* **CAS** (``CASObject``) — ``cas(exp, new)`` returning the old value.

All base objects are atomic.  Concretely, a low-level operation *takes
effect* exactly at its respond step, in respond order.  For writes this is
the paper's Assumption 1 (Write Linearization): a pending write is not
observed by any read until its respond event occurs — this is precisely
what gives the lower-bound adversary its covering power.  Applying reads
at respond time as well yields one specific (valid) linearization of each
object history and keeps the simulation deterministic given a schedule.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional

from repro.sim.ids import ClientId, ObjectId, OpId


class OpKind(Enum):
    """Kinds of low-level operations supported by the base object types."""

    READ = "read"
    WRITE = "write"
    READ_MAX = "read_max"
    WRITE_MAX = "write_max"
    CAS = "cas"

    @property
    def is_mutator(self) -> bool:
        """True if the operation may change the object state.

        Covering arguments only care about mutators: a pending *read*
        cannot erase anything, so only pending mutators make a register
        "covered".
        """
        return self in (OpKind.WRITE, OpKind.WRITE_MAX, OpKind.CAS)


class LowLevelOp:
    """One triggered low-level operation instance.

    ``respond_time is None`` while the operation is pending.  The result is
    computed when (and only when) the respond step executes.

    A ``__slots__`` class rather than a dataclass: one instance is
    allocated per trigger and its attributes are read on every kernel
    arrive/respond, so attribute storage is flat.  ``obj`` caches the
    kernel-local base object the op targets (filled in by
    ``Kernel.trigger``; ``None`` for ops rebuilt from the wire, whose
    effect is applied to a replica's object instead).
    """

    __slots__ = (
        "op_id",
        "client_id",
        "object_id",
        "kind",
        "args",
        "trigger_time",
        "respond_time",
        "result",
        "highlevel_seq",
        "obj",
    )

    def __init__(
        self,
        op_id: OpId,
        client_id: ClientId,
        object_id: ObjectId,
        kind: "OpKind",
        args: tuple,
        trigger_time: int,
        respond_time: Optional[int] = None,
        result: Any = None,
        highlevel_seq: Optional[int] = None,
    ):
        self.op_id = op_id
        self.client_id = client_id
        self.object_id = object_id
        self.kind = kind
        self.args = args
        self.trigger_time = trigger_time
        self.respond_time = respond_time
        self.result = result
        #: The high-level operation (history sequence number) on whose
        #: behalf this low-level op was triggered, if any.  Analysis only.
        self.highlevel_seq = highlevel_seq
        self.obj = None

    @property
    def pending(self) -> bool:
        return self.respond_time is None

    @property
    def is_mutator(self) -> bool:
        return self.kind.is_mutator

    def __str__(self) -> str:
        state = "pending" if self.pending else f"responded@{self.respond_time}"
        return (
            f"{self.op_id}:{self.kind.value}{self.args}"
            f" by {self.client_id} on {self.object_id} [{state}]"
        )


class BaseObject:
    """Common behaviour of all base object types.

    Subclasses define :attr:`SUPPORTED` (the op kinds they accept) and
    :meth:`_apply`, which mutates state and returns the result at respond
    time.
    """

    SUPPORTED: "frozenset[OpKind]" = frozenset()
    TYPE_NAME = "base"

    def __init__(self, object_id: ObjectId, initial_value: Any = None):
        self.object_id = object_id
        self.initial_value = initial_value
        self.value = initial_value
        self.crashed = False

    def supports(self, kind: OpKind) -> bool:
        return kind in self.SUPPORTED

    def check_supported(self, kind: OpKind) -> None:
        if not self.supports(kind):
            raise ValueError(
                f"{type(self).__name__} {self.object_id} does not support"
                f" {kind.value!r}"
            )

    def apply(self, op: LowLevelOp) -> Any:
        """Linearize ``op`` now (at its respond step) and return the result."""
        self.check_supported(op.kind)
        if self.crashed:
            raise RuntimeError(
                f"applying {op} to crashed object {self.object_id}"
            )
        return self._apply(op)

    def _apply(self, op: LowLevelOp) -> Any:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the initial state (used by test harnesses)."""
        self.value = self.initial_value
        self.crashed = False

    def __str__(self) -> str:
        return f"{self.TYPE_NAME}({self.object_id}, value={self.value!r})"


class AtomicRegister(BaseObject):
    """A multi-writer multi-reader atomic read/write register.

    * ``write(v)`` sets the value and returns ``"ack"``.
    * ``read()`` returns the current value.

    The emulations additionally treat the value domain as opaque; Algorithm
    2 stores :class:`~repro.sim.values.TSVal` pairs in these registers.
    """

    SUPPORTED = frozenset({OpKind.READ, OpKind.WRITE})
    TYPE_NAME = "register"

    def _apply(self, op: LowLevelOp) -> Any:
        if op.kind is OpKind.WRITE:
            (new_value,) = op.args
            self.value = new_value
            return "ack"
        return self.value


class MaxRegister(BaseObject):
    """A max-register: values only grow.

    * ``write_max(v)`` sets ``value = max(value, v)`` and returns ``"ok"``.
    * ``read_max()`` returns the largest value written so far (or the
      initial value).

    The value domain must be totally ordered; emulations use
    :class:`~repro.sim.values.TSVal`.
    """

    SUPPORTED = frozenset({OpKind.READ_MAX, OpKind.WRITE_MAX})
    TYPE_NAME = "max-register"

    def _apply(self, op: LowLevelOp) -> Any:
        if op.kind is OpKind.WRITE_MAX:
            (new_value,) = op.args
            if self.value is None or new_value > self.value:
                self.value = new_value
            return "ok"
        return self.value


class CASObject(BaseObject):
    """A compare-and-swap object.

    ``cas(exp, new)``: if the current value equals ``exp`` the value becomes
    ``new``; either way the *old* value is returned (the Appendix B
    interface).  ``cas(v0, v0)`` with the initial value thus doubles as a
    read when the caller only inspects the return value.
    """

    SUPPORTED = frozenset({OpKind.CAS})
    TYPE_NAME = "cas"

    def _apply(self, op: LowLevelOp) -> Any:
        expected, new_value = op.args
        previous = self.value
        if previous == expected:
            self.value = new_value
        return previous


_OBJECT_TYPES = {
    "register": AtomicRegister,
    "max-register": MaxRegister,
    "max_register": MaxRegister,
    "cas": CASObject,
}


def make_object(
    type_name: str, object_id: ObjectId, initial_value: Any = None
) -> BaseObject:
    """Factory for base objects by type name.

    Accepted names: ``"register"``, ``"max-register"`` (or
    ``"max_register"``), ``"cas"``.
    """
    try:
        cls = _OBJECT_TYPES[type_name]
    except KeyError:
        raise ValueError(f"unknown base object type {type_name!r}") from None
    return cls(object_id, initial_value)
