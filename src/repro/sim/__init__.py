"""Asynchronous fault-prone shared memory simulator.

This subpackage implements the system model of Chockler & Spiegelman
(PODC 2017), Section 2 / Appendix A: clients are deterministic state
machines that *trigger* low-level operations on base objects hosted on
crash-prone servers and later receive *responds*; an execution is an
alternating sequence of configurations and actions driven by a scheduler,
with an environment hook that may delay responds (the adversary's power).

Key design points:

* One kernel *step* executes exactly one action (a client step or a base
  object respond), mirroring the paper's notion of time ``t`` as the
  configuration reached after ``t`` actions.
* Low-level writes linearize at their respond step (the paper's
  Assumption 1), so a pending "covering" write can be held back arbitrarily
  long and take effect later, erasing a stored value.
* A server crash instantaneously crashes every base object mapped to it;
  pending operations on crashed objects never respond.
"""

from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.values import TSVal, bottom_tsval
from repro.sim.objects import (
    AtomicRegister,
    BaseObject,
    CASObject,
    MaxRegister,
    OpKind,
)
from repro.sim.server import ObjectMap, Server
from repro.sim.events import (
    CrashEvent,
    EventListener,
    InvokeEvent,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)
from repro.sim.kernel import Action, ActionKind, Environment, Kernel
from repro.sim.scheduling import (
    ClientPriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.sim.client import ClientProtocol, ClientRuntime, Context, TaskHandle
from repro.sim.history import History, HistoryOp
from repro.sim.failures import CrashPlan
from repro.sim.chaos import ChaosEnvironment
from repro.sim.forking import ForkError, fork_kernel, fork_many
from repro.sim.latency import WeightedScheduler, straggler_fleet
from repro.sim.replay import (
    RecordingScheduler,
    ReplayDivergence,
    ReplayScheduler,
)
from repro.sim.tracing import TraceRecorder, render_event_log, render_timeline
from repro.sim.system import SimSystem, build_system

__all__ = [
    "Action",
    "ActionKind",
    "AtomicRegister",
    "BaseObject",
    "CASObject",
    "ChaosEnvironment",
    "ClientId",
    "ClientPriorityScheduler",
    "ClientProtocol",
    "ClientRuntime",
    "Context",
    "CrashEvent",
    "CrashPlan",
    "Environment",
    "EventListener",
    "ForkError",
    "History",
    "HistoryOp",
    "InvokeEvent",
    "Kernel",
    "MaxRegister",
    "ObjectId",
    "ObjectMap",
    "OpId",
    "OpKind",
    "RandomScheduler",
    "RecordingScheduler",
    "ReplayDivergence",
    "ReplayScheduler",
    "RespondEvent",
    "ReturnEvent",
    "RoundRobinScheduler",
    "Scheduler",
    "Server",
    "ServerId",
    "SimSystem",
    "TaskHandle",
    "TriggerEvent",
    "TSVal",
    "TraceRecorder",
    "WeightedScheduler",
    "bottom_tsval",
    "build_system",
    "fork_kernel",
    "fork_many",
    "render_event_log",
    "render_timeline",
    "straggler_fleet",
]
