"""The simulation kernel: configurations, actions, steps.

A run of an emulation algorithm is an alternating sequence of
configurations and actions (Appendix A.4).  The kernel executes one action
per step; the step counter is the paper's notion of time ``t``.  Two action
kinds exist:

* ``CLIENT`` — a client takes a step: it invokes its next high-level
  operation, or advances one of its runnable coroutines (triggering
  low-level operations and/or executing a return action).
* ``RESPOND`` — a pending low-level operation on a correct base object
  responds, *taking effect at that instant* (Assumption 1).

An :class:`Environment` may veto ``RESPOND`` actions — this is exactly the
adversary's power in the lower-bound proof (Definition 3: a blocked write
"does not respond at t").  Fairness (Definition of fair runs) is then a
property of the scheduler plus environment: every non-vetoed enabled action
is eventually executed.

Scheduling is *incremental*: the kernel maintains the enabled client set
and the respondable pending-op set as live data structures, updated at the
events that change them (trigger, respond, enqueue, crash, coroutine
wait/wake) instead of recomputing them from scratch every step.
:meth:`Kernel.enabled_actions` remains the from-scratch oracle — it is what
``run(..., incremental=False)`` executes against, and
:meth:`Kernel.check_incremental` asserts the two views agree (see
``docs/MODEL.md``, "Performance", for the invariants).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro.sim.client import (
    SCHED_DISABLED,
    SCHED_ENABLED,
    SCHED_POLLING,
    ClientProtocol,
    ClientRuntime,
)
from repro.sim.events import (
    CrashEvent,
    EventListener,
    InvokeEvent,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)
from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.server import ObjectMap


class ActionKind(Enum):
    CLIENT = "client"
    RESPOND = "respond"


class Action:
    """One executable action: a client step or a low-level respond.

    Used to be a frozen dataclass; now a hand-written ``__slots__`` value
    type — schedulers key queues on actions and one action is allocated
    per arriving request, so construction and hashing sit on the hot
    path.  Construction is three plain slot stores (no immutability
    guard: a ``__setattr__`` override taxes ``__init__`` on every
    trigger; actions are immutable by convention — nothing in the
    kernel mutates one after construction).  Equality, ordering and
    ``str`` are unchanged from the dataclass.
    """

    __slots__ = ("kind", "client_id", "op_id", "_hash")

    def __init__(
        self,
        kind: ActionKind,
        client_id: Optional[ClientId] = None,
        op_id: Optional[OpId] = None,
    ):
        self.kind = kind
        self.client_id = client_id
        self.op_id = op_id
        # ``_hash`` stays unset until first use: most RESPOND actions are
        # never hashed (the random scheduler only indexes), but
        # round-robin queues key on actions.

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            cached = self._hash = hash(
                (self.kind, self.client_id, self.op_id)
            )
            return cached

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not Action:
            return NotImplemented
        return (
            self.kind is other.kind
            and self.client_id == other.client_id
            and self.op_id == other.op_id
        )

    def __ne__(self, other: Any) -> bool:
        if other.__class__ is not Action:
            return NotImplemented
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return (
            f"Action(kind={self.kind!r}, client_id={self.client_id!r},"
            f" op_id={self.op_id!r})"
        )

    def __reduce__(self):
        return (Action, (self.kind, self.client_id, self.op_id))

    def __str__(self) -> str:
        if self.kind is ActionKind.CLIENT:
            return f"step({self.client_id})"
        return f"respond({self.op_id})"

    def __lt__(self, other: "Action") -> bool:
        return self._sort_key() < other._sort_key()

    def _sort_key(self) -> tuple:
        if self.kind is ActionKind.CLIENT:
            return (0, self.client_id.index, 0)
        return (1, 0, self.op_id.value)


class Environment:
    """Hook allowing an adversary to constrain the run.

    The default environment allows everything (failure-free, fully
    asynchronous).  Subclasses override :meth:`allows` to veto respond
    actions — vetoing client steps is not permitted by the model (clients
    always get opportunities to take steps in fair runs), so the kernel
    only consults the environment for ``RESPOND`` actions.
    """

    def allows(self, action: Action, kernel: "Kernel") -> bool:
        return True

    def veto_epoch(self, kernel: "Kernel") -> Optional[Any]:
        """Cache token for veto verdicts, or None to disable caching.

        Environments whose verdict for a given pending operation is a pure
        function of some slowly-changing internal state may return a
        hashable token identifying that state; while the token is
        unchanged the kernel reuses each operation's cached
        :meth:`allows` verdict instead of re-consulting.  The token MUST
        change whenever any verdict could change (including inside
        :meth:`on_stall`).  The default returns None: the environment is
        consulted afresh on every step (required for verdicts that depend
        on the current time, such as the chaos environment's).
        """
        return None

    def on_stall(self, kernel: "Kernel") -> bool:
        """Called when every enabled action is vetoed.

        Return True to have the kernel re-evaluate (the environment should
        have relaxed something); False means the block is intentional and
        the run ends with reason ``"blocked"``.  The lower-bound adversary
        keeps the default (blocking is its purpose); chaotic/latency
        environments override this to preserve liveness.
        """
        return False


@dataclass
class RunResult:
    """Outcome of :meth:`Kernel.run`."""

    steps: int
    reason: str  # "until" | "quiescent" | "blocked" | "max_steps"

    @property
    def satisfied(self) -> bool:
        return self.reason == "until"


#: Process-wide count of kernel steps executed via :meth:`Kernel.run`,
#: across every kernel instance.  The parallel experiment engine
#: (:mod:`repro.exec`) reads deltas of this to report how much simulation
#: each cell actually performed — a cache hit shows up as zero steps.
_TOTAL_STEPS = 0


def steps_simulated() -> int:
    """Total steps run by any kernel in this process (monotone)."""
    return _TOTAL_STEPS


#: (EventListener hook name, Kernel subscriber-list attribute).
_HOOK_ATTRS = (
    ("on_trigger", "_subs_trigger"),
    ("on_respond", "_subs_respond"),
    ("on_invoke", "_subs_invoke"),
    ("on_return", "_subs_return"),
    ("on_crash", "_subs_crash"),
    ("on_step", "_subs_step"),
)


class Kernel:
    """Executes runs over an :class:`~repro.sim.server.ObjectMap`.

    Responsibilities: track pending low-level operations, compute the set
    of enabled actions, apply the scheduler/environment, execute actions,
    publish events, and provide imperative controls (crashes, forced
    actions) used by the lower-bound run constructions.

    Incremental bookkeeping (see ``docs/MODEL.md``, "Performance"):

    * ``_candidates`` — client runtimes that are enabled or may wake
      (everything except crashed / idle-with-empty-program clients), in
      ascending client-id order.  Each candidate carries its own
      scheduling category (``runtime._category``: definitely steppable
      vs. blocked on wait predicates re-evaluated lazily) and its
      reusable ``CLIENT`` action (``runtime.action``), so collecting the
      enabled actions touches no hash tables at all;
    * ``_respond_actions`` — cached ``RESPOND`` actions of pending ops on
      live objects, kept in ascending op-id order.  Always mutated in
      place (never rebound) so references hoisted by
      :meth:`run_batched`'s fast loop stay valid;
    * ``_veto_cache`` — per-op environment verdicts, valid for one
      :meth:`Environment.veto_epoch` token.
    """

    def __init__(
        self, object_map: ObjectMap, scheduler, environment=None, transport=None
    ):
        self.object_map = object_map
        self.scheduler = scheduler
        self.environment = environment or Environment()
        # Imported here: repro.net sits above the kernel in the layer
        # diagram (transports call back into arrive/deliver), so the
        # module-level import would be circular.
        from repro.net.transport import InProcTransport

        if transport is None:
            transport = InProcTransport()
        self.transport = transport
        transport.bind(self)
        # With the plain in-process transport the request leg is a no-op
        # wrapper around arrive_fresh; trigger() inlines it when this
        # flag is set (kept current by set_transport).
        self._inproc = type(transport) is InProcTransport
        self.time = 0
        # Direct alias of the object map's id->object table (mutated in
        # place, never rebound): trigger() resolves the target object on
        # every low-level op, so the lookup skips a method call.
        self._objects = object_map._objects
        self.clients: "Dict[ClientId, ClientRuntime]" = {}
        self.ops: "Dict[OpId, LowLevelOp]" = {}
        self.pending: "Dict[OpId, LowLevelOp]" = {}
        self.listeners: "List[EventListener]" = []
        self._next_op = 0
        self._next_seq = 0
        # Incremental enabled-action state: candidate runtimes in
        # ascending client-id order (category/action live on the runtime).
        self._candidates: "List[ClientRuntime]" = []
        #: RESPOND actions for pending ops on live objects; insertion is in
        #: ascending op-id order and deletions preserve it, so iteration
        #: order always equals sorted order.
        self._respond_actions: "Dict[OpId, Action]" = {}
        # Per-op environment verdicts, valid for one veto epoch.
        self._veto_cache: "Dict[OpId, bool]" = {}
        self._veto_env = None
        self._veto_epoch: Any = None
        # Pre-bound listener hooks (populated by add_listener).
        self._subs_trigger: "List[Callable]" = []
        self._subs_respond: "List[Callable]" = []
        self._subs_invoke: "List[Callable]" = []
        self._subs_return: "List[Callable]" = []
        self._subs_crash: "List[Callable]" = []
        self._subs_step: "List[Callable]" = []

    # -- setup ---------------------------------------------------------------

    def set_transport(self, transport) -> None:
        """Swap the transport in before the run starts.

        Exists so :meth:`EmulationSpec.build <repro.core.emulation.EmulationSpec.build>`
        can attach the configured transport after the emulation
        constructor wired the kernel.  Swapping mid-run would strand
        in-flight messages, so it is refused once anything was triggered.
        """
        if self.ops:
            raise RuntimeError(
                "set_transport after operations were triggered; the"
                " transport must be in place before the run starts"
            )
        from repro.net.transport import InProcTransport

        self.transport = transport
        transport.bind(self)
        self._inproc = type(transport) is InProcTransport

    def add_client(
        self, client_id: ClientId, protocol: ClientProtocol
    ) -> ClientRuntime:
        if client_id in self.clients:
            raise ValueError(f"duplicate client {client_id}")
        runtime = ClientRuntime(client_id, protocol)
        runtime.attach(self)
        self.clients[client_id] = runtime
        runtime.action = Action(ActionKind.CLIENT, client_id=client_id)
        self._recategorize(runtime)
        return runtime

    def add_listener(self, listener: EventListener) -> None:
        """Subscribe a listener, pre-binding only the hooks it overrides.

        Hooks left at the :class:`~repro.sim.events.EventListener`
        defaults are skipped entirely at dispatch time (no call, and no
        event-record allocation when a hook has no subscriber at all), so
        narrow listeners cost nothing on the hooks they ignore.  Hooks
        must therefore be in place *before* the listener is added —
        methods attached to the instance afterwards are not discovered.
        """
        self.listeners.append(listener)
        for hook, attr in _HOOK_ATTRS:
            bound = getattr(listener, hook, None)
            if bound is None:
                continue
            base = getattr(EventListener, hook)
            if getattr(bound, "__func__", bound) is base:
                continue  # not overridden — never dispatch to it
            getattr(self, attr).append(bound)

    def remove_listener(self, listener: EventListener) -> None:
        """Unsubscribe a listener added with :meth:`add_listener`.

        Reverses the pre-bound dispatch registration too (bound methods
        compare equal by ``__self__``/``__func__``, so the hooks captured
        at add time are found again here).  Raises ``ValueError`` if the
        listener was never added.
        """
        self.listeners.remove(listener)
        for hook, attr in _HOOK_ATTRS:
            bound = getattr(listener, hook, None)
            if bound is None:
                continue
            base = getattr(EventListener, hook)
            if getattr(bound, "__func__", bound) is base:
                continue
            subs = getattr(self, attr)
            try:
                subs.remove(bound)
            except ValueError:
                pass  # hook was attached after add_listener — never bound

    # -- incremental client bookkeeping ---------------------------------------

    def _refresh_client(self, client_id: ClientId) -> None:
        """Recategorize one client after an event that may change it.

        Id-keyed wrapper around :meth:`_recategorize` for callers that
        hold an id rather than the runtime (client enqueue, transports).
        """
        runtime = self.clients.get(client_id)
        if runtime is not None:
            self._recategorize(runtime)

    def _recategorize(self, runtime: ClientRuntime) -> None:
        """Recategorize one client after an event that may change it.

        Called after every step of / response delivery to / enqueue on /
        crash of the client.  Also marks the client's wait predicates
        dirty, so polling clients are re-evaluated exactly when touched.
        The category is stored on the runtime itself; the candidate list
        only changes on transitions into or out of ``SCHED_DISABLED``.
        """
        runtime._poll_dirty = True
        category = runtime._sched_category()
        previous = runtime._category
        if category == previous:
            return
        runtime._category = category
        if previous != SCHED_DISABLED:
            if category == SCHED_DISABLED:
                self._candidates.remove(runtime)
            return
        # Joining: insert preserving ascending client-id order.
        candidates = self._candidates
        index = runtime.client_id.index
        lo, hi = 0, len(candidates)
        while lo < hi:
            mid = (lo + hi) // 2
            if candidates[mid].client_id.index < index:
                lo = mid + 1
            else:
                hi = mid
        candidates.insert(lo, runtime)

    # -- low-level operation lifecycle ------------------------------------------

    def trigger(
        self,
        client_id: ClientId,
        object_id: ObjectId,
        kind: OpKind,
        args: tuple,
        highlevel_seq: Optional[int],
    ) -> LowLevelOp:
        """Trigger a low-level operation (called from client runtimes)."""
        obj = self._objects[object_id]
        if kind not in obj.SUPPORTED:
            obj.check_supported(kind)  # raises with the precise message
        op_id = OpId(self._next_op)
        self._next_op += 1
        op = LowLevelOp(
            op_id, client_id, object_id, kind, args, self.time, None, None,
            highlevel_seq,
        )
        op.obj = obj  # cache the kernel-local object for the respond step
        self.ops[op_id] = op
        self.pending[op_id] = op
        # The request leg belongs to the transport: the op becomes
        # respondable when (and if) the transport delivers it via
        # arrive().  For the plain in-process transport that leg is
        # arrive_fresh() behind two calls — inlined here (matching
        # InProcTransport.send_request exactly: a crashed object
        # silently swallows the request).
        if self._inproc:
            if not obj.crashed:
                self._respond_actions[op_id] = Action(
                    ActionKind.RESPOND, op_id=op_id
                )
        else:
            self.transport.send_request(op)
        if self._subs_trigger:
            event = TriggerEvent(self.time, op)
            for emit in self._subs_trigger:
                emit(event)
        return op

    def arrive(self, op_id: OpId) -> None:
        """A request leg reached its server: the op becomes respondable.

        Transport-facing.  Tolerates duplicate arrivals, arrivals for ops
        that already responded, and arrivals at crashed objects (all
        no-ops).  The in-process transport calls this inside
        :meth:`trigger` with strictly increasing op ids, preserving the
        append-in-sorted-order fast path; a lossy transport may deliver
        out of order, in which case the sorted ``_respond_actions``
        invariant is restored by rebuilding.
        """
        op = self.pending.get(op_id)
        if op is None:
            return  # already responded (duplicate or stale delivery)
        actions = self._respond_actions
        if op_id in actions:
            return  # duplicate delivery
        obj = op.obj
        if obj is None:
            obj = self.object_map.object(op.object_id)
        if obj.crashed:
            return  # arrived at a dead server: never respondable
        action = Action(ActionKind.RESPOND, op_id=op_id)
        if actions and op_id < next(reversed(actions)):
            # Out-of-order arrival: re-establish ascending op-id order.
            # Mutated in place (clear + update, never rebound) so that
            # run_batched's hoisted reference stays valid.
            actions[op_id] = action
            ordered = sorted(actions.items())
            actions.clear()
            actions.update(ordered)
        else:
            actions[op_id] = action

    def arrive_fresh(self, op: LowLevelOp) -> None:
        """In-order arrival of an op this kernel just triggered.

        Transport-facing shortcut for :meth:`arrive` taken by the
        in-process transport from inside :meth:`trigger`: the op is
        known to be pending, not a duplicate, its id is the largest ever
        issued (so sorted order is preserved by appending), and its
        object is known live (checked by the caller) — every guard in
        :meth:`arrive` would pass vacuously.
        """
        op_id = op.op_id
        self._respond_actions[op_id] = Action(ActionKind.RESPOND, op_id=op_id)

    def _respond(self, op: LowLevelOp) -> None:
        transport = self.transport
        if transport.remote:
            # The effect was applied by the remote replica; the kernel's
            # local objects are an unconsulted shadow.
            op.result = transport.result_for(op)
        else:
            obj = op.obj
            if obj is None:  # op not triggered here (e.g. wire-decoded)
                obj = self.object_map.object(op.object_id)
            op.result = obj.apply(op)
        op.respond_time = self.time
        del self.pending[op.op_id]
        self._respond_actions.pop(op.op_id, None)
        if self._veto_cache:
            self._veto_cache.pop(op.op_id, None)
        if self._subs_respond:
            event = RespondEvent(self.time, op)
            for emit in self._subs_respond:
                emit(event)
        # The response leg belongs to the transport: the client learns of
        # the respond when (and if) the transport delivers it.
        transport.send_response(op)

    def deliver(self, op: LowLevelOp) -> None:
        """A response leg reached its client (transport-facing).

        Delivery cannot change the client's scheduling category:
        ``on_response`` handlers only see the context, whose sole
        category-changing call — ``spawn`` — updates the category itself
        (see :meth:`ClientRuntime.spawn`).  Only the wait predicates may
        flip, so marking them dirty suffices; the full ``_sched_category``
        rescan is skipped.
        """
        client = self.clients.get(op.client_id)
        if client is not None:
            client.deliver_response(op)
            client._poll_dirty = True

    # -- high-level operation recording ------------------------------------------

    def record_invoke(self, client_id: ClientId, name: str, args: tuple) -> int:
        seq = self._next_seq
        self._next_seq += 1
        if self._subs_invoke:
            event = InvokeEvent(self.time, client_id, seq, name, args)
            for emit in self._subs_invoke:
                emit(event)
        return seq

    def record_return(
        self, client_id: ClientId, seq: int, name: str, result: Any
    ) -> None:
        if self._subs_return:
            event = ReturnEvent(self.time, client_id, seq, name, result)
            for emit in self._subs_return:
                emit(event)

    # -- failures -------------------------------------------------------------------

    def crash_server(self, server_id: ServerId) -> None:
        """Crash a server and all base objects mapped to it."""
        crashed = self.object_map.crash_server(server_id)
        if crashed:
            gone = set(crashed)
            pending = self.pending
            for op_id in [
                op_id
                for op_id in self._respond_actions
                if pending[op_id].object_id in gone
            ]:
                del self._respond_actions[op_id]
            self.transport.on_server_crash(server_id, crashed)
        if self._subs_crash:
            event = CrashEvent(self.time, server_id=server_id)
            for emit in self._subs_crash:
                emit(event)

    def crash_client(self, client_id: ClientId) -> None:
        """Crash a client; its pending low-level ops remain pending."""
        self.clients[client_id].crash()
        if self._subs_crash:
            event = CrashEvent(self.time, client_id=client_id)
            for emit in self._subs_crash:
                emit(event)

    # -- enabled actions ---------------------------------------------------------------

    def enabled_actions(self) -> "List[Action]":
        """All actions executable in the current configuration.

        Deterministically ordered (clients by id, responds by op id) so a
        seeded scheduler yields reproducible runs.  This is the
        from-scratch *oracle*: it rebuilds the set by inspecting every
        client and pending op, independent of the incremental state, and
        is what ``run(..., incremental=False)`` executes against.
        """
        actions: "List[Action]" = []
        for client_id in sorted(self.clients):
            if self.clients[client_id].enabled():
                actions.append(Action(ActionKind.CLIENT, client_id=client_id))
        transport = self.transport
        for op_id in sorted(self.pending):
            op = self.pending[op_id]
            if not self.object_map.object(
                op.object_id
            ).crashed and transport.request_arrived(op):
                actions.append(Action(ActionKind.RESPOND, op_id=op_id))
        return actions

    def _collect_enabled(self) -> "List[Action]":
        """The enabled actions, from the incremental state (fast path).

        Returns the same deterministically-ordered list as
        :meth:`enabled_actions` whenever wait predicates are functions of
        client-local state (the model's contract — see
        :mod:`repro.sim.client`).
        """
        actions: "List[Action]" = []
        for runtime in self._candidates:
            if runtime._category == SCHED_ENABLED:
                actions.append(runtime.action)
            else:  # polling: blocked on wait predicates
                if runtime._poll_dirty:
                    runtime._poll_cache = runtime._poll_now()
                    runtime._poll_dirty = False
                if runtime._poll_cache:
                    actions.append(runtime.action)
        if self._respond_actions:
            actions.extend(self._respond_actions.values())
        return actions

    def _filter_allowed(self, actions: "List[Action]") -> "List[Action]":
        """Drop the RESPOND actions the environment vetoes.

        The single veto-filtering path shared by :meth:`run` (both the
        incremental and oracle modes) and :meth:`allowed_actions`.  When
        the environment publishes a :meth:`~Environment.veto_epoch`,
        per-op verdicts are cached until the epoch changes; the default
        environment (which never vetoes) short-circuits entirely.
        """
        env = self.environment
        if type(env).allows is Environment.allows:
            return actions  # the default environment vetoes nothing
        epoch = env.veto_epoch(self)
        if epoch is None:
            allows = env.allows
            return [
                action
                for action in actions
                if action.kind is ActionKind.CLIENT or allows(action, self)
            ]
        if self._veto_env is not env or self._veto_epoch != epoch:
            self._veto_cache.clear()
            self._veto_env = env
            self._veto_epoch = epoch
        cache = self._veto_cache
        allowed: "List[Action]" = []
        for action in actions:
            if action.kind is ActionKind.CLIENT:
                allowed.append(action)
                continue
            verdict = cache.get(action.op_id)
            if verdict is None:
                verdict = cache[action.op_id] = env.allows(action, self)
            if verdict:
                allowed.append(action)
        return allowed

    def allowed_actions(self) -> "List[Action]":
        """Enabled actions that the environment does not veto."""
        return self._filter_allowed(self.enabled_actions())

    def check_incremental(self) -> None:
        """Assert the incremental action state matches the oracle.

        Raises RuntimeError when the incrementally-maintained enabled
        list (including order) diverges from a from-scratch
        :meth:`enabled_actions` rebuild.  Used by the property tests; safe
        to call between steps of a run.
        """
        fast = self._collect_enabled()
        oracle = self.enabled_actions()
        if fast != oracle:
            raise RuntimeError(
                "incremental enabled-action state diverged from the oracle"
                f" at t={self.time}:\n  incremental: {[str(a) for a in fast]}"
                f"\n  oracle:      {[str(a) for a in oracle]}"
            )

    # -- execution ------------------------------------------------------------

    def execute(self, action: Action) -> None:
        """Execute one action and advance time by one step."""
        self.time += 1
        if action.kind is ActionKind.CLIENT:
            runtime = self.clients[action.client_id]
            try:
                runtime.step()
            finally:
                self._recategorize(runtime)
        else:
            op = self.pending.get(action.op_id)
            if op is None:
                raise ValueError(f"{action.op_id} is not pending")
            obj = op.obj
            if obj is None:
                obj = self.object_map.object(op.object_id)
            if obj.crashed:
                raise RuntimeError(f"respond on crashed object: {op}")
            self._respond(op)
        for emit in self._subs_step:
            emit(self.time)

    def force_respond(self, op_id: OpId) -> None:
        """Imperatively execute a specific respond (run-construction tool)."""
        self.execute(Action(ActionKind.RESPOND, op_id=op_id))

    def force_client_step(self, client_id: ClientId) -> None:
        """Imperatively execute a specific client step."""
        self.execute(Action(ActionKind.CLIENT, client_id=client_id))

    def run(
        self,
        max_steps: int = 100_000,
        until: Optional[Callable[["Kernel"], bool]] = None,
        incremental: bool = True,
    ) -> RunResult:
        """Run under the scheduler/environment.

        Stops when ``until(kernel)`` holds, when no action is enabled
        (``"quiescent"``), when every enabled action is vetoed
        (``"blocked"``), or after ``max_steps`` steps.

        ``incremental=False`` selects the from-scratch
        :meth:`enabled_actions` rebuild on every step (the slow-path
        oracle); both modes produce identical action sequences for the
        same seed.
        """
        collect = self._collect_enabled if incremental else self.enabled_actions
        # Active transports hold in-flight messages that must be pumped
        # each step; the in-process transport has none, and skipping the
        # calls keeps its hot path identical to the pre-seam kernel.
        transport = self.transport if self.transport.active else None
        steps = 0
        try:
            while steps < max_steps:
                if until is not None and until(self):
                    return RunResult(steps, "until")
                if transport is not None:
                    transport.pump()
                enabled = collect()
                if not enabled:
                    if transport is not None and transport.flush_idle():
                        continue  # a delivery landed: re-evaluate
                    return RunResult(steps, "quiescent")
                allowed = self._filter_allowed(enabled)
                if not allowed:
                    if self.environment.on_stall(self):
                        allowed = self._filter_allowed(collect())
                    if not allowed:
                        if transport is not None and transport.flush_idle():
                            continue  # an in-flight delivery may unblock
                        return RunResult(steps, "blocked")
                action = self.scheduler.choose(allowed, self)
                self.execute(action)
                steps += 1
            if until is not None and until(self):
                return RunResult(steps, "until")
            return RunResult(steps, "max_steps")
        finally:
            global _TOTAL_STEPS
            _TOTAL_STEPS += steps

    def run_batched(
        self,
        max_steps: int = 100_000,
        until: Optional[Callable[["Kernel"], bool]] = None,
        batch_size: int = 64,
    ) -> RunResult:
        """Run under the scheduler/environment, amortizing loop overhead.

        Observationally identical to :meth:`run` with
        ``incremental=True``: the scheduler sees the same allowed-action
        lists in the same order on every step, so the chosen action
        sequence — and with it histories, traces, and the golden
        transport fingerprints — is byte-for-byte unchanged.  What
        changes is the bookkeeping *around* each step: the loop
        re-validates its fast-path preconditions (the default
        all-allowing :class:`Environment`, the in-process transport)
        once per ``batch_size`` steps instead of on every step, hoists
        the incremental structures and bound methods into locals, and
        inlines action execution — including the in-process response
        delivery — removing several layers of per-step dispatch.

        The scheduler is still consulted once per action.  Handing it K
        actions at a time would change which run is chosen (each choice
        both consumes seeded randomness and determines the next enabled
        set) and would move fairness and the adversary semantics out of
        per-action choice; batching therefore amortizes collection and
        dispatch, never decisions.  See ``docs/MODEL.md``, "Performance".

        Configurations the fast path does not cover (a vetoing
        environment, an active transport with in-flight messages) fall
        back — per batch, so mid-run swaps surface within ``batch_size``
        steps — to a loop that replicates :meth:`run` step for step.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        from repro.net.transport import InProcTransport

        steps = 0
        try:
            while steps < max_steps:
                budget = max_steps - steps
                if budget > batch_size:
                    budget = batch_size
                if (
                    type(self.environment).allows is Environment.allows
                    and type(self.transport) is InProcTransport
                ):
                    taken, reason = self._batch_fast(budget, until)
                else:
                    taken, reason = self._batch_general(budget, until)
                steps += taken
                if reason is not None:
                    return RunResult(steps, reason)
            if until is not None and until(self):
                return RunResult(steps, "until")
            return RunResult(steps, "max_steps")
        finally:
            global _TOTAL_STEPS
            _TOTAL_STEPS += steps

    def _batch_fast(self, budget: int, until) -> "tuple[int, Optional[str]]":
        """Up to ``budget`` steps of the inlined fast path.

        Preconditions (checked by :meth:`run_batched` before every
        batch): the default environment (nothing is ever vetoed, so
        ``"blocked"`` is unreachable and the veto filter is the
        identity) and the in-process transport (no pump / flush_idle, a
        request arrives inside ``trigger``, a response delivers inside
        the respond step).  Every structure hoisted here is mutated in
        place by the kernel's event handlers, never rebound, so the
        locals stay current as crash plans and listeners fire mid-batch.

        Returns ``(steps_taken, reason)`` with ``reason`` None while the
        budget is exhausted without terminating.
        """
        from repro.sim.scheduling import RandomScheduler

        candidates = self._candidates
        respond_actions = self._respond_actions
        veto_cache = self._veto_cache
        pending = self.pending
        clients = self.clients
        scheduler = self.scheduler
        choose = scheduler.choose
        # The random scheduler's choice is one seeded index — hoisting
        # the bound ``_randbelow`` skips the ``choose`` frame per step
        # while consuming the identical random stream.
        pick = (
            scheduler._pick if type(scheduler) is RandomScheduler else None
        )
        recategorize = self._recategorize
        subs_step = self._subs_step
        subs_respond = self._subs_respond
        client_kind = ActionKind.CLIENT
        enabled_category = SCHED_ENABLED
        n = 0
        while n < budget:
            if until is not None and until(self):
                return n, "until"
            actions = []
            append = actions.append
            for runtime in candidates:
                if runtime._category == enabled_category:
                    append(runtime.action)
                else:  # polling: blocked on wait predicates
                    if runtime._poll_dirty:
                        runtime._poll_cache = runtime._poll_now()
                        runtime._poll_dirty = False
                    if runtime._poll_cache:
                        append(runtime.action)
            if respond_actions:
                actions += respond_actions.values()
            if not actions:
                return n, "quiescent"
            if pick is not None:
                action = actions[pick(len(actions))]
            else:
                action = choose(actions, self)
            time = self.time = self.time + 1
            if action.kind is client_kind:
                runtime = clients[action.client_id]
                try:
                    runtime.step()
                finally:
                    recategorize(runtime)
            else:
                op_id = action.op_id
                op = pending.get(op_id)
                if op is None:
                    raise ValueError(f"{op_id} is not pending")
                obj = op.obj
                if obj is None:
                    obj = self.object_map.object(op.object_id)
                if obj.crashed:
                    raise RuntimeError(f"respond on crashed object: {op}")
                # Support was checked at trigger and crash just above, so
                # the wrapper re-checks in BaseObject.apply are redundant.
                op.result = obj._apply(op)
                op.respond_time = time
                del pending[op_id]
                respond_actions.pop(op_id, None)
                if veto_cache:
                    veto_cache.pop(op_id, None)
                if subs_respond:
                    event = RespondEvent(time, op)
                    for emit in subs_respond:
                        emit(event)
                # Inlined InProcTransport.send_response -> deliver.
                # Delivery can't change the category (see deliver()),
                # only the predicates: mark them dirty and move on.
                client = clients.get(op.client_id)
                if client is not None:
                    client.deliver_response(op)
                    client._poll_dirty = True
            if subs_step:
                for emit in subs_step:
                    emit(time)
            n += 1
        return n, None

    def _batch_general(
        self, budget: int, until
    ) -> "tuple[int, Optional[str]]":
        """Up to ``budget`` steps replicating :meth:`run` exactly.

        The fallback for configurations the fast path does not cover
        (vetoing environments, active transports); each iteration is the
        body of :meth:`run`'s incremental loop, so behavior — including
        pump ordering, stall handling, and idle flushes — is identical.
        """
        collect = self._collect_enabled
        transport = self.transport if self.transport.active else None
        n = 0
        while n < budget:
            if until is not None and until(self):
                return n, "until"
            if transport is not None:
                transport.pump()
            enabled = collect()
            if not enabled:
                if transport is not None and transport.flush_idle():
                    continue  # a delivery landed: re-evaluate
                return n, "quiescent"
            allowed = self._filter_allowed(enabled)
            if not allowed:
                if self.environment.on_stall(self):
                    allowed = self._filter_allowed(collect())
                if not allowed:
                    if transport is not None and transport.flush_idle():
                        continue  # an in-flight delivery may unblock
                    return n, "blocked"
            action = self.scheduler.choose(allowed, self)
            self.execute(action)
            n += 1
        return n, None

    # -- queries used by analysis/adversaries ---------------------------------

    def pending_ops_on(self, object_id: ObjectId) -> "List[LowLevelOp]":
        return [op for op in self.pending.values() if op.object_id == object_id]

    def pending_mutators(self) -> "List[LowLevelOp]":
        return [op for op in self.pending.values() if op.is_mutator]

    def client(self, client_id: ClientId) -> ClientRuntime:
        return self.clients[client_id]

    def stats(self) -> "Dict[str, int]":
        """A monitoring snapshot: time, op counts, pending, liveness."""
        return {
            "time": self.time,
            "clients": len(self.clients),
            "crashed_clients": sum(
                1 for c in self.clients.values() if c.crashed
            ),
            "servers": self.object_map.n_servers,
            "crashed_servers": len(self.object_map.crashed_servers),
            "objects": self.object_map.n_objects,
            "ops_triggered": len(self.ops),
            "ops_pending": len(self.pending),
            "covering_writes": sum(
                1 for op in self.pending.values() if op.is_mutator
            ),
        }
