"""The simulation kernel: configurations, actions, steps.

A run of an emulation algorithm is an alternating sequence of
configurations and actions (Appendix A.4).  The kernel executes one action
per step; the step counter is the paper's notion of time ``t``.  Two action
kinds exist:

* ``CLIENT`` — a client takes a step: it invokes its next high-level
  operation, or advances one of its runnable coroutines (triggering
  low-level operations and/or executing a return action).
* ``RESPOND`` — a pending low-level operation on a correct base object
  responds, *taking effect at that instant* (Assumption 1).

An :class:`Environment` may veto ``RESPOND`` actions — this is exactly the
adversary's power in the lower-bound proof (Definition 3: a blocked write
"does not respond at t").  Fairness (Definition of fair runs) is then a
property of the scheduler plus environment: every non-vetoed enabled action
is eventually executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro.sim.client import ClientProtocol, ClientRuntime
from repro.sim.events import (
    CrashEvent,
    EventListener,
    InvokeEvent,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)
from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.server import ObjectMap


class ActionKind(Enum):
    CLIENT = "client"
    RESPOND = "respond"


@dataclass(frozen=True)
class Action:
    """One executable action: a client step or a low-level respond."""

    kind: ActionKind
    client_id: Optional[ClientId] = None
    op_id: Optional[OpId] = None

    def __str__(self) -> str:
        if self.kind is ActionKind.CLIENT:
            return f"step({self.client_id})"
        return f"respond({self.op_id})"

    def __lt__(self, other: "Action") -> bool:
        return self._sort_key() < other._sort_key()

    def _sort_key(self) -> tuple:
        if self.kind is ActionKind.CLIENT:
            return (0, self.client_id.index, 0)
        return (1, 0, self.op_id.value)


class Environment:
    """Hook allowing an adversary to constrain the run.

    The default environment allows everything (failure-free, fully
    asynchronous).  Subclasses override :meth:`allows` to veto respond
    actions — vetoing client steps is not permitted by the model (clients
    always get opportunities to take steps in fair runs), so the kernel
    only consults the environment for ``RESPOND`` actions.
    """

    def allows(self, action: Action, kernel: "Kernel") -> bool:
        return True

    def on_stall(self, kernel: "Kernel") -> bool:
        """Called when every enabled action is vetoed.

        Return True to have the kernel re-evaluate (the environment should
        have relaxed something); False means the block is intentional and
        the run ends with reason ``"blocked"``.  The lower-bound adversary
        keeps the default (blocking is its purpose); chaotic/latency
        environments override this to preserve liveness.
        """
        return False


@dataclass
class RunResult:
    """Outcome of :meth:`Kernel.run`."""

    steps: int
    reason: str  # "until" | "quiescent" | "blocked" | "max_steps"

    @property
    def satisfied(self) -> bool:
        return self.reason == "until"


class Kernel:
    """Executes runs over an :class:`~repro.sim.server.ObjectMap`.

    Responsibilities: track pending low-level operations, compute the set
    of enabled actions, apply the scheduler/environment, execute actions,
    publish events, and provide imperative controls (crashes, forced
    actions) used by the lower-bound run constructions.
    """

    def __init__(self, object_map: ObjectMap, scheduler, environment=None):
        self.object_map = object_map
        self.scheduler = scheduler
        self.environment = environment or Environment()
        self.time = 0
        self.clients: "Dict[ClientId, ClientRuntime]" = {}
        self.ops: "Dict[OpId, LowLevelOp]" = {}
        self.pending: "Dict[OpId, LowLevelOp]" = {}
        self.listeners: "List[EventListener]" = []
        self._next_op = 0
        self._next_seq = 0

    # -- setup ---------------------------------------------------------------

    def add_client(
        self, client_id: ClientId, protocol: ClientProtocol
    ) -> ClientRuntime:
        if client_id in self.clients:
            raise ValueError(f"duplicate client {client_id}")
        runtime = ClientRuntime(client_id, protocol)
        runtime.attach(self)
        self.clients[client_id] = runtime
        return runtime

    def add_listener(self, listener: EventListener) -> None:
        self.listeners.append(listener)

    # -- event plumbing --------------------------------------------------------

    def _emit(self, hook: str, event: Any) -> None:
        for listener in self.listeners:
            getattr(listener, hook)(event)

    def _emit_step(self) -> None:
        for listener in self.listeners:
            listener.on_step(self.time)

    # -- low-level operation lifecycle ------------------------------------------

    def trigger(
        self,
        client_id: ClientId,
        object_id: ObjectId,
        kind: OpKind,
        args: tuple,
        highlevel_seq: Optional[int],
    ) -> LowLevelOp:
        """Trigger a low-level operation (called from client runtimes)."""
        obj = self.object_map.object(object_id)
        obj.check_supported(kind)
        op = LowLevelOp(
            op_id=OpId(self._next_op),
            client_id=client_id,
            object_id=object_id,
            kind=kind,
            args=args,
            trigger_time=self.time,
            highlevel_seq=highlevel_seq,
        )
        self._next_op += 1
        self.ops[op.op_id] = op
        self.pending[op.op_id] = op
        self._emit("on_trigger", TriggerEvent(self.time, op))
        return op

    def _respond(self, op: LowLevelOp) -> None:
        obj = self.object_map.object(op.object_id)
        op.result = obj.apply(op)
        op.respond_time = self.time
        del self.pending[op.op_id]
        self._emit("on_respond", RespondEvent(self.time, op))
        client = self.clients.get(op.client_id)
        if client is not None:
            client.deliver_response(op)

    # -- high-level operation recording ------------------------------------------

    def record_invoke(self, client_id: ClientId, name: str, args: tuple) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._emit("on_invoke", InvokeEvent(self.time, client_id, seq, name, args))
        return seq

    def record_return(
        self, client_id: ClientId, seq: int, name: str, result: Any
    ) -> None:
        self._emit("on_return", ReturnEvent(self.time, client_id, seq, name, result))

    # -- failures -------------------------------------------------------------------

    def crash_server(self, server_id: ServerId) -> None:
        """Crash a server and all base objects mapped to it."""
        self.object_map.crash_server(server_id)
        self._emit("on_crash", CrashEvent(self.time, server_id=server_id))

    def crash_client(self, client_id: ClientId) -> None:
        """Crash a client; its pending low-level ops remain pending."""
        self.clients[client_id].crash()
        self._emit("on_crash", CrashEvent(self.time, client_id=client_id))

    # -- enabled actions ---------------------------------------------------------------

    def enabled_actions(self) -> "List[Action]":
        """All actions executable in the current configuration.

        Deterministically ordered (clients by id, responds by op id) so a
        seeded scheduler yields reproducible runs.
        """
        actions: "List[Action]" = []
        for client_id in sorted(self.clients):
            if self.clients[client_id].enabled():
                actions.append(Action(ActionKind.CLIENT, client_id=client_id))
        for op_id in sorted(self.pending):
            op = self.pending[op_id]
            if not self.object_map.object(op.object_id).crashed:
                actions.append(Action(ActionKind.RESPOND, op_id=op_id))
        return actions

    def allowed_actions(self) -> "List[Action]":
        """Enabled actions that the environment does not veto."""
        allowed = []
        for action in self.enabled_actions():
            if action.kind is ActionKind.RESPOND:
                if not self.environment.allows(action, self):
                    continue
            allowed.append(action)
        return allowed

    # -- execution ------------------------------------------------------------------------

    def execute(self, action: Action) -> None:
        """Execute one action and advance time by one step."""
        self.time += 1
        if action.kind is ActionKind.CLIENT:
            self.clients[action.client_id].step()
        else:
            op = self.pending.get(action.op_id)
            if op is None:
                raise ValueError(f"{action.op_id} is not pending")
            if self.object_map.object(op.object_id).crashed:
                raise RuntimeError(f"respond on crashed object: {op}")
            self._respond(op)
        self._emit_step()

    def force_respond(self, op_id: OpId) -> None:
        """Imperatively execute a specific respond (run-construction tool)."""
        self.execute(Action(ActionKind.RESPOND, op_id=op_id))

    def force_client_step(self, client_id: ClientId) -> None:
        """Imperatively execute a specific client step."""
        self.execute(Action(ActionKind.CLIENT, client_id=client_id))

    def run(
        self,
        max_steps: int = 100_000,
        until: Optional[Callable[["Kernel"], bool]] = None,
    ) -> RunResult:
        """Run under the scheduler/environment.

        Stops when ``until(kernel)`` holds, when no action is enabled
        (``"quiescent"``), when every enabled action is vetoed
        (``"blocked"``), or after ``max_steps`` steps.
        """
        steps = 0
        while steps < max_steps:
            if until is not None and until(self):
                return RunResult(steps, "until")
            enabled = self.enabled_actions()
            if not enabled:
                return RunResult(steps, "quiescent")
            allowed = [
                a
                for a in enabled
                if a.kind is ActionKind.CLIENT
                or self.environment.allows(a, self)
            ]
            if not allowed:
                if self.environment.on_stall(self):
                    allowed = [
                        a
                        for a in enabled
                        if a.kind is ActionKind.CLIENT
                        or self.environment.allows(a, self)
                    ]
                if not allowed:
                    return RunResult(steps, "blocked")
            action = self.scheduler.choose(allowed, self)
            self.execute(action)
            steps += 1
        if until is not None and until(self):
            return RunResult(steps, "until")
        return RunResult(steps, "max_steps")

    # -- queries used by analysis/adversaries -----------------------------------------------

    def pending_ops_on(self, object_id: ObjectId) -> "List[LowLevelOp]":
        return [op for op in self.pending.values() if op.object_id == object_id]

    def pending_mutators(self) -> "List[LowLevelOp]":
        return [op for op in self.pending.values() if op.is_mutator]

    def client(self, client_id: ClientId) -> ClientRuntime:
        return self.clients[client_id]

    def stats(self) -> "Dict[str, int]":
        """A monitoring snapshot: time, op counts, pending, liveness."""
        return {
            "time": self.time,
            "clients": len(self.clients),
            "crashed_clients": sum(
                1 for c in self.clients.values() if c.crashed
            ),
            "servers": self.object_map.n_servers,
            "crashed_servers": len(self.object_map.crashed_servers),
            "objects": self.object_map.n_objects,
            "ops_triggered": len(self.ops),
            "ops_pending": len(self.pending),
            "covering_writes": sum(
                1 for op in self.pending.values() if op.is_mutator
            ),
        }
