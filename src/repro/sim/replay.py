"""Record and replay schedules.

Debugging a distributed-algorithm failure needs the *exact* interleaving
back.  :class:`RecordingScheduler` wraps any scheduler and records each
chosen action as a compact descriptor; :class:`ReplayScheduler` re-issues
a recorded schedule verbatim against a fresh deployment, failing loudly
if the run diverges (an action in the script is not currently allowed —
which means the system under replay is not the one recorded).

Descriptors are plain tuples (``("client", index)`` /
``("respond", op_value)``), so schedules serialize with ``json`` or
``repr`` and can be attached to bug reports.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.ids import ClientId, OpId
from repro.sim.kernel import Action, ActionKind
from repro.sim.scheduling import Scheduler

#: Serialized action: ("client", client_index) or ("respond", op_value).
ActionDescriptor = Tuple[str, int]


def describe(action: Action) -> ActionDescriptor:
    if action.kind is ActionKind.CLIENT:
        return ("client", action.client_id.index)
    return ("respond", action.op_id.value)


def materialize(descriptor: ActionDescriptor) -> Action:
    kind, value = descriptor
    if kind == "client":
        return Action(ActionKind.CLIENT, client_id=ClientId(value))
    if kind == "respond":
        return Action(ActionKind.RESPOND, op_id=OpId(value))
    raise ValueError(f"unknown action descriptor {descriptor!r}")


class RecordingScheduler(Scheduler):
    """Wraps a scheduler, recording every chosen action."""

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.script: "List[ActionDescriptor]" = []

    def choose(self, actions, kernel) -> Action:
        action = self.inner.choose(actions, kernel)
        self.script.append(describe(action))
        return action


class ReplayDivergence(RuntimeError):
    """The replayed system did not offer the recorded action."""


class ReplayScheduler(Scheduler):
    """Replays a recorded script action by action."""

    def __init__(self, script: "List[ActionDescriptor]"):
        self.script = list(script)
        self.position = 0

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.script)

    def choose(self, actions, kernel) -> Action:
        if self.exhausted:
            raise ReplayDivergence(
                f"script exhausted after {self.position} actions but the"
                " run wants to continue"
            )
        wanted = materialize(self.script[self.position])
        if wanted not in actions:
            raise ReplayDivergence(
                f"at position {self.position}: recorded action {wanted}"
                f" is not among the {len(actions)} allowed actions — the"
                " replayed system diverged from the recording"
            )
        self.position += 1
        return wanted
