"""Chaos testing: a randomized-but-fair environment.

The lower-bound adversary (:class:`~repro.core.adversary.AdversaryAdi`)
vetoes responds with surgical intent; :class:`ChaosEnvironment` vetoes
them *randomly*, modelling arbitrary bounded asynchrony: every pending
operation may be delayed, but never beyond ``max_delay`` steps (so every
fair-scheduler run remains fair and liveness is preserved).

Together with :class:`~repro.sim.scheduling.RandomScheduler` this gives
runs that are much wilder than random scheduling alone — responds go
through veto windows that reorder them across long stretches — which is
exactly the weather safety properties must survive.

The *message-level* expression of the same concern lives in
:func:`repro.net.faults.chaos_faults`: a
:class:`~repro.net.lossy.LossyTransport` that delays, reorders, drops
and duplicates messages in flight, instead of vetoing responds.  Vetoes
stay in-model (the lower-bound adversary's power); message faults are
out-of-model stressors under which only safety is asserted.
"""

from __future__ import annotations

import random

from repro.sim.kernel import Action, ActionKind, Environment, Kernel


class ChaosEnvironment(Environment):
    """Randomly delay responds, with a hard fairness bound.

    ``veto_probability`` is the chance a respond is vetoed on any given
    consultation; an operation pending longer than ``max_delay`` steps is
    never vetoed again.  Deterministic per seed: the veto decision for an
    operation is re-randomized each consultation from a stream seeded by
    (seed, op id, time), so runs replay exactly.
    """

    def __init__(
        self,
        seed: int = 0,
        veto_probability: float = 0.5,
        max_delay: int = 200,
    ):
        if not 0.0 <= veto_probability < 1.0:
            raise ValueError("veto_probability must be in [0, 1)")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.seed = seed
        self.veto_probability = veto_probability
        self.max_delay = max_delay
        self.vetoes = 0
        self.stalls = 0
        self._forced: "set[int]" = set()

    def allows(self, action: Action, kernel: Kernel) -> bool:
        if action.kind is not ActionKind.RESPOND:
            return True
        op = kernel.pending.get(action.op_id)
        if op is None:
            return True
        if op.op_id.value in self._forced:
            return True  # released on a stall: stays released
        pending_for = kernel.time - op.trigger_time
        if pending_for >= self.max_delay:
            return True  # fairness: delays are bounded
        # hash() of an int tuple is deterministic across processes (only
        # str hashing is salted), so runs replay exactly per seed.
        decision = random.Random(
            hash((self.seed, action.op_id.value, kernel.time))
        ).random()
        if decision < self.veto_probability:
            self.vetoes += 1
            return False
        return True

    def on_stall(self, kernel: Kernel) -> bool:
        """All enabled responds momentarily vetoed: release the oldest
        pending operation so the run keeps moving (liveness)."""
        respondable = [
            op
            for op in kernel.pending.values()
            if not kernel.object_map.object(op.object_id).crashed
        ]
        if not respondable:
            return False
        self.stalls += 1
        oldest = min(respondable, key=lambda op: op.trigger_time)
        self._forced.add(oldest.op_id.value)
        return True
