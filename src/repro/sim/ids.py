"""Typed identifiers for the simulated system.

Identifiers are small frozen dataclasses rather than bare integers so that
a client id can never be accidentally used where a server id is expected.
They are hashable, ordered, and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class ClientId:
    """Identity of a client process ``c_i`` in the set ``C``."""

    index: int

    def __str__(self) -> str:
        return f"c{self.index}"


@dataclass(frozen=True, order=True)
class ServerId:
    """Identity of a server ``s_j`` in the set ``S``."""

    index: int

    def __str__(self) -> str:
        return f"s{self.index}"


@dataclass(frozen=True, order=True)
class ObjectId:
    """Identity of a base object ``b`` in the set ``B``."""

    index: int

    def __str__(self) -> str:
        return f"b{self.index}"


@dataclass(frozen=True, order=True)
class OpId:
    """Identity of a single low-level operation instance.

    Every trigger produces a fresh :class:`OpId`; the matching respond (if
    any) carries the same id.
    """

    value: int

    def __str__(self) -> str:
        return f"op{self.value}"


def as_client_id(value: Any) -> ClientId:
    """Coerce an ``int`` or :class:`ClientId` to a :class:`ClientId`."""
    if isinstance(value, ClientId):
        return value
    if isinstance(value, int):
        return ClientId(value)
    raise TypeError(f"cannot interpret {value!r} as a ClientId")


def as_server_id(value: Any) -> ServerId:
    """Coerce an ``int`` or :class:`ServerId` to a :class:`ServerId`."""
    if isinstance(value, ServerId):
        return value
    if isinstance(value, int):
        return ServerId(value)
    raise TypeError(f"cannot interpret {value!r} as a ServerId")


def as_object_id(value: Any) -> ObjectId:
    """Coerce an ``int`` or :class:`ObjectId` to an :class:`ObjectId`."""
    if isinstance(value, ObjectId):
        return value
    if isinstance(value, int):
        return ObjectId(value)
    raise TypeError(f"cannot interpret {value!r} as an ObjectId")
