"""Typed identifiers for the simulated system.

Identifiers are small immutable value types rather than bare integers so
that a client id can never be accidentally used where a server id is
expected.  They are hashable, ordered (within their own type), and cheap.

They used to be frozen dataclasses; profiling the kernel hot path showed
the generated ``__hash__`` (a Python-level call building a field tuple on
every dict/set lookup) at roughly a fifth of total step time, so the ids
are now hand-written ``__slots__`` classes that compute their hash once
at construction.  Everything observable is preserved: equality is
type-strict (``ClientId(1) != ServerId(1)``), ordering raises across
types, ``str``/``repr`` match the dataclass forms, and instances pickle.
"""

from __future__ import annotations

from typing import Any


class _Identifier:
    """Shared machinery: one int field, cached hash, type-strict compare."""

    __slots__ = ("index", "_hash")

    #: name of the single field in ``repr`` ("index" or "value").
    _FIELD = "index"

    def __init__(self, index: int):
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "_hash", hash((self.__class__, index)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            f"{self.__class__.__name__} is immutable; cannot set {name!r}"
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.index == other.index

    def __ne__(self, other: Any) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.index != other.index

    def __lt__(self, other: Any) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.index < other.index

    def __le__(self, other: Any) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.index <= other.index

    def __gt__(self, other: Any) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.index > other.index

    def __ge__(self, other: Any) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.index >= other.index

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self._FIELD}={self.index})"

    def __reduce__(self):
        return (self.__class__, (self.index,))


class ClientId(_Identifier):
    """Identity of a client process ``c_i`` in the set ``C``."""

    __slots__ = ()

    def __str__(self) -> str:
        return f"c{self.index}"


class ServerId(_Identifier):
    """Identity of a server ``s_j`` in the set ``S``."""

    __slots__ = ()

    def __str__(self) -> str:
        return f"s{self.index}"


class ObjectId(_Identifier):
    """Identity of a base object ``b`` in the set ``B``."""

    __slots__ = ()

    def __str__(self) -> str:
        return f"b{self.index}"


class OpId(int):
    """Identity of a single low-level operation instance.

    Every trigger produces a fresh :class:`OpId`; the matching respond (if
    any) carries the same id.  Unlike the other id types, ``OpId`` is an
    ``int`` subclass: op ids key the kernel's ``pending``/respond tables
    and every client's in-flight set, so a dict lookup per kernel step
    goes through ``__hash__`` — inheriting the C-level ``int`` hash and
    equality removes that Python call from the hot path.  (The hash of an
    op id equals the hash of its plain value, which also keeps the seeded
    fault-fate streams of the lossy transport and the chaos environment —
    both hash tuples containing ``op_id.value`` — byte-identical.)

    Everything observable is preserved: ``repr``/``str`` match the old
    forms, equality against the *other* id types stays ``False``, and
    cross-type ordering still raises.  ``value`` returns the id itself —
    it already is its value.
    """

    __slots__ = ()

    @property
    def value(self) -> "OpId":
        return self

    def __repr__(self) -> str:
        return f"OpId(value={int(self)})"

    def __reduce__(self):
        return (OpId, (int(self),))

    def __str__(self) -> str:
        return f"op{int(self)}"


def as_client_id(value: Any) -> ClientId:
    """Coerce an ``int`` or :class:`ClientId` to a :class:`ClientId`."""
    if isinstance(value, ClientId):
        return value
    if isinstance(value, int):
        return ClientId(value)
    raise TypeError(f"cannot interpret {value!r} as a ClientId")


def as_server_id(value: Any) -> ServerId:
    """Coerce an ``int`` or :class:`ServerId` to a :class:`ServerId`."""
    if isinstance(value, ServerId):
        return value
    if isinstance(value, int):
        return ServerId(value)
    raise TypeError(f"cannot interpret {value!r} as a ServerId")


def as_object_id(value: Any) -> ObjectId:
    """Coerce an ``int`` or :class:`ObjectId` to an :class:`ObjectId`."""
    if isinstance(value, ObjectId):
        return value
    if isinstance(value, int):
        return ObjectId(value)
    raise TypeError(f"cannot interpret {value!r} as an ObjectId")
