"""Crash injection plans.

A :class:`CrashPlan` is an event listener that crashes servers (or
clients) at predetermined step counts or when predicates fire, letting
tests and benchmarks exercise f-tolerance deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.events import EventListener
from repro.sim.ids import ClientId, ServerId


@dataclass
class _PredicateCrash:
    predicate: Callable[[object], bool]
    server_id: Optional[ServerId]
    client_id: Optional[ClientId]
    fired: bool = False


class CrashPlan(EventListener):
    """Deterministic crash schedule.

    Attach to a kernel with ``plan.install(kernel)``; the plan subscribes
    itself as a listener and triggers crashes after the matching step.
    Crashes are injected *between* kernel steps, which keeps the
    one-action-per-step model intact (a crash is an environment event, not
    an algorithm action).
    """

    def __init__(self) -> None:
        self._at_step: "List[Tuple[int, Optional[ServerId], Optional[ClientId]]]" = []
        self._on_predicate: "List[_PredicateCrash]" = []
        self._kernel = None

    # -- construction -----------------------------------------------------

    def crash_server_at(self, step: int, server_id: ServerId) -> "CrashPlan":
        self._at_step.append((step, server_id, None))
        return self

    def crash_client_at(self, step: int, client_id: ClientId) -> "CrashPlan":
        self._at_step.append((step, None, client_id))
        return self

    def crash_server_when(
        self, predicate: Callable[[object], bool], server_id: ServerId
    ) -> "CrashPlan":
        self._on_predicate.append(_PredicateCrash(predicate, server_id, None))
        return self

    def crash_client_when(
        self, predicate: Callable[[object], bool], client_id: ClientId
    ) -> "CrashPlan":
        self._on_predicate.append(_PredicateCrash(predicate, None, client_id))
        return self

    # -- wiring --------------------------------------------------------------

    def install(self, kernel) -> "CrashPlan":
        self._kernel = kernel
        kernel.add_listener(self)
        return self

    # -- listener --------------------------------------------------------------

    def on_step(self, time: int) -> None:
        if self._kernel is None:
            return
        remaining = []
        for step, server_id, client_id in self._at_step:
            if time >= step:
                self._fire(server_id, client_id)
            else:
                remaining.append((step, server_id, client_id))
        self._at_step = remaining
        for entry in self._on_predicate:
            if not entry.fired and entry.predicate(self._kernel):
                entry.fired = True
                self._fire(entry.server_id, entry.client_id)

    def _fire(
        self, server_id: Optional[ServerId], client_id: Optional[ClientId]
    ) -> None:
        if server_id is not None:
            self._kernel.crash_server(server_id)
        if client_id is not None:
            self._kernel.crash_client(client_id)
