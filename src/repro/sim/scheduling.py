"""Scheduler policies.

A scheduler picks the next action among the allowed ones.  The paper's
liveness definitions are stated over *fair* runs; we provide:

* :class:`RandomScheduler` — seeded uniform choice; probabilistically fair
  and the workhorse for randomized testing.
* :class:`RoundRobinScheduler` — strongly fair: always picks the enabled
  action that has waited longest (never starves anything).
* :class:`ClientPriorityScheduler` — prefers client steps over responds
  (drives computation forward before delivering responses); fair within
  each class.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.sim.kernel import Action, ActionKind


class Scheduler:
    """Interface: choose one action among the allowed ones."""

    def choose(self, actions: "List[Action]", kernel) -> Action:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Seeded uniform random choice among allowed actions.

    ``choose`` indexes with ``Random._randbelow`` directly — for a
    positive int bound this is exactly what ``randrange`` reduces to
    (identical consumption of the seeded stream, so recorded schedules
    and golden fingerprints are unchanged), minus ``randrange``'s
    argument normalization on every step.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._pick = self._rng._randbelow

    def choose(self, actions: "List[Action]", kernel) -> Action:
        return actions[self._pick(len(actions))]


class RoundRobinScheduler(Scheduler):
    """Strongly fair: pick the allowed action enabled-and-unserved longest.

    Implemented as two insertion-ordered queues rather than a
    ``min()``-scan over ever-growing bookkeeping dicts: ``_fresh`` holds
    never-picked actions in first-seen order, ``_served`` holds picked
    actions in last-picked order (a pick moves to the back).  The head-most
    allowed action of ``_fresh`` (else of ``_served``) wins — exactly the
    old "least recently executed, fresh first, ties by first-seen" policy,
    but each pick is amortized O(1) instead of O(known actions).

    Queue entries for low-level operations that already responded can
    never recur (op ids are unique), so they are pruned lazily as scans
    pass them and wholesale every ``_SWEEP_INTERVAL`` picks — the old
    implementation kept them forever and leaked memory over long runs.
    Under this policy every continuously allowed action is eventually
    executed, which realizes the paper's fair runs whenever the
    environment stops vetoing.
    """

    _SWEEP_INTERVAL = 1024

    def __init__(self) -> None:
        # Python dicts preserve insertion order; values are unused.
        self._fresh: "Dict[Action, None]" = {}
        self._served: "Dict[Action, None]" = {}
        self._picks = 0

    def choose(self, actions: "List[Action]", kernel) -> Action:
        fresh, served = self._fresh, self._served
        for action in actions:
            if action not in fresh and action not in served:
                fresh[action] = None
        self._picks += 1
        if kernel is not None and self._picks % self._SWEEP_INTERVAL == 0:
            self._sweep(kernel)
        allowed = set(actions)
        pick = self._scan(fresh, allowed, kernel)
        if pick is not None:
            del fresh[pick]
        else:
            pick = self._scan(served, allowed, kernel)
            del served[pick]
        served[pick] = None  # (re-)append at the back: last-picked order
        return pick

    @staticmethod
    def _scan(queue, allowed, kernel):
        """First allowed action in queue order, dropping stale responds."""
        pending = kernel.pending if kernel is not None else None
        pick = None
        stale = None
        for action in queue:
            if action in allowed:
                pick = action
                break
            if (
                pending is not None
                and action.kind is ActionKind.RESPOND
                and action.op_id not in pending
            ):
                if stale is None:
                    stale = []
                stale.append(action)
        if stale:
            for action in stale:
                del queue[action]
        return pick

    def _sweep(self, kernel) -> None:
        """Drop every queued respond whose operation is no longer pending."""
        pending = kernel.pending
        for queue in (self._fresh, self._served):
            for action in [
                action
                for action in queue
                if action.kind is ActionKind.RESPOND
                and action.op_id not in pending
            ]:
                del queue[action]


class ClientPriorityScheduler(Scheduler):
    """Prefer client steps; deliver responds only when no client can move.

    Useful for driving emulations quickly to their wait points.  Fairness
    within each class is inherited from the round-robin sub-policy.
    """

    def __init__(self) -> None:
        self._inner = RoundRobinScheduler()

    def choose(self, actions: "List[Action]", kernel) -> Action:
        client_steps = [a for a in actions if a.kind is ActionKind.CLIENT]
        if client_steps:
            return self._inner.choose(client_steps, kernel)
        return self._inner.choose(actions, kernel)
