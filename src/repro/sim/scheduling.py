"""Scheduler policies.

A scheduler picks the next action among the allowed ones.  The paper's
liveness definitions are stated over *fair* runs; we provide:

* :class:`RandomScheduler` — seeded uniform choice; probabilistically fair
  and the workhorse for randomized testing.
* :class:`RoundRobinScheduler` — strongly fair: always picks the enabled
  action that has waited longest (never starves anything).
* :class:`ClientPriorityScheduler` — prefers client steps over responds
  (drives computation forward before delivering responses); fair within
  each class.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.sim.kernel import Action, ActionKind


class Scheduler:
    """Interface: choose one action among the allowed ones."""

    def choose(self, actions: "List[Action]", kernel) -> Action:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Seeded uniform random choice among allowed actions."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, actions: "List[Action]", kernel) -> Action:
        return actions[self._rng.randrange(len(actions))]


class RoundRobinScheduler(Scheduler):
    """Strongly fair: pick the allowed action enabled-and-unserved longest.

    Implemented as "least recently executed first": each action key carries
    the step at which it was last chosen (or its first-seen order for fresh
    actions); the minimum wins.  Under this policy every continuously
    allowed action is eventually executed, which realizes the paper's fair
    runs whenever the environment stops vetoing.
    """

    def __init__(self) -> None:
        self._last_pick: "Dict[Action, int]" = {}
        self._first_seen: "Dict[Action, int]" = {}
        self._counter = 0

    def choose(self, actions: "List[Action]", kernel) -> Action:
        self._counter += 1
        for action in actions:
            if action not in self._first_seen:
                self._first_seen[action] = self._counter
        action = min(
            actions,
            key=lambda a: (
                self._last_pick.get(a, -1),
                self._first_seen[a],
            ),
        )
        self._last_pick[action] = self._counter
        return action


class ClientPriorityScheduler(Scheduler):
    """Prefer client steps; deliver responds only when no client can move.

    Useful for driving emulations quickly to their wait points.  Fairness
    within each class is inherited from the round-robin sub-policy.
    """

    def __init__(self) -> None:
        self._inner = RoundRobinScheduler()

    def choose(self, actions: "List[Action]", kernel) -> Action:
        client_steps = [a for a in actions if a.kind is ActionKind.CLIENT]
        if client_steps:
            return self._inner.choose(client_steps, kernel)
        return self._inner.choose(actions, kernel)
