"""The grid engine: run experiment cells serially or on a process pool.

Execution paths:

* :func:`execute_cell` — run one cell in-process, consulting an optional
  :class:`~repro.exec.cache.ResultCache` first.  This is the exact code
  pool workers run, and also what :func:`repro.experiments.run_experiment`
  routes through, so every entry point executes experiments identically.
* :func:`run_cells` — run many cells.  ``jobs <= 1`` loops in-process;
  ``jobs > 1`` fans the cache misses out to a ``ProcessPoolExecutor``,
  streams per-cell progress (simulated steps, steps/sec, wall-clock) as
  futures complete, and survives worker crashes: when the pool breaks,
  the unfinished cells are re-run one-per-fresh-pool so the crashing
  cell is identified and marked failed while innocent bystanders still
  complete.
* :func:`run_experiment_grid` — expand + run + merge for one experiment
  (the CLI's path): shardable sweeps fan out across their axis and the
  per-cell row blocks are concatenated back in axis order, making the
  parallel table byte-identical to the serial one.

Everything crossing the process boundary is plain data: cells are frozen
dataclasses of primitives and results travel as ``to_dict()`` payloads
(workers are told nothing about live kernels — that is the point of
:class:`~repro.core.emulation.EmulationSpec` and friends).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.grid import Cell, expand_experiment

_MP_CONTEXT: "Optional[multiprocessing.context.BaseContext]"
try:
    # Fork keeps workers identical to the parent (same registry state,
    # including experiments registered at runtime) and skips re-import.
    _MP_CONTEXT = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover — non-POSIX platforms
    _MP_CONTEXT = None

#: outcome states a cell can end in.
OK, CACHED, FAILED = "ok", "cached", "failed"


@dataclass
class CellOutcome:
    """What happened to one cell."""

    cell: Cell
    status: str  # OK | CACHED | FAILED
    result: Any = None  # ExperimentResult on OK/CACHED, else None
    error: "Optional[str]" = None  # traceback text on FAILED
    steps: int = 0  # kernel steps simulated for this cell
    elapsed: float = 0.0  # wall-clock seconds

    @property
    def steps_per_sec(self) -> float:
        return self.steps / self.elapsed if self.elapsed > 0 else 0.0

    def describe(self) -> str:
        label = self.cell.describe()
        if self.status == CACHED:
            return f"{label}: cache hit ({self.elapsed * 1000:.0f}ms)"
        if self.status == FAILED:
            reason = (self.error or "").strip().splitlines()
            return f"{label}: FAILED ({reason[-1] if reason else 'unknown'})"
        return (
            f"{label}: {self.steps} steps,"
            f" {self.steps_per_sec:,.0f} steps/s,"
            f" {self.elapsed:.2f}s"
        )


@dataclass
class EngineReport:
    """Aggregate accounting for one :func:`run_cells` invocation."""

    outcomes: "List[CellOutcome]"
    elapsed: float
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def failed(self) -> "List[CellOutcome]":
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def total_steps(self) -> int:
        return sum(o.steps for o in self.outcomes)

    def results(self) -> "List[Any]":
        """The per-cell ExperimentResults, in cell order (failed -> None)."""
        return [o.result for o in self.outcomes]

    def summary(self) -> str:
        return (
            f"engine: cells={len(self.outcomes)}"
            f" hits={self.cache_hits} misses={self.cache_misses}"
            f" failed={len(self.failed)}"
            f" steps={self.total_steps}"
            f" elapsed={self.elapsed:.2f}s"
        )


def _call_experiment(cell: Cell):
    """Invoke the registered experiment for ``cell`` (raises on error)."""
    import inspect

    from repro.experiments import get_experiment

    fn = get_experiment(cell.experiment_id)
    kwargs = cell.kwargs
    if cell.seed is not None:
        if "seed" in inspect.signature(fn).parameters:
            kwargs["seed"] = cell.seed
    return fn(**kwargs)


def execute_cell(
    cell: Cell,
    cache: "Optional[ResultCache]" = None,
    refresh: bool = False,
) -> CellOutcome:
    """Run one cell in-process; raises whatever the experiment raises.

    With a cache: a fresh entry short-circuits the run entirely (zero
    kernel steps simulated); misses — or ``refresh=True`` — run the
    experiment and persist the result.
    """
    from repro.sim.kernel import steps_simulated

    if cache is not None and not refresh:
        payload = cache.load(cell)
        if payload is not None:
            from repro.experiments import ExperimentResult

            return CellOutcome(
                cell,
                CACHED,
                result=ExperimentResult.from_dict(payload["result"]),
            )
    start = time.perf_counter()
    steps_before = steps_simulated()
    result = _call_experiment(cell)
    steps = steps_simulated() - steps_before
    elapsed = time.perf_counter() - start
    if result.seed is None and cell.seed is not None:
        result.seed = cell.seed
    if cache is not None:
        cache.store(
            cell,
            {
                "result": result.to_dict(),
                "steps": steps,
                "elapsed": elapsed,
                "cell": cell.describe(),
            },
        )
    return CellOutcome(cell, OK, result=result, steps=steps, elapsed=elapsed)


def run_cell_payload(cell: Cell) -> "Dict[str, Any]":
    """Run a cell, return a plain-data payload (never raises normally).

    The body both pool workers and queue workers execute: ordinary
    exceptions are caught and shipped back as tracebacks; only a process
    death (crash, ``os._exit``) surfaces to the parent as a broken pool.
    """
    from repro.sim.kernel import steps_simulated

    start = time.perf_counter()
    steps_before = steps_simulated()
    try:
        result = _call_experiment(cell)
    except BaseException:  # noqa: BLE001 — shipped to the parent verbatim
        return {
            "ok": False,
            "error": traceback.format_exc(),
            "elapsed": time.perf_counter() - start,
        }
    if result.seed is None and cell.seed is not None:
        result.seed = cell.seed
    return {
        "ok": True,
        "result": result.to_dict(),
        "steps": steps_simulated() - steps_before,
        "elapsed": time.perf_counter() - start,
    }


def _outcome_from_payload(cell: Cell, payload: "Dict[str, Any]") -> CellOutcome:
    from repro.experiments import ExperimentResult

    if not payload["ok"]:
        return CellOutcome(
            cell,
            FAILED,
            error=payload["error"],
            elapsed=payload.get("elapsed", 0.0),
        )
    return CellOutcome(
        cell,
        OK,
        result=ExperimentResult.from_dict(payload["result"]),
        steps=payload.get("steps", 0),
        elapsed=payload.get("elapsed", 0.0),
    )


def run_cells(
    cells: "Sequence[Cell]",
    jobs: int = 1,
    cache: "Optional[ResultCache]" = None,
    refresh: bool = False,
    progress: "Optional[Callable[[str], None]]" = None,
) -> EngineReport:
    """Run every cell; outcomes come back in input order regardless of
    completion order, so downstream merging is deterministic."""
    started = time.perf_counter()
    emit = progress or (lambda message: None)
    outcomes: "Dict[int, CellOutcome]" = {}

    # Serve what we can from the cache up front (hits skip the pool).
    pending: "List[int]" = []
    for index, cell in enumerate(cells):
        if cache is not None and not refresh:
            payload = cache.load(cell)
            if payload is not None:
                from repro.experiments import ExperimentResult

                outcomes[index] = CellOutcome(
                    cell,
                    CACHED,
                    result=ExperimentResult.from_dict(payload["result"]),
                )
                emit(outcomes[index].describe())
                continue
        pending.append(index)

    if jobs <= 1:
        for index in pending:
            outcomes[index] = _run_inline(cells[index], cache)
            emit(outcomes[index].describe())
    else:
        _run_pool(cells, pending, jobs, outcomes, emit)
        if cache is not None:
            for index in pending:
                outcome = outcomes[index]
                if outcome.status == OK:
                    cache.store(
                        outcome.cell,
                        {
                            "result": outcome.result.to_dict(),
                            "steps": outcome.steps,
                            "elapsed": outcome.elapsed,
                            "cell": outcome.cell.describe(),
                        },
                    )

    report = EngineReport(
        outcomes=[outcomes[i] for i in range(len(cells))],
        elapsed=time.perf_counter() - started,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
    emit(report.summary())
    return report


def _run_inline(cell: Cell, cache: "Optional[ResultCache]") -> CellOutcome:
    start = time.perf_counter()
    try:
        # refresh already resolved by the caller: a pending cell was a miss.
        return execute_cell(cell, cache=cache, refresh=True)
    except Exception:  # noqa: BLE001 — grid mode marks and continues
        return CellOutcome(
            cell,
            FAILED,
            error=traceback.format_exc(),
            elapsed=time.perf_counter() - start,
        )


def _run_pool(
    cells: "Sequence[Cell]",
    pending: "List[int]",
    jobs: int,
    outcomes: "Dict[int, CellOutcome]",
    emit: "Callable[[str], None]",
) -> None:
    """Fan ``pending`` out to a pool; isolate survivors of a pool break."""
    unfinished: "List[int]" = []
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=_MP_CONTEXT
        ) as pool:
            futures = {
                pool.submit(run_cell_payload, cells[index]): index for index in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    unfinished.append(index)
                    continue
                outcomes[index] = _outcome_from_payload(cells[index], payload)
                emit(outcomes[index].describe())
    except BrokenProcessPool:
        unfinished = [i for i in pending if i not in outcomes]

    # A worker died mid-run and took the pool with it.  Every unfinished
    # cell gets one isolated single-worker pool: the innocent ones finish
    # normally, the crashing one breaks only its own pool and is marked
    # failed — the grid completes either way.
    for index in sorted(set(unfinished)):
        cell = cells[index]
        start = time.perf_counter()
        try:
            with ProcessPoolExecutor(
                max_workers=1, mp_context=_MP_CONTEXT
            ) as solo:
                payload = solo.submit(run_cell_payload, cell).result()
            outcomes[index] = _outcome_from_payload(cell, payload)
        except BrokenProcessPool:
            outcomes[index] = CellOutcome(
                cell,
                FAILED,
                error="worker process crashed (pool broken)",
                elapsed=time.perf_counter() - start,
            )
        emit(outcomes[index].describe())


def merge_results(results: "Sequence[Any]"):
    """Concatenate sharded sweep results back into one table.

    ``results`` must be in cell (axis) order; ``None`` entries (failed
    cells) are skipped.  Title/headers/notes come from the first shard,
    so merging the shards of :func:`expand_experiment` reproduces the
    unsharded experiment's rendering byte-for-byte when nothing failed.
    """
    from repro.errors import NoMergeableResults
    from repro.experiments import ExperimentResult

    survivors = [r for r in results if r is not None]
    if not survivors:
        raise NoMergeableResults("no successful cells to merge")
    first = survivors[0]
    if len(survivors) == 1 and len(results) == 1:
        return first
    return ExperimentResult(
        experiment_id=first.experiment_id,
        title=first.title,
        headers=list(first.headers),
        rows=[row for result in survivors for row in result.rows],
        notes=first.notes,
        seed=first.seed,
    )


def run_experiment_grid(
    experiment_id: str,
    kwargs: "Optional[Mapping[str, Any]]" = None,
    seed: "Optional[int]" = None,
    jobs: int = 1,
    cache: "Optional[ResultCache]" = None,
    refresh: bool = False,
    progress: "Optional[Callable[[str], None]]" = None,
    backend: str = "local",
    queue_path: "Optional[Any]" = None,
):
    """Expand one experiment into cells, run them, merge the shards.

    Returns ``(merged ExperimentResult, EngineReport)``.  Raises
    :class:`~repro.errors.GridFailed` (a ``RuntimeError``) if every
    cell failed; partial failures merge the surviving shards and are
    visible in the report.

    ``backend`` picks the execution substrate: ``"local"`` is the
    serial/``jobs`` pool path above; ``"queue"`` enqueues the cells
    into a shared experiment table (``queue_path``, an
    :class:`~repro.exec.queue.SqliteQueue` file — a private temporary
    one when omitted) and drains it with an in-process
    :class:`~repro.exec.queue.QueueWorker`.  All three routes produce
    byte-identical merged tables.
    """
    from repro.errors import GridFailed, InvalidConfig, NoMergeableResults

    cells = expand_experiment(experiment_id, kwargs, seed)
    if backend == "local":
        report = run_cells(
            cells, jobs=jobs, cache=cache, refresh=refresh, progress=progress
        )
    elif backend == "queue":
        report = _run_cells_queued(
            cells,
            queue_path=queue_path,
            cache=cache,
            refresh=refresh,
            progress=progress,
        )
    else:
        raise InvalidConfig(
            f"unknown grid backend {backend!r}; known: local, queue"
        )
    try:
        merged = merge_results(report.results())
    except NoMergeableResults:
        errors = "\n".join(
            outcome.describe() for outcome in report.failed
        )
        raise GridFailed(
            f"every cell of {experiment_id!r} failed:\n{errors}"
        ) from None
    return merged, report


def _run_cells_queued(
    cells: "Sequence[Cell]",
    queue_path: "Optional[Any]" = None,
    cache: "Optional[ResultCache]" = None,
    refresh: bool = False,
    progress: "Optional[Callable[[str], None]]" = None,
) -> EngineReport:
    """Drain ``cells`` through a shared experiment table."""
    import tempfile

    from repro.exec.queue import SqliteQueue, run_cells_via_queue

    if queue_path is None:
        # A private single-run table: exercises the full queue protocol
        # (enqueue, CAS claims, write-back) with no shared path needed.
        with tempfile.TemporaryDirectory(prefix="repro-queue-") as tmp:
            backend = SqliteQueue(f"{tmp}/queue.sqlite")
            try:
                return run_cells_via_queue(
                    cells,
                    backend,
                    cache=cache,
                    refresh=refresh,
                    progress=progress,
                )
            finally:
                backend.close()
    backend = SqliteQueue(queue_path)
    try:
        return run_cells_via_queue(
            cells, backend, cache=cache, refresh=refresh, progress=progress
        )
    finally:
        backend.close()
