"""The distributed experiment queue: shared-table sweeps.

PR 2's engine parallelizes one box; this package parallelizes *boxes*.
A grid is enqueued once into a shared experiment table — one row per
:class:`~repro.exec.grid.Cell`, identified by the same content-hash key
the local :class:`~repro.exec.cache.ResultCache` uses — and any number
of workers on any machine run a claim/execute/write-back loop against
it (py_experimenter's model, adapted to our content-addressed cells):

* :mod:`repro.exec.queue.backend` — the row model
  (:class:`QueueCell`, ``open|claimed|done|failed``) and the
  :class:`QueueBackend` protocol every store implements.
* :mod:`repro.exec.queue.sqlite` — :class:`SqliteQueue`: the
  shared-file deployment story (atomic CAS claims over one database
  file on a shared path).
* :mod:`repro.exec.queue.worker` — :class:`QueueWorker`: the loop,
  with heartbeat renewal, code-version refusal
  (:class:`~repro.errors.CodeVersionMismatch`), stolen-claim detection
  (:class:`~repro.errors.CellClaimLost`) and local-cache write-through.
* :mod:`repro.exec.queue.export` — per-experiment merge in enqueue
  order plus ``table|csv|md|latex`` renderers (also backing the
  ``--export`` flag of local runs) and a pandas bridge.

The CLI face is ``repro queue create|work|status|reset|export``;
programmatically, ``run_experiment_grid(..., backend="queue")`` routes
a grid through a queue and returns the identical merged table.
"""

from repro.exec.queue.backend import (
    CLAIMED,
    DONE,
    FAILED,
    OPEN,
    STATUSES,
    QueueBackend,
    QueueCell,
    QueueStatus,
    cell_to_row,
)
from repro.exec.queue.export import (
    EXPORT_FORMATS,
    export_queue,
    merged_queue_results,
    render_csv,
    render_export,
    render_latex,
    render_markdown,
    to_dataframe,
)
from repro.exec.queue.sqlite import SqliteQueue
from repro.exec.queue.worker import (
    QueueWorker,
    WorkerReport,
    default_worker_id,
    enqueue_cells,
    run_cells_via_queue,
)

__all__ = [
    "CLAIMED",
    "DONE",
    "EXPORT_FORMATS",
    "FAILED",
    "OPEN",
    "STATUSES",
    "QueueBackend",
    "QueueCell",
    "QueueStatus",
    "QueueWorker",
    "SqliteQueue",
    "WorkerReport",
    "cell_to_row",
    "default_worker_id",
    "enqueue_cells",
    "export_queue",
    "merged_queue_results",
    "render_csv",
    "render_export",
    "render_latex",
    "render_markdown",
    "run_cells_via_queue",
    "to_dataframe",
]
