"""Result export: one ExperimentResult, four formats (and a DataFrame).

``table`` is byte-identical to :meth:`ExperimentResult.render` — the
format every CLI command has always printed — so a drained queue's
``repro queue export`` output can be ``cmp``-ed against a serial
``repro sweep`` run.  ``csv`` is data-only (headers + rows, for
spreadsheets and pandas), ``md`` is a GitHub-flavored pipe table, and
``latex`` is a ready-to-``\\input`` tabular.  Cells are stringified
exactly the way the ASCII renderer does, so every format agrees on the
content.

The same functions back the ``--export`` flag of ``repro sweep`` /
``repro experiment`` — local runs and distributed queues share one
exporter.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import QueueError
from repro.exec.queue.backend import CLAIMED, DONE, OPEN, QueueBackend

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.experiments import ExperimentResult

#: formats accepted by :func:`render_export` and the CLI flags.
EXPORT_FORMATS = ("table", "csv", "md", "latex")


def result_cells(
    result: "ExperimentResult",
) -> "Tuple[List[str], List[List[str]]]":
    """Headers and rows, stringified the way the ASCII renderer does."""
    headers = [str(header) for header in result.headers]
    rows = [[str(cell) for cell in row] for row in result.rows]
    return headers, rows


def render_csv(result: "ExperimentResult") -> str:
    """Data-only CSV: one header row, then the table rows."""
    headers, rows = result_cells(result)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue().rstrip("\n")


def render_markdown(result: "ExperimentResult") -> str:
    """A GitHub-flavored pipe table, title bolded above, notes below."""
    headers, rows = result_cells(result)
    escape = [
        [cell.replace("|", "\\|") for cell in row]
        for row in [headers] + rows
    ]
    lines = []
    if result.title:
        lines.append(f"**{result.title}**")
        lines.append("")
    lines.append("| " + " | ".join(escape[0]) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in escape[1:]:
        lines.append("| " + " | ".join(row) + " |")
    if result.notes:
        lines.append("")
        lines.append(result.notes)
    return "\n".join(lines)


_LATEX_SPECIALS = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def _latex_escape(text: str) -> str:
    return "".join(_LATEX_SPECIALS.get(ch, ch) for ch in text)


def render_latex(result: "ExperimentResult") -> str:
    """A plain ``tabular`` (left-aligned columns, hline rules)."""
    headers, rows = result_cells(result)
    lines = []
    if result.title:
        lines.append(f"% {result.title}")
    lines.append(r"\begin{tabular}{" + "l" * len(headers) + "}")
    lines.append(r"\hline")
    lines.append(
        " & ".join(_latex_escape(header) for header in headers) + r" \\"
    )
    lines.append(r"\hline")
    for row in rows:
        lines.append(" & ".join(_latex_escape(cell) for cell in row) + r" \\")
    lines.append(r"\hline")
    lines.append(r"\end{tabular}")
    if result.notes:
        for note_line in result.notes.splitlines():
            lines.append(f"% {note_line}")
    return "\n".join(lines)


def render_export(result: "ExperimentResult", fmt: str) -> str:
    """One result in one format (see :data:`EXPORT_FORMATS`)."""
    if fmt == "table":
        return result.render()
    if fmt == "csv":
        return render_csv(result)
    if fmt == "md":
        return render_markdown(result)
    if fmt == "latex":
        return render_latex(result)
    raise QueueError(
        f"unknown export format {fmt!r};"
        f" known: {', '.join(EXPORT_FORMATS)}"
    )


def to_dataframe(result: "ExperimentResult") -> Any:
    """The result as a ``pandas.DataFrame`` (typed error when pandas is
    not installed — the queue itself never needs it)."""
    try:
        import pandas
    except ImportError:
        raise QueueError(
            "exporting to a DataFrame needs pandas, which is not"
            " installed; use render_csv() and read the CSV instead"
        ) from None
    return pandas.DataFrame(
        list(result.rows), columns=list(result.headers)
    )


# ---------------------------------------------------------------------------
# Queue-level export


def merged_queue_results(
    backend: QueueBackend, partial: bool = False
) -> "List[ExperimentResult]":
    """Merge a drained queue back into per-experiment result tables.

    Rows merge in enqueue (cell_index) order — the exact order the grid
    expanded in — so the merged rendering is byte-identical to the
    serial engine's.  A queue with OPEN/CLAIMED cells refuses to export
    (the table would silently miss rows); ``partial=True`` exports
    whatever is DONE, mirroring the engine's partial-failure merge.
    """
    from repro.exec.engine import merge_results
    from repro.experiments import ExperimentResult

    rows = backend.rows()
    if not rows:
        raise QueueError("the queue is empty; nothing to export")
    unfinished = [r for r in rows if r.status in (OPEN, CLAIMED)]
    if unfinished and not partial:
        raise QueueError(
            f"{len(unfinished)} cell(s) still open or claimed; drain the"
            " queue (repro queue work) or export --partial"
        )
    order: "List[str]" = []
    grouped: "Dict[str, List[Optional[ExperimentResult]]]" = {}
    for row in rows:
        if row.experiment_id not in grouped:
            grouped[row.experiment_id] = []
            order.append(row.experiment_id)
        archive = row.result_payload()
        grouped[row.experiment_id].append(
            ExperimentResult.from_dict(archive["result"])
            if row.status == DONE and archive is not None
            else None
        )
    merged = []
    for experiment_id in order:
        merged.append(merge_results(grouped[experiment_id]))
    return merged


def export_queue(
    backend: QueueBackend, fmt: str = "table", partial: bool = False
) -> str:
    """Every experiment in the queue, rendered in ``fmt`` (tables are
    separated by a blank line, matching ``repro experiment --all``)."""
    results = merged_queue_results(backend, partial=partial)
    return "\n\n".join(render_export(result, fmt) for result in results)
