"""SQLite implementation of the shared experiment table.

One database file on a shared path (NFS mount, shared volume, or just a
local directory for single-box multi-process runs) is the whole
deployment story: every worker opens the same file, and SQLite's
file-level locking plus single-statement ``UPDATE ... WHERE status=?``
transitions give us the atomic claims the protocol demands.

Concurrency notes:

* The connection is opened in autocommit mode; every single-statement
  mutation is atomic on its own, and the multi-statement operations
  (:meth:`reset`) take ``BEGIN IMMEDIATE`` so the select-then-update
  pair holds the write lock throughout.
* ``busy_timeout`` makes concurrent writers queue instead of erroring.
* WAL journaling is attempted (readers don't block the writer on local
  disks) but failure to switch is tolerated — some network filesystems
  refuse WAL, and rollback journaling is still correct there.
* One connection may be shared across threads (the worker's heartbeat
  thread renews through the same handle): an internal lock serializes
  statements.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.errors import CellClaimLost, QueueError
from repro.exec.queue.backend import (
    CLAIMED,
    DONE,
    FAILED,
    OPEN,
    STATUSES,
    QueueBackend,
    QueueCell,
    QueueStatus,
)

#: bump on schema changes; a mismatched file refuses to open.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS queue_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    cell_id       TEXT PRIMARY KEY,
    cell_index    INTEGER NOT NULL,
    experiment_id TEXT NOT NULL,
    params_json   TEXT NOT NULL,
    seed          INTEGER,
    code_version  TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'open',
    owner         TEXT,
    heartbeat     REAL,
    claimed_at    REAL,
    finished_at   REAL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    steps         INTEGER NOT NULL DEFAULT 0,
    elapsed       REAL NOT NULL DEFAULT 0.0,
    result_json   TEXT,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS cells_status_index
    ON cells (status, cell_index);
"""

_COLUMNS = (
    "cell_id, cell_index, experiment_id, params_json, seed, code_version,"
    " status, owner, heartbeat, claimed_at, finished_at, attempts, steps,"
    " elapsed, result_json, error"
)


def _row_to_cell(row: "Tuple[Any, ...]") -> QueueCell:
    return QueueCell(
        cell_id=row[0],
        index=row[1],
        experiment_id=row[2],
        params_json=row[3],
        seed=row[4],
        code_version=row[5],
        status=row[6],
        owner=row[7],
        heartbeat=row[8],
        claimed_at=row[9],
        finished_at=row[10],
        attempts=row[11],
        steps=row[12],
        elapsed=row[13],
        result_json=row[14],
        error=row[15],
    )


class SqliteQueue(QueueBackend):
    """The shared experiment table over one SQLite file."""

    def __init__(
        self,
        path: "Union[str, os.PathLike]",
        busy_timeout: float = 30.0,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # check_same_thread=False + _lock: the heartbeat thread shares
        # this handle (each statement is serialized below).
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=busy_timeout,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
        )
        self._lock = threading.Lock()
        with self._lock:
            self._conn.execute(
                f"PRAGMA busy_timeout = {int(busy_timeout * 1000)}"
            )
            try:
                self._conn.execute("PRAGMA journal_mode = WAL")
            except sqlite3.OperationalError:  # pragma: no cover — odd FS
                pass
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO queue_meta (key, value)"
                " VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            cursor = self._conn.execute(
                "SELECT value FROM queue_meta WHERE key = 'schema_version'"
            )
            found = int(cursor.fetchone()[0])
        if found != SCHEMA_VERSION:
            raise QueueError(
                f"queue file {self.path} has schema version {found};"
                f" this build speaks {SCHEMA_VERSION}"
            )

    # -- primitives -----------------------------------------------------

    def enqueue(self, rows: "Sequence[QueueCell]") -> int:
        added = 0
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for row in rows:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO cells"
                        " (cell_id, cell_index, experiment_id, params_json,"
                        "  seed, code_version, status)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            row.cell_id,
                            row.index,
                            row.experiment_id,
                            row.params_json,
                            row.seed,
                            row.code_version,
                            OPEN,
                        ),
                    )
                    added += cursor.rowcount
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return added

    def next_open(self, limit: int = 1) -> "List[QueueCell]":
        with self._lock:
            cursor = self._conn.execute(
                f"SELECT {_COLUMNS} FROM cells WHERE status = ?"
                " ORDER BY cell_index LIMIT ?",
                (OPEN, limit),
            )
            return [_row_to_cell(row) for row in cursor.fetchall()]

    def try_claim(self, cell_id: str, owner: str, now: float) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE cells SET status = ?, owner = ?, heartbeat = ?,"
                " claimed_at = ?, attempts = attempts + 1, error = NULL"
                " WHERE cell_id = ? AND status = ?",
                (CLAIMED, owner, now, now, cell_id, OPEN),
            )
            return cursor.rowcount == 1

    def renew_heartbeat(self, cell_id: str, owner: str, now: float) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE cells SET heartbeat = ?"
                " WHERE cell_id = ? AND status = ? AND owner = ?",
                (now, cell_id, CLAIMED, owner),
            )
            return cursor.rowcount == 1

    def write_back(
        self,
        cell_id: str,
        owner: str,
        status: str,
        now: float,
        result_json: "Optional[str]" = None,
        error: "Optional[str]" = None,
        steps: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        if status not in (DONE, FAILED):
            raise QueueError(
                f"write_back targets 'done' or 'failed', not {status!r}"
            )
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE cells SET status = ?, finished_at = ?, steps = ?,"
                " elapsed = ?, result_json = ?, error = ?"
                " WHERE cell_id = ? AND status = ? AND owner = ?",
                (
                    status,
                    now,
                    steps,
                    elapsed,
                    result_json,
                    error,
                    cell_id,
                    CLAIMED,
                    owner,
                ),
            )
            if cursor.rowcount == 1:
                return
        row = self.get(cell_id)
        state = (
            f"now {row.status}"
            + (f" (owner {row.owner})" if row.owner else "")
            if row is not None
            else "no longer in the queue"
        )
        raise CellClaimLost(
            f"claim on cell {cell_id[:12]}… was lost before write-back:"
            f" {state}; the result was discarded"
        )

    def reset(
        self,
        stale_before: "Optional[float]" = None,
        failed: bool = False,
        cell_ids: "Optional[Sequence[str]]" = None,
    ) -> "List[str]":
        reopened: "List[str]" = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if stale_before is not None:
                    reopened += self._reset_where(
                        "status = ? AND heartbeat < ?",
                        (CLAIMED, stale_before),
                    )
                if failed:
                    reopened += self._reset_where("status = ?", (FAILED,))
                for cell_id in cell_ids or ():
                    reopened += self._reset_where(
                        "cell_id = ? AND status != ?", (cell_id, OPEN)
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return reopened

    def _reset_where(
        self, predicate: str, args: "Tuple[Any, ...]"
    ) -> "List[str]":
        """Reopen rows matching ``predicate`` (caller holds the lock and
        an IMMEDIATE transaction, so select+update cannot race)."""
        cursor = self._conn.execute(
            f"SELECT cell_id FROM cells WHERE {predicate}"
            " ORDER BY cell_index",
            args,
        )
        ids = [row[0] for row in cursor.fetchall()]
        for cell_id in ids:
            self._conn.execute(
                "UPDATE cells SET status = ?, owner = NULL,"
                " heartbeat = NULL, claimed_at = NULL, finished_at = NULL,"
                " steps = 0, elapsed = 0.0, result_json = NULL,"
                " error = NULL"
                " WHERE cell_id = ?",
                (OPEN, cell_id),
            )
        return ids

    # -- reads ----------------------------------------------------------

    def rows(self, status: "Optional[str]" = None) -> "List[QueueCell]":
        query = f"SELECT {_COLUMNS} FROM cells"
        args: "Tuple[Any, ...]" = ()
        if status is not None:
            query += " WHERE status = ?"
            args = (status,)
        query += " ORDER BY cell_index"
        with self._lock:
            cursor = self._conn.execute(query, args)
            return [_row_to_cell(row) for row in cursor.fetchall()]

    def get(self, cell_id: str) -> "Optional[QueueCell]":
        with self._lock:
            cursor = self._conn.execute(
                f"SELECT {_COLUMNS} FROM cells WHERE cell_id = ?",
                (cell_id,),
            )
            row = cursor.fetchone()
        return _row_to_cell(row) if row is not None else None

    def status(self, now: float, ttl: float) -> QueueStatus:
        with self._lock:
            counts = dict(
                self._conn.execute(
                    "SELECT status, COUNT(*) FROM cells GROUP BY status"
                ).fetchall()
            )
            stale = self._conn.execute(
                "SELECT COUNT(*) FROM cells"
                " WHERE status = ? AND heartbeat < ?",
                (CLAIMED, now - ttl),
            ).fetchone()[0]
            experiments = [
                row[0]
                for row in self._conn.execute(
                    "SELECT DISTINCT experiment_id FROM cells"
                    " ORDER BY experiment_id"
                ).fetchall()
            ]
        return QueueStatus(
            counts={status: counts.get(status, 0) for status in STATUSES},
            stale=stale,
            experiments=experiments,
        )

    def close(self) -> None:
        with self._lock:
            self._conn.close()
