"""The queue worker: claim -> execute -> write-back, with heartbeats.

A worker is a loop over the shared table: pick the lowest-index OPEN
row, win it with a compare-and-swap claim, execute the cell with the
exact single-cell code path the local engine uses
(:func:`repro.exec.engine.run_cell_payload`), and CAS the result back.
While a cell executes, a daemon thread renews the claim's heartbeat
through the same backend handle, so a live worker on a slow cell is
distinguishable from a dead one — ``repro queue reset --stale`` only
reopens claims whose heartbeat actually expired.

Workers carry the local :class:`~repro.exec.cache.ResultCache` both
ways: a cell whose result is already cached locally is written back
without simulating a step, and every executed result is stored locally
on write-back — after a distributed sweep finishes, *each* worker's
cache replays its share with zero kernel steps, and any box that runs
``repro queue export`` holds the full table.

Version safety: every row records the exec-engine code fingerprint it
was enqueued under (:func:`~repro.exec.cache.experiment_code_version`).
A worker whose checkout fingerprints differently refuses to claim the
row with :class:`~repro.errors.CodeVersionMismatch` — the distributed
mirror of the cache's versioned keys, so a stale worker can never write
a stale result into a fresh table.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CellClaimLost, CodeVersionMismatch, QueueError
from repro.exec.cache import ResultCache, cell_key, experiment_code_version
from repro.exec.grid import Cell
from repro.exec.queue.backend import (
    DONE,
    FAILED,
    QueueBackend,
    QueueCell,
    cell_to_row,
)

#: how many OPEN rows a worker reads per claim attempt; losing a CAS
#: race falls through to the next candidate instead of re-querying.
CLAIM_BATCH = 8


def default_worker_id() -> str:
    """hostname-pid: unique across the boxes sharing one queue file."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerReport:
    """What one :meth:`QueueWorker.run` invocation did."""

    worker_id: str
    claimed: int = 0
    done: int = 0
    failed: int = 0
    lost: int = 0  # claims stolen before write-back (results discarded)
    cache_hits: int = 0  # cells served from the local ResultCache
    steps: int = 0
    elapsed: float = 0.0
    outcomes: "Dict[str, object]" = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"worker {self.worker_id}: claimed={self.claimed}"
            f" done={self.done} failed={self.failed} lost={self.lost}"
            f" cache_hits={self.cache_hits} steps={self.steps}"
            f" elapsed={self.elapsed:.2f}s"
        )


class _Heartbeat(threading.Thread):
    """Renews one claim's heartbeat until stopped."""

    def __init__(
        self,
        backend: QueueBackend,
        cell_id: str,
        owner: str,
        interval: float,
        clock: "Callable[[], float]",
    ):
        super().__init__(daemon=True)
        self._backend = backend
        self._cell_id = cell_id
        self._owner = owner
        self._interval = interval
        self._clock = clock
        # not "_stop": Thread.join() calls a private _stop() internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            if not self._backend.renew_heartbeat(
                self._cell_id, self._owner, self._clock()
            ):
                return  # claim gone; write-back will surface the loss

    def stop(self) -> None:
        self._halt.set()
        self.join()


class QueueWorker:
    """One claim/execute/write-back loop over a shared experiment table.

    ``ttl`` is the heartbeat contract: the worker renews every
    ``ttl / 4`` seconds, and anything that stops renewing for ``ttl``
    is fair game for ``reset --stale``.  ``check_version=False`` skips
    the code-fingerprint guard (for tooling that knowingly replays old
    tables).
    """

    def __init__(
        self,
        backend: QueueBackend,
        worker_id: "Optional[str]" = None,
        cache: "Optional[ResultCache]" = None,
        refresh: bool = False,
        ttl: float = 30.0,
        check_version: bool = True,
        progress: "Optional[Callable[[str], None]]" = None,
        clock: "Callable[[], float]" = time.time,
    ):
        if ttl <= 0:
            raise QueueError(f"heartbeat ttl must be positive, got {ttl}")
        self.backend = backend
        self.worker_id = worker_id or default_worker_id()
        self.cache = cache
        self.refresh = refresh
        self.ttl = ttl
        self.check_version = check_version
        self.clock = clock
        self._emit = progress or (lambda message: None)

    # -- the loop -------------------------------------------------------

    def run(self, max_cells: "Optional[int]" = None) -> WorkerReport:
        """Claim and execute cells until the queue has no OPEN rows
        (or ``max_cells`` cells were claimed); returns the tally."""
        report = WorkerReport(worker_id=self.worker_id)
        started = time.perf_counter()
        while max_cells is None or report.claimed < max_cells:
            row = self._claim_one()
            if row is None:
                break
            report.claimed += 1
            self._execute(row, report)
        report.elapsed = time.perf_counter() - started
        self._emit(report.summary())
        return report

    def _claim_one(self) -> "Optional[QueueCell]":
        """Win one OPEN row, or None when none remain."""
        while True:
            candidates = self.backend.next_open(limit=CLAIM_BATCH)
            if not candidates:
                return None
            for row in candidates:
                self._check_version(row)
                if self.backend.try_claim(
                    row.cell_id, self.worker_id, self.clock()
                ):
                    return row
            # Every candidate was claimed between the read and our CAS;
            # re-read — either more rows are open or the queue drained.

    def _check_version(self, row: QueueCell) -> None:
        if not self.check_version:
            return
        local = experiment_code_version(row.experiment_id)
        if local != row.code_version:
            raise CodeVersionMismatch(
                f"cell {row.cell_id[:12]}… of {row.experiment_id!r} was"
                f" enqueued under code version {row.code_version[:12]}…"
                f" but this worker runs {local[:12]}…; update the worker"
                " checkout (or re-create the queue, or pass"
                " --no-version-check to knowingly ignore the skew)"
            )

    def _execute(self, row: QueueCell, report: WorkerReport) -> None:
        from repro.exec.engine import CACHED, OK, run_cell_payload

        cell = row.cell()
        payload: "Optional[dict]" = None
        from_cache = False
        if self.cache is not None and not self.refresh:
            archived = self.cache.load(cell)
            if archived is not None:
                payload = {
                    "ok": True,
                    "result": archived["result"],
                    "steps": 0,
                    "elapsed": 0.0,
                }
                from_cache = True
        if payload is None:
            heartbeat = _Heartbeat(
                self.backend,
                row.cell_id,
                self.worker_id,
                interval=max(self.ttl / 4.0, 0.05),
                clock=self.clock,
            )
            heartbeat.start()
            try:
                payload = run_cell_payload(cell)
            finally:
                heartbeat.stop()
        try:
            self._write_back(row, cell, payload, from_cache)
        except CellClaimLost as error:
            report.lost += 1
            self._emit(f"{cell.describe()}: {error}")
            return
        if payload["ok"]:
            report.done += 1
            report.steps += payload.get("steps", 0)
            if from_cache:
                report.cache_hits += 1
            status, error_text = (CACHED if from_cache else OK), None
        else:
            report.failed += 1
            status, error_text = FAILED, payload["error"]
        from repro.exec.engine import CellOutcome

        outcome = CellOutcome(
            cell,
            status,
            result=self._result_of(payload),
            error=error_text,
            steps=payload.get("steps", 0),
            elapsed=payload.get("elapsed", 0.0),
        )
        report.outcomes[row.cell_id] = outcome
        self._emit(outcome.describe())

    def _write_back(
        self,
        row: QueueCell,
        cell: Cell,
        payload: dict,
        from_cache: bool,
    ) -> None:
        """CAS the outcome into the table; mirror successes into the
        local cache so this box replays the cell with zero steps."""
        now = self.clock()
        if payload["ok"]:
            archive = {
                "result": payload["result"],
                "steps": payload.get("steps", 0),
                "elapsed": payload.get("elapsed", 0.0),
                "cell": cell.describe(),
            }
            self.backend.write_back(
                row.cell_id,
                self.worker_id,
                DONE,
                now,
                result_json=json.dumps(archive, sort_keys=True),
                steps=payload.get("steps", 0),
                elapsed=payload.get("elapsed", 0.0),
            )
            if self.cache is not None and not from_cache:
                self.cache.store(cell, archive)
        else:
            self.backend.write_back(
                row.cell_id,
                self.worker_id,
                FAILED,
                now,
                error=payload["error"],
                elapsed=payload.get("elapsed", 0.0),
            )

    def _result_of(self, payload: dict):
        if not payload["ok"]:
            return None
        from repro.experiments import ExperimentResult

        return ExperimentResult.from_dict(payload["result"])


# ---------------------------------------------------------------------------
# Enqueue + in-process drain (the engine's backend="queue" path)


def enqueue_cells(
    backend: QueueBackend, cells: "Sequence[Cell]"
) -> int:
    """Append ``cells`` as OPEN rows (idempotent: present ids are kept).

    Rows are numbered after the existing tail, so a queue fed several
    grids exports each one's cells in its own enqueue order.
    """
    existing = backend.rows()
    base = (max(row.index for row in existing) + 1) if existing else 0
    rows = []
    seen = {row.cell_id for row in existing}
    for cell in cells:
        row = cell_to_row(
            cell,
            base + len(rows),
            experiment_code_version(cell.experiment_id),
        )
        if row.cell_id in seen:
            continue
        seen.add(row.cell_id)
        rows.append(row)
    return backend.enqueue(rows)


def run_cells_via_queue(
    cells: "Sequence[Cell]",
    backend: QueueBackend,
    cache: "Optional[ResultCache]" = None,
    refresh: bool = False,
    progress: "Optional[Callable[[str], None]]" = None,
    worker: "Optional[QueueWorker]" = None,
    poll: float = 0.2,
    drain_timeout: "Optional[float]" = None,
):
    """Enqueue ``cells``, drain the queue in-process, report like
    :func:`repro.exec.engine.run_cells`.

    Cells another worker already finished come back ``cached`` (their
    archived result is read straight off the table); cells claimed by a
    *live* foreign worker are waited on until the queue drains (bounded
    by ``drain_timeout``).  The outcome list is in input-cell order, so
    the merged table is byte-identical to the serial engine's.
    """
    from repro.exec.engine import CACHED, CellOutcome, EngineReport
    from repro.experiments import ExperimentResult

    started = time.perf_counter()
    enqueue_cells(backend, cells)
    if worker is None:
        worker = QueueWorker(
            backend, cache=cache, refresh=refresh, progress=progress
        )
    report = worker.run()

    deadline = (
        None if drain_timeout is None else time.monotonic() + drain_timeout
    )
    while not backend.drained():
        if deadline is not None and time.monotonic() > deadline:
            raise QueueError(
                "queue did not drain within the timeout; another worker"
                " holds a claim (reset stale claims with"
                " `repro queue reset --stale`)"
            )
        time.sleep(poll)
        extra = worker.run()  # stale resets may have reopened rows
        for key, outcome in extra.outcomes.items():
            report.outcomes.setdefault(key, outcome)

    by_id = {row.cell_id: row for row in backend.rows()}
    outcomes: "List[CellOutcome]" = []
    for cell in cells:
        key = cell_key(cell, experiment_code_version(cell.experiment_id))
        ours = report.outcomes.get(key)
        if ours is not None:
            outcomes.append(ours)  # type: ignore[arg-type]
            continue
        row = by_id.get(key)
        if row is None:
            raise QueueError(
                f"cell {cell.describe()} vanished from the queue"
            )
        archive = row.result_payload()
        if row.status == DONE and archive is not None:
            outcomes.append(
                CellOutcome(
                    cell,
                    CACHED,
                    result=ExperimentResult.from_dict(archive["result"]),
                    steps=0,
                    elapsed=0.0,
                )
            )
        else:
            outcomes.append(
                CellOutcome(
                    cell,
                    FAILED,
                    error=row.error or f"cell ended {row.status}",
                    elapsed=row.elapsed,
                )
            )
    return EngineReport(
        outcomes=outcomes,
        elapsed=time.perf_counter() - started,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
