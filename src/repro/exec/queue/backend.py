"""The shared experiment table: row model and backend protocol.

A queue is a table with one row per :class:`~repro.exec.grid.Cell`.
Rows are identified by the cell's content hash — the *same* key the
local :class:`~repro.exec.cache.ResultCache` uses — so a finished
distributed sweep doubles as a portable result archive, and a worker
that already holds a cell's result locally can write it back without
re-running anything.

The row lifecycle is ``open -> claimed -> done | failed``; ``reset``
moves ``failed`` rows (and ``claimed`` rows whose owner stopped
heartbeating) back to ``open``.  Every transition is a compare-and-swap
predicated on the *current* status (and, past the claim, on the owner),
so two workers racing for one cell resolve to exactly one winner and a
worker whose claim was stolen by a reset cannot overwrite the thief's
result — it gets :class:`~repro.errors.CellClaimLost` instead.

:class:`QueueBackend` is the seam other stores plug into (MySQL /
postgres later); :class:`~repro.exec.queue.sqlite.SqliteQueue` is the
shared-file implementation everything ships with.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.grid import Cell

#: row lifecycle states.
OPEN, CLAIMED, DONE, FAILED = "open", "claimed", "done", "failed"

#: every state, in lifecycle order (status displays follow this order).
STATUSES = (OPEN, CLAIMED, DONE, FAILED)


@dataclass
class QueueCell:
    """One row of the shared experiment table."""

    cell_id: str  # content hash == the ResultCache key
    index: int  # enqueue position: the deterministic merge order
    experiment_id: str
    params_json: str  # JSON object of the cell's kwargs (no seed)
    seed: "Optional[int]"
    code_version: str  # exec-engine fingerprint at enqueue time
    status: str = OPEN
    owner: "Optional[str]" = None
    heartbeat: "Optional[float]" = None  # unix time of the last renewal
    claimed_at: "Optional[float]" = None
    finished_at: "Optional[float]" = None
    attempts: int = 0  # successful claims so far
    steps: int = 0  # kernel steps the executing worker simulated
    elapsed: float = 0.0  # wall-clock seconds of the execution
    result_json: "Optional[str]" = None  # ExperimentResult.to_dict JSON
    error: "Optional[str]" = None  # traceback text on FAILED

    def cell(self) -> Cell:
        """Rebuild the engine cell this row was enqueued from.

        ``Cell.make`` re-freezes the JSON-decoded params (lists become
        tuples again), so the rebuilt cell hashes to the same
        :func:`~repro.exec.cache.cell_key` the row was enqueued under.
        """
        return Cell.make(
            self.experiment_id, json.loads(self.params_json), self.seed
        )

    def result_payload(self) -> "Optional[Dict[str, Any]]":
        """The archived result payload (cache-shaped), if DONE."""
        if self.result_json is None:
            return None
        payload: "Dict[str, Any]" = json.loads(self.result_json)
        return payload

    def describe(self) -> str:
        label = self.cell().describe()
        extra = f" [{self.status}"
        if self.owner:
            extra += f" by {self.owner}"
        return f"{label}{extra}]"


def cell_to_row(
    cell: Cell, index: int, code_version: str
) -> QueueCell:
    """Build the OPEN row for one engine cell.

    The params must survive a JSON round trip (the queue ships them to
    workers on other machines as text); cells built from CLI-style
    primitives always do.
    """
    from repro.errors import InvalidConfig
    from repro.exec.cache import cell_key

    try:
        params_json = json.dumps(cell.kwargs, sort_keys=True)
    except TypeError as error:
        raise InvalidConfig(
            f"queue cells need JSON-representable params;"
            f" {cell.describe()} does not round-trip: {error}"
        ) from None
    rebuilt = Cell.make(cell.experiment_id, json.loads(params_json), cell.seed)
    if rebuilt != cell:
        raise InvalidConfig(
            f"cell params do not survive a JSON round trip:"
            f" {cell.describe()} != {rebuilt.describe()}"
        )
    return QueueCell(
        cell_id=cell_key(cell, code_version),
        index=index,
        experiment_id=cell.experiment_id,
        params_json=params_json,
        seed=cell.seed,
        code_version=code_version,
    )


@dataclass
class QueueStatus:
    """Aggregate view of a queue (``repro queue status``)."""

    counts: "Dict[str, int]" = field(default_factory=dict)
    stale: int = 0  # claimed rows whose heartbeat expired
    experiments: "List[str]" = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def remaining(self) -> int:
        return self.counts.get(OPEN, 0) + self.counts.get(CLAIMED, 0)

    def summary(self) -> str:
        parts = [
            f"{status}={self.counts.get(status, 0)}" for status in STATUSES
        ]
        return (
            f"queue: cells={self.total} {' '.join(parts)}"
            f" stale={self.stale}"
            f" experiments={','.join(self.experiments) or '-'}"
        )


class QueueBackend:
    """Protocol of the shared experiment table.

    Implementations must make :meth:`try_claim` and :meth:`write_back`
    atomic compare-and-swap transitions (one conditional ``UPDATE``),
    because they are the only thing standing between two workers and a
    double-executed cell.  Reads may be stale; CAS failures are the
    truth.

    This is a plain base class rather than ``typing.Protocol`` so the
    shared helpers (:meth:`drained`) ride along; backends override the
    primitives.
    """

    def enqueue(self, rows: "Sequence[QueueCell]") -> int:
        """Insert rows, ignoring cell_ids already present; count added."""
        raise NotImplementedError

    def next_open(self, limit: int = 1) -> "List[QueueCell]":
        """Up to ``limit`` OPEN rows in index order (claim candidates)."""
        raise NotImplementedError

    def try_claim(self, cell_id: str, owner: str, now: float) -> bool:
        """CAS ``open -> claimed`` for ``owner``; False if lost the race."""
        raise NotImplementedError

    def renew_heartbeat(self, cell_id: str, owner: str, now: float) -> bool:
        """Refresh the claim heartbeat; False if the claim is gone."""
        raise NotImplementedError

    def write_back(
        self,
        cell_id: str,
        owner: str,
        status: str,
        now: float,
        result_json: "Optional[str]" = None,
        error: "Optional[str]" = None,
        steps: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        """CAS ``claimed -> done|failed``; raises
        :class:`~repro.errors.CellClaimLost` if the claim was stolen."""
        raise NotImplementedError

    def reset(
        self,
        stale_before: "Optional[float]" = None,
        failed: bool = False,
        cell_ids: "Optional[Sequence[str]]" = None,
    ) -> "List[str]":
        """Reopen rows; returns the cell_ids transitioned back to OPEN.

        ``stale_before`` reopens CLAIMED rows whose heartbeat is older
        than the cutoff (dead workers); ``failed`` reopens FAILED rows;
        ``cell_ids`` reopens those exact rows whatever their state
        (except OPEN, which is a no-op).
        """
        raise NotImplementedError

    def rows(self, status: "Optional[str]" = None) -> "List[QueueCell]":
        """Every row (optionally filtered), in index order."""
        raise NotImplementedError

    def get(self, cell_id: str) -> "Optional[QueueCell]":
        raise NotImplementedError

    def status(self, now: float, ttl: float) -> QueueStatus:
        """Aggregate counts; ``ttl`` defines heartbeat staleness."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the underlying store handle."""

    # -- shared helpers -------------------------------------------------

    def drained(self) -> bool:
        """True when no row is OPEN or CLAIMED (the grid is finished)."""
        counts = {}
        for row in self.rows():
            counts[row.status] = counts.get(row.status, 0) + 1
        return counts.get(OPEN, 0) == 0 and counts.get(CLAIMED, 0) == 0


def reopened(row: QueueCell) -> QueueCell:
    """The OPEN version of a row (what reset writes back)."""
    return replace(
        row,
        status=OPEN,
        owner=None,
        heartbeat=None,
        claimed_at=None,
        finished_at=None,
        steps=0,
        elapsed=0.0,
        result_json=None,
        error=None,
    )
