"""Grids and cells: the unit of parallel experiment execution.

A :class:`Cell` is one independent experiment invocation — experiment id,
keyword arguments, and an optional scheduler seed.  Cells are immutable,
hashable and picklable, so they can key the on-disk result cache and
cross process boundaries to pool workers.

A :class:`Grid` is a cartesian parameter space over one experiment: base
kwargs shared by every cell, named axes (kwarg name -> sequence of
values), and optional replicate seeds.  ``Grid.cells()`` expands it into
the cell list in deterministic order (axis insertion order, seeds
innermost), which is also the merge order downstream.

:func:`expand_experiment` covers the common case of sharding a registered
sweep experiment (one declaring ``axis=...`` — see
:func:`repro.experiments.experiment`) into one cell per axis value, so
``T1-sweep`` fans out across ``k`` and ``TH1`` across ``n``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


def _freeze(value: Any) -> Any:
    """Make a kwarg value hashable (lists/tuples -> tuples, dicts -> items)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, range):
        return tuple(value)
    return value


@dataclass(frozen=True)
class Cell:
    """One experiment invocation: ``run(experiment_id, **kwargs)`` + seed."""

    experiment_id: str
    params: "Tuple[Tuple[str, Any], ...]" = ()
    seed: "Optional[int]" = None

    @classmethod
    def make(
        cls,
        experiment_id: str,
        params: "Optional[Mapping[str, Any]]" = None,
        seed: "Optional[int]" = None,
    ) -> "Cell":
        """Build a cell; a ``seed`` key inside ``params`` moves to the slot."""
        items = dict(params or {})
        if "seed" in items:
            seed = items.pop("seed") if seed is None else seed
        return cls(
            experiment_id,
            tuple(sorted((k, _freeze(v)) for k, v in items.items())),
            seed,
        )

    @property
    def kwargs(self) -> "Dict[str, Any]":
        """The keyword arguments to call the experiment with (no seed)."""
        return dict(self.params)

    def describe(self) -> str:
        parts = [f"{k}={v!r}" for k, v in self.params]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        suffix = f" [{', '.join(parts)}]" if parts else ""
        return f"{self.experiment_id}{suffix}"


@dataclass
class Grid:
    """A cartesian parameter space over one experiment."""

    experiment_id: str
    base: "Dict[str, Any]" = field(default_factory=dict)
    axes: "Dict[str, Sequence[Any]]" = field(default_factory=dict)
    seeds: "Optional[Sequence[int]]" = None

    def cells(self) -> "List[Cell]":
        """Expand to cells, axes in insertion order, seeds innermost."""
        names = list(self.axes)
        value_lists = [list(self.axes[name]) for name in names]
        seeds: "Sequence[Optional[int]]" = (
            list(self.seeds) if self.seeds else [None]
        )
        cells = []
        for combo in itertools.product(*value_lists):
            params = dict(self.base)
            params.update(zip(names, combo))
            for seed in seeds:
                cells.append(Cell.make(self.experiment_id, params, seed))
        return cells

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total * (len(self.seeds) if self.seeds else 1)


def expand_experiment(
    experiment_id: str,
    kwargs: "Optional[Mapping[str, Any]]" = None,
    seed: "Optional[int]" = None,
) -> "List[Cell]":
    """Shard one experiment call into independent cells.

    Experiments registered with a sweep ``axis`` expand into one cell per
    axis value (each cell pins the axis kwarg to a one-element list);
    everything else stays a single cell.  Merging the per-cell results in
    this order with :func:`repro.exec.engine.merge_results` reproduces the
    unsharded result row-for-row.
    """
    from repro.experiments import get_experiment

    fn = get_experiment(experiment_id)
    kwargs = dict(kwargs or {})
    if "seed" in kwargs and seed is None:
        seed = kwargs.pop("seed")
    axis = getattr(fn, "grid_axis", None)
    if axis is None:
        return [Cell.make(experiment_id, kwargs, seed)]
    if axis in kwargs:
        values = list(kwargs.pop(axis))
    else:
        values = list(fn.grid_axis_default(dict(kwargs)))
    cells = []
    for value in values:
        params = dict(kwargs)
        params[axis] = [value]
        cells.append(Cell.make(experiment_id, params, seed))
    return cells
