"""Persistent result cache for experiment cells.

Results live as one JSON file per cell under ``.repro_cache/`` (or any
root you pass), sharded by the first two hex digits of the key.  The key
is a content hash over everything that determines the result:

* experiment id,
* normalized keyword arguments (sorted, JSON-canonical),
* the replicate seed,
* a *code version* — a hash of the experiment function's source plus the
  package version, so editing an experiment silently invalidates its old
  entries instead of serving stale tables.

The cache is process-safe for our access pattern (the grid engine reads
and writes only from the parent process; writes go through a temp file +
``os.replace`` so readers never see a torn entry) and keeps hit/miss/
store counters for the CLI summary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exec.grid import Cell

#: bump to invalidate every existing cache entry on format changes.
CACHE_FORMAT = 1

_CODE_VERSIONS: "Dict[str, str]" = {}


def experiment_code_version(experiment_id: str) -> str:
    """Hash of the experiment's source + package version (memoized)."""
    cached = _CODE_VERSIONS.get(experiment_id)
    if cached is not None:
        return cached
    import repro
    from repro.experiments import get_experiment

    fn = get_experiment(experiment_id)
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):  # dynamically defined experiment
        source = repr(fn)
    digest = hashlib.sha256(
        f"{repro.__version__}|{CACHE_FORMAT}|{source}".encode("utf-8")
    ).hexdigest()
    _CODE_VERSIONS[experiment_id] = digest
    return digest


def _canonical_param(value: Any) -> Any:
    """JSON fallback for non-JSON param values in cell identities.

    Values that know their cache identity (``cache_payload()``, e.g.
    :class:`~repro.net.config.TransportConfig`) and frozen dataclasses
    (fault plans, emulation specs) are expanded structurally, tagged with
    their type name — so an InProc cell and a Lossy cell can never hash
    to the same key, and a changed fault parameter always changes the
    key.  ``str()`` remains the last resort for plain opaque values.
    """
    payload = getattr(value, "cache_payload", None)
    if callable(payload):
        return {f"__{type(value).__name__}__": payload()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f"__{type(value).__name__}__": dataclasses.asdict(value)}
    return str(value)


def cell_key(cell: Cell, code_version: "Optional[str]" = None) -> str:
    """The cache key of a cell: sha256 over its normalized identity."""
    if code_version is None:
        code_version = experiment_code_version(cell.experiment_id)
    identity = {
        "experiment": cell.experiment_id,
        "params": {k: v for k, v in cell.params},
        "seed": cell.seed,
        "code": code_version,
    }
    blob = json.dumps(identity, sort_keys=True, default=_canonical_param)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON-file result cache keyed by :func:`cell_key`."""

    def __init__(self, root: "Union[os.PathLike, str]" = ".repro_cache"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, cell: Cell) -> "Optional[Dict[str, Any]]":
        """The archived payload for ``cell``, or ``None`` (counts hit/miss)."""
        path = self.path(cell_key(cell))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, cell: Cell, payload: "Dict[str, Any]") -> Path:
        """Atomically persist ``payload`` for ``cell``."""
        path = self.path(cell_key(cell))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every entry under the root; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
