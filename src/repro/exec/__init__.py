"""The parallel experiment engine.

Turns the experiment registry (:mod:`repro.experiments`) into a
parallel, resumable, cached grid runner:

* :mod:`repro.exec.grid` — :class:`Cell` / :class:`Grid`: expand a
  parameter space (including replicate seeds) into independent,
  picklable work units; :func:`expand_experiment` shards registered
  sweep experiments along their declared axis.
* :mod:`repro.exec.cache` — :class:`ResultCache`: one JSON file per
  cell under ``.repro_cache/``, keyed by a content hash of experiment
  id + normalized kwargs + seed + code version, with hit/miss/store
  accounting.
* :mod:`repro.exec.engine` — :func:`execute_cell` (the single-cell
  path everything routes through), :func:`run_cells` (serial loop or
  crash-tolerant ``ProcessPoolExecutor`` fan-out with streamed per-cell
  progress), :func:`merge_results` and :func:`run_experiment_grid`
  (whose ``backend="queue"`` routes the grid through the shared table).
* :mod:`repro.exec.queue` — the distributed experiment queue: a shared
  experiment table (:class:`SqliteQueue` behind the
  :class:`~repro.exec.queue.QueueBackend` protocol) that any number of
  workers on any machine drain with atomic claim/execute/write-back
  loops, plus the ``table|csv|md|latex`` result exporter.

The CLI flags ``--jobs`` / ``--no-cache`` / ``--refresh`` /
``--cache-dir`` / ``--export`` on ``repro experiment|sweep|ablate`` and
the ``repro queue`` command family are thin wrappers over this package.
"""

from repro.exec.cache import ResultCache, cell_key, experiment_code_version
from repro.exec.engine import (
    CellOutcome,
    EngineReport,
    execute_cell,
    merge_results,
    run_cell_payload,
    run_cells,
    run_experiment_grid,
)
from repro.exec.grid import Cell, Grid, expand_experiment
from repro.exec.queue import (
    QueueBackend,
    QueueCell,
    QueueWorker,
    SqliteQueue,
    enqueue_cells,
    export_queue,
    render_export,
    run_cells_via_queue,
)

__all__ = [
    "Cell",
    "CellOutcome",
    "EngineReport",
    "Grid",
    "QueueBackend",
    "QueueCell",
    "QueueWorker",
    "ResultCache",
    "SqliteQueue",
    "cell_key",
    "enqueue_cells",
    "execute_cell",
    "expand_experiment",
    "experiment_code_version",
    "export_queue",
    "merge_results",
    "render_export",
    "run_cell_payload",
    "run_cells",
    "run_cells_via_queue",
    "run_experiment_grid",
]
