"""A small intraprocedural dataflow engine for the v2 lint rules.

The R001-R006 rules are single-pass AST pattern matchers; the rule
families introduced with them in place (R007-R010) ask questions a
pattern cannot answer — *does this name hold a string when it is
hashed?  does the task handle ever reach an exception sink?  does a
parameter default smuggle ``print`` into an async body?* — so this
module gives rules three layers to build on:

* :class:`CFG` — an intraprocedural control-flow graph of basic blocks
  built from one function body, covering ``if``/``for``/``while``/
  ``try``/``with``, ``break``/``continue``/``return``/``raise``.
  Nested function and class definitions are opaque single statements
  (they define a name; their bodies belong to their own CFGs).
* :class:`ReachingDefs` — the classic forward may-analysis over that
  CFG: for every statement, which definitions of each name may reach
  it.  Parameters count as entry definitions carrying their default
  expression (when one exists), which is how a rule can see that
  ``announce=print`` makes a bare ``announce(...)`` a blocking call.
* :class:`Taint` — a forward may-taint propagation on top of the
  reaching state: seed expressions are declared by the rule via
  predicates, assignments propagate, reassignment from a clean value
  kills.

Scope and limits (also documented in docs/LINTING.md): the analysis is
intraprocedural (one function at a time, plus one deliberate level of
call-site lookup done by the rules themselves), flow-sensitive but
path-insensitive (both branches of an ``if`` are assumed reachable),
and type inference is literal-propagation only — a name "may be a str"
when *some* reaching definition binds it to a string literal,
f-string, ``str(...)`` call or another such name.  Unknown values
(attributes, calls, subscripts, parameters without defaults) are never
reported — every rule built on this engine errs toward silence.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: statement types that never transfer control (appended to the current
#: block; Return/Raise/Break/Continue terminate it instead).
_OPAQUE = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Expr,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Assert,
    ast.Delete,
    ast.Pass,
)


class Block:
    """One basic block: a straight-line statement run plus successors."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.stmts: "List[ast.AST]" = []
        self.succs: "List[int]" = []

    def add_succ(self, index: int) -> None:
        if index not in self.succs:
            self.succs.append(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(s).__name__ for s in self.stmts)
        return f"Block({self.index}, [{kinds}], ->{self.succs})"


class CFG:
    """Control-flow graph of one function body.

    Branch/loop header statements (``If``/``While``/``For``/``With``/
    ``Try``) appear as the last statement of the block that evaluates
    them, so their own bindings (a ``for`` target, a ``with ... as``
    name) are generated on the edge into the construct's body.
    """

    def __init__(self) -> None:
        self.blocks: "List[Block]" = []
        self.entry = self._new_block().index

    # -- construction ------------------------------------------------------

    @classmethod
    def from_function(cls, func: FunctionNode) -> "CFG":
        cfg = cls()
        current: "Optional[Block]" = cfg.blocks[cfg.entry]
        current = cfg._build_body(func.body, current, loop=None)
        return cfg

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _build_body(
        self,
        body: "Sequence[ast.stmt]",
        current: "Optional[Block]",
        loop: "Optional[Tuple[Block, Block]]",  # (header, exit)
        split: bool = False,
    ) -> "Optional[Block]":
        """Thread ``body`` onto ``current``; returns the live exit block
        (None when every path left via return/raise/break/continue).

        ``split`` puts each top-level statement in its own block — used
        for ``try`` bodies so an exception edge into a handler can carry
        the state after any prefix of the body, not just the whole block.
        """
        for stmt in body:
            if current is None:
                # unreachable code still gets parsed into a fresh block so
                # reaching queries on its statements have an answer
                current = self._new_block()
            elif split and current.stmts:
                nxt = self._new_block()
                current.add_succ(nxt.index)
                current = nxt
            if isinstance(stmt, _OPAQUE):
                current.stmts.append(stmt)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current.stmts.append(stmt)
                current = None
            elif isinstance(stmt, ast.Break):
                current.stmts.append(stmt)
                if loop is not None:
                    current.add_succ(loop[1].index)
                current = None
            elif isinstance(stmt, ast.Continue):
                current.stmts.append(stmt)
                if loop is not None:
                    current.add_succ(loop[0].index)
                current = None
            elif isinstance(stmt, ast.If):
                current = self._build_if(stmt, current, loop)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current = self._build_loop(stmt, current, loop)
            elif isinstance(stmt, ast.Try):
                current = self._build_try(stmt, current, loop)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.stmts.append(stmt)
                current = self._build_body(stmt.body, current, loop)
            else:  # pragma: no cover - future statement kinds
                current.stmts.append(stmt)
        return current

    def _build_if(
        self,
        stmt: ast.If,
        current: Block,
        loop: "Optional[Tuple[Block, Block]]",
    ) -> "Optional[Block]":
        current.stmts.append(stmt)
        then_entry = self._new_block()
        current.add_succ(then_entry.index)
        then_exit = self._build_body(stmt.body, then_entry, loop)
        else_exit: "Optional[Block]" = None
        if stmt.orelse:
            else_entry = self._new_block()
            current.add_succ(else_entry.index)
            else_exit = self._build_body(stmt.orelse, else_entry, loop)
            fall_through = False
        else:
            fall_through = True
        if then_exit is None and else_exit is None and not fall_through:
            return None
        join = self._new_block()
        if fall_through:
            current.add_succ(join.index)
        for exit_block in (then_exit, else_exit):
            if exit_block is not None:
                exit_block.add_succ(join.index)
        return join

    def _build_loop(
        self,
        stmt: "Union[ast.While, ast.For, ast.AsyncFor]",
        current: Block,
        loop: "Optional[Tuple[Block, Block]]",
    ) -> Block:
        header = self._new_block()
        current.add_succ(header.index)
        header.stmts.append(stmt)
        exit_block = self._new_block()
        body_entry = self._new_block()
        header.add_succ(body_entry.index)
        body_exit = self._build_body(stmt.body, body_entry, (header, exit_block))
        if body_exit is not None:
            body_exit.add_succ(header.index)
        if stmt.orelse:
            else_entry = self._new_block()
            header.add_succ(else_entry.index)
            else_exit = self._build_body(stmt.orelse, else_entry, loop)
            if else_exit is not None:
                else_exit.add_succ(exit_block.index)
        else:
            header.add_succ(exit_block.index)
        return exit_block

    def _build_try(
        self,
        stmt: ast.Try,
        current: Block,
        loop: "Optional[Tuple[Block, Block]]",
    ) -> "Optional[Block]":
        body_entry = self._new_block()
        current.add_succ(body_entry.index)
        body_start = len(self.blocks) - 1
        body_exit = self._build_body(stmt.body, body_entry, loop, split=True)
        body_blocks = self.blocks[body_start : len(self.blocks)]
        if body_exit is not None and stmt.orelse:
            body_exit = self._build_body(stmt.orelse, body_exit, loop)
        handler_exits: "List[Optional[Block]]" = []
        for handler in stmt.handlers:
            handler_entry = self._new_block()
            # an exception may fire after any prefix of the body: every
            # body block may transfer to every handler (may-analysis)
            for block in body_blocks:
                block.add_succ(handler_entry.index)
            current.add_succ(handler_entry.index)
            handler_entry.stmts.append(handler)
            handler_exits.append(
                self._build_body(handler.body, handler_entry, loop)
            )
        exits = [body_exit] + handler_exits
        live = [block for block in exits if block is not None]
        if stmt.finalbody:
            final_entry = self._new_block()
            # normal exits AND exceptional prefixes reach the finally
            current.add_succ(final_entry.index)
            for block in body_blocks:
                block.add_succ(final_entry.index)
            for block in live:
                block.add_succ(final_entry.index)
            return self._build_body(stmt.finalbody, final_entry, loop)
        if not live:
            return None
        join = self._new_block()
        for block in live:
            block.add_succ(join.index)
        return join

    # -- queries -----------------------------------------------------------

    def preds(self) -> "Dict[int, List[int]]":
        result: "Dict[int, List[int]]" = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                result[succ].append(block.index)
        return result


class Def:
    """One definition: ``name`` bound at ``stmt``, optionally to ``value``.

    ``value`` is the bound expression when it is statically known (the
    right-hand side of an assignment, a parameter's default) and None
    for opaque bindings (for-loop targets, ``except ... as`` names,
    parameters without defaults).  ``via`` distinguishes how the name
    was bound ("assign", "augassign", "param", "for", "with", "except",
    "import", "def").
    """

    __slots__ = ("name", "stmt", "value", "via")

    def __init__(
        self,
        name: str,
        stmt: "Optional[ast.AST]",
        value: "Optional[ast.expr]",
        via: str = "assign",
    ) -> None:
        self.name = name
        self.stmt = stmt
        self.value = value
        self.via = via

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "?")
        return f"Def({self.name}@{line}:{self.via})"


State = Dict[str, FrozenSet[Def]]


def _assign_defs(stmt: ast.AST) -> "List[Def]":
    """Definitions generated by one (non-header) statement."""
    defs: "List[Def]" = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            defs.extend(_target_defs(target, stmt, stmt.value))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            defs.extend(_target_defs(stmt.target, stmt, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            defs.append(Def(stmt.target.id, stmt, None, via="augassign"))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        defs.extend(_target_defs(stmt.target, stmt, None, via="for"))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                defs.extend(
                    _target_defs(item.optional_vars, stmt, None, via="with")
                )
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            defs.append(Def(stmt.name, stmt, None, via="except"))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            defs.append(Def(bound, stmt, None, via="import"))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        defs.append(Def(stmt.name, stmt, None, via="def"))
    return defs


def _target_defs(
    target: ast.expr,
    stmt: ast.AST,
    value: "Optional[ast.expr]",
    via: str = "assign",
) -> "List[Def]":
    if isinstance(target, ast.Name):
        return [Def(target.id, stmt, value, via=via)]
    if isinstance(target, (ast.Tuple, ast.List)):
        defs: "List[Def]" = []
        elements = list(target.elts)
        values: "List[Optional[ast.expr]]" = [None] * len(elements)
        if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
            elements
        ):
            values = list(value.elts)
        for element, element_value in zip(elements, values):
            if isinstance(element, ast.Starred):
                element = element.value
                element_value = None
            if isinstance(element, ast.Name):
                defs.append(Def(element.id, stmt, element_value, via=via))
        return defs
    return []


def _param_defs(func: FunctionNode) -> "List[Def]":
    """Entry definitions for the parameters (defaults become values)."""
    args = func.args
    defs: "List[Def]" = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults: "List[Optional[ast.expr]]" = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        defs.append(Def(arg.arg, func, default, via="param"))
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        defs.append(Def(arg.arg, func, kw_default, via="param"))
    for vararg in (args.vararg, args.kwarg):
        if vararg is not None:
            defs.append(Def(vararg.arg, func, None, via="param"))
    return defs


def _join(states: "Sequence[State]") -> State:
    """May-union of predecessor OUT states."""
    joined: "Dict[str, Set[Def]]" = {}
    for state in states:
        for name, defs in state.items():
            joined.setdefault(name, set()).update(defs)
    return {name: frozenset(defs) for name, defs in joined.items()}


def _transfer(
    state: State, stmt: ast.AST, cache: "Dict[ast.AST, List[Def]]"
) -> State:
    # the fixpoint compares Def sets by identity, so the same statement
    # must yield the same Def objects on every visit — hence the cache
    defs = cache.get(stmt)
    if defs is None:
        defs = _assign_defs(stmt)
        cache[stmt] = defs
    if not defs:
        return state
    result = dict(state)
    for item in defs:
        if item.via == "augassign":
            # x += e reads the old x: keep prior defs in the may-set so
            # kind queries can still see what is being accumulated.
            prior = result.get(item.name, frozenset())
            result[item.name] = prior | {item}
        else:
            result[item.name] = frozenset((item,))
    return result


class ReachingDefs:
    """Reaching definitions for one function, queryable per statement."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.cfg = CFG.from_function(func)
        entry_state: State = {
            d.name: frozenset((d,)) for d in _param_defs(func)
        }
        preds = self.cfg.preds()
        n = len(self.cfg.blocks)
        cache: "Dict[ast.AST, List[Def]]" = {}
        in_states: "List[State]" = [{} for _ in range(n)]
        out_states: "List[State]" = [{} for _ in range(n)]
        in_states[self.cfg.entry] = entry_state
        work = list(range(n))
        while work:
            index = work.pop(0)
            block = self.cfg.blocks[index]
            incoming = [out_states[p] for p in preds[index]]
            if index == self.cfg.entry:
                incoming.append(entry_state)
            state = _join(incoming) if incoming else {}
            in_states[index] = state
            for stmt in block.stmts:
                state = _transfer(state, stmt, cache)
            if state != out_states[index]:
                out_states[index] = state
                for succ in block.succs:
                    if succ not in work:
                        work.append(succ)
        self._in = in_states
        self._out = out_states
        #: state holding *before* each statement, keyed by node identity
        self._before: "Dict[ast.AST, State]" = {}
        for block in self.cfg.blocks:
            state = in_states[block.index]
            if block.index == self.cfg.entry:
                state = _join([state, entry_state])
            for stmt in block.stmts:
                self._before[stmt] = state
                state = _transfer(state, stmt, cache)

    def before(self, stmt: ast.AST) -> State:
        """The may-reaching definitions immediately before ``stmt``."""
        return self._before.get(stmt, {})

    def defs_of(self, stmt: ast.AST, name: str) -> "Tuple[Def, ...]":
        """Reaching defs of ``name`` before ``stmt``, in source order."""
        found = self.before(stmt).get(name, frozenset())
        return tuple(
            sorted(
                found,
                key=lambda d: (
                    getattr(d.stmt, "lineno", 0),
                    getattr(d.stmt, "col_offset", 0),
                    d.via,
                ),
            )
        )

    def statements(self) -> "Iterator[ast.AST]":
        for block in self.cfg.blocks:
            for stmt in block.stmts:
                yield stmt


# -- literal value kinds ------------------------------------------------------

_CONSTRUCTORS = {
    "str": "str",
    "bytes": "bytes",
    "int": "int",
    "float": "float",
    "bool": "bool",
    "list": "list",
    "tuple": "tuple",
    "set": "set",
    "frozenset": "set",
    "dict": "dict",
    "sorted": "list",
    "repr": "str",
    "format": "str",
}


def literal_kind(expr: "Optional[ast.expr]") -> "Optional[str]":
    """The value kind of an expression, when statically evident.

    Returns one of "str", "bytes", "int", "float", "bool", "none",
    "list", "tuple", "set", "dict" — or None for anything unknown.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Constant):
        value = expr.value
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, str):
            return "str"
        if isinstance(value, bytes):
            return "bytes"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "float"
        if value is None:
            return "none"
        return None
    if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
        return "str"
    if isinstance(expr, ast.List):
        return "list"
    if isinstance(expr, ast.Tuple):
        return "tuple"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, ast.ListComp):
        return "list"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return _CONSTRUCTORS.get(expr.func.id)
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.Add, ast.Sub, ast.Mult)
    ):
        left = literal_kind(expr.left)
        right = literal_kind(expr.right)
        if "float" in (left, right) and {left, right} <= {"float", "int"}:
            return "float"
        if left == right:
            return left
    return None


def may_be_kind(
    expr: "Optional[ast.expr]",
    kind: str,
    reaching: ReachingDefs,
    at: ast.AST,
    _depth: int = 0,
) -> bool:
    """True when ``expr`` *may* evaluate to a value of ``kind``.

    Names resolve through the reaching definitions at ``at``; any one
    matching definition is enough (may-analysis).  Unknown values are
    *not* assumed to match — the engine errs toward silence.
    """
    if expr is None or _depth > 6:
        return False
    if literal_kind(expr) == kind:
        return True
    if isinstance(expr, ast.Name):
        for definition in reaching.defs_of(at, expr.id):
            if definition.value is None:
                continue
            anchor = definition.stmt if definition.stmt is not None else at
            if may_be_kind(
                definition.value, kind, reaching, anchor, _depth + 1
            ):
                return True
    return False


def resolves_to_builtin(
    expr: ast.expr,
    builtins: "Set[str]",
    reaching: ReachingDefs,
    at: ast.AST,
) -> "Optional[str]":
    """The builtin from ``builtins`` that ``expr`` may be bound to.

    Resolves one level of indirection: a Name whose reaching definition
    (assignment or parameter default) is a bare Name naming a builtin —
    the ``announce=print`` pattern.
    """
    if isinstance(expr, ast.Name):
        if expr.id in builtins:
            return expr.id
        for definition in reaching.defs_of(at, expr.id):
            if isinstance(definition.value, ast.Name):
                if definition.value.id in builtins:
                    return definition.value.id
    return None


# -- taint propagation --------------------------------------------------------


class Taint:
    """Forward may-taint over a function's CFG.

    ``is_source`` marks expressions that *produce* a tainted value;
    ``stmt_sources`` (optional) lets a rule taint names per statement
    (e.g. a float-accumulating ``AugAssign`` target).  A name becomes
    tainted when it is assigned from an expression containing a source
    or an already-tainted name, and is cleansed when reassigned from a
    clean one.
    """

    def __init__(
        self,
        reaching: ReachingDefs,
        is_source: "Callable[[ast.expr], bool]",
        stmt_sources: "Optional[Callable[[ast.AST, Set[str]], Set[str]]]" = None,
    ) -> None:
        self.reaching = reaching
        self.is_source = is_source
        self.stmt_sources = stmt_sources
        cfg = reaching.cfg
        preds = cfg.preds()
        n = len(cfg.blocks)
        out_states: "List[Set[str]]" = [set() for _ in range(n)]
        work = list(range(n))
        while work:
            index = work.pop(0)
            block = cfg.blocks[index]
            state: "Set[str]" = set()
            for pred in preds[index]:
                state |= out_states[pred]
            for stmt in block.stmts:
                state = self._transfer(state, stmt)
            if state != out_states[index]:
                out_states[index] = state
                for succ in block.succs:
                    if succ not in work:
                        work.append(succ)
        self._before: "Dict[ast.AST, Set[str]]" = {}
        in_states: "List[Set[str]]" = [set() for _ in range(n)]
        for block in cfg.blocks:
            for pred in preds[block.index]:
                in_states[block.index] |= out_states[pred]
        for block in cfg.blocks:
            state = set(in_states[block.index])
            for stmt in block.stmts:
                self._before[stmt] = set(state)
                state = self._transfer(state, stmt)

    def _transfer(self, state: "Set[str]", stmt: ast.AST) -> "Set[str]":
        result = set(state)
        if isinstance(stmt, ast.Assign):
            dirty = self.expr_tainted(stmt.value, result)
            for target in stmt.targets:
                for definition in _target_defs(target, stmt, stmt.value):
                    if dirty:
                        result.add(definition.name)
                    else:
                        result.discard(definition.name)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                if self.expr_tainted(stmt.value, result):
                    result.add(stmt.target.id)
                else:
                    result.discard(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                if self.expr_tainted(stmt.value, result):
                    result.add(stmt.target.id)
        if self.stmt_sources is not None:
            result |= self.stmt_sources(stmt, result)
        return result

    def expr_tainted(self, expr: "Optional[ast.expr]", state: "Set[str]") -> bool:
        """Does ``expr`` read a tainted name or contain a source?"""
        if expr is None:
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in state:
                return True
            if isinstance(node, ast.expr) and self.is_source(node):
                return True
        return False

    def tainted_before(self, stmt: ast.AST) -> "Set[str]":
        return self._before.get(stmt, set())
