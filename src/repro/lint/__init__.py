"""``repro lint`` — a simulation-discipline static analyzer.

AST-based, codebase-specific rules that make the reproduction's model
assumptions machine-checked instead of conventional: determinism under a
seed (R001/R002/R006), Emulation-protocol conformance (R003), the
paper's base-object access discipline (R004), listener hygiene (R005),
and the dataflow-aware v2 families — event-loop discipline (R007),
fire-and-forget tasks (R008), replay-determinism taint (R009), and
typed-error discipline (R010).  See ``docs/LINTING.md`` for the
catalog, the suppression syntax, and the baseline workflow, and ``repro
lint --help`` for the CLI (``--format sarif``, ``--changed``,
``--jobs``, ``--explain``, ``--prune-baseline``).
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (
    RULES,
    Finding,
    LintResult,
    ModuleInfo,
    ProjectIndex,
    Rule,
    collect_files,
    git_changed_files,
    lint_paths,
    load_module,
    register_rule,
)
from repro.lint.report import (
    render_explain,
    render_json,
    render_rules,
    render_text,
)
from repro.lint.rules import EMULATION_SURFACE  # registers the rules
from repro.lint.rules_flow import (  # noqa: F401 — registers R007-R010
    functions_with_enclosing,
)
from repro.lint.sarif import render_sarif, sarif_payload, validate_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "EMULATION_SURFACE",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "ProjectIndex",
    "RULES",
    "Rule",
    "collect_files",
    "functions_with_enclosing",
    "git_changed_files",
    "lint_paths",
    "load_module",
    "register_rule",
    "render_explain",
    "render_json",
    "render_rules",
    "render_sarif",
    "render_text",
    "sarif_payload",
    "validate_sarif",
]
