"""``repro lint`` — a simulation-discipline static analyzer.

AST-based, codebase-specific rules that make the reproduction's model
assumptions machine-checked instead of conventional: determinism under a
seed (R001/R002/R006), Emulation-protocol conformance (R003), the
paper's base-object access discipline (R004) and listener hygiene
(R005).  See ``docs/LINTING.md`` for the catalog, the suppression
syntax and the baseline workflow, and ``repro lint --help`` for the CLI.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (
    RULES,
    Finding,
    LintResult,
    ModuleInfo,
    ProjectIndex,
    Rule,
    collect_files,
    lint_paths,
    load_module,
    register_rule,
)
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.rules import EMULATION_SURFACE  # registers the rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "EMULATION_SURFACE",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "ProjectIndex",
    "RULES",
    "Rule",
    "collect_files",
    "lint_paths",
    "load_module",
    "register_rule",
    "render_json",
    "render_rules",
    "render_text",
]
