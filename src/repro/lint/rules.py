"""The built-in ``repro lint`` rules, R001–R006.

Each rule is a small AST visitor enforcing one piece of the simulation
discipline (docs/LINTING.md ties each rule to the claim it protects):

* R001 — no unseeded randomness in deterministic code;
* R002 — no wall-clock or environment reads in deterministic code;
* R003 — classes handed to the algorithm registry must implement the
  full :class:`~repro.core.emulation.Emulation` surface;
* R004 — emulation code touches base objects only through the kernel's
  trigger/respond interface (the paper's model assumption);
* R005 — listener subscriptions inside a function must be released in a
  ``finally`` block (or an ``__enter__``/``__exit__`` pair);
* R006 — no iteration over unsorted sets where order can leak into
  scheduler or kernel decisions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    Rule,
    register_rule,
)

#: directories holding code that must be deterministic and model-faithful.
#: repro/net is included: fault injection is seed-derived by design (the
#: asyncio backend, the one legitimately nondeterministic module, has a
#: file-level R002 exemption below).
DETERMINISTIC_DIRS = (
    "repro/sim",
    "repro/core",
    "repro/consistency",
    "repro/net",
)

#: the Emulation protocol surface (see repro/core/emulation.py).
EMULATION_SURFACE = (
    "kernel",
    "object_map",
    "history",
    "system",
    "add_writer",
    "add_reader",
)


def attribute_chain(node: ast.AST) -> "List[str]":
    """The dotted-name components of an expression, outermost last.

    Descends through attribute access, calls and subscripts, so
    ``self.object_map.server(x).crashed`` yields
    ``["self", "object_map", "server", "crashed"]``.
    """
    parts: "List[str]" = []

    def walk(expr: ast.AST) -> None:
        if isinstance(expr, ast.Attribute):
            walk(expr.value)
            parts.append(expr.attr)
        elif isinstance(expr, ast.Name):
            parts.append(expr.id)
        elif isinstance(expr, ast.Call):
            walk(expr.func)
        elif isinstance(expr, (ast.Subscript, ast.Starred)):
            walk(expr.value)

    walk(node)
    return parts


@register_rule
class UnseededRandomnessRule(Rule):
    """R001: the shared module-level RNG breaks seeded replay."""

    id = "R001"
    title = "no unseeded randomness in deterministic code"

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        if not module.in_package_dirs(DETERMINISTIC_DIRS):
            return
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(
                            module,
                            node,
                            f"'from random import {alias.name}' binds the"
                            " shared module-level RNG; seed a"
                            " random.Random(seed) instance instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                ):
                    continue
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "random.Random() without a seed argument is"
                            " non-reproducible; pass an explicit seed",
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"module-level random.{func.attr}() uses the shared"
                        " unseeded RNG; use a seeded random.Random(seed)"
                        " instance",
                    )


@register_rule
class WallClockRule(Rule):
    """R002: wall-clock and environment reads are hidden inputs."""

    id = "R002"
    title = "no wall-clock or environment reads in deterministic code"

    #: modules where wall-clock use is legitimate (orchestration, not
    #: simulation): the experiment engine, the CLI, and the asyncio
    #: transport — the one module that talks to a real network, where
    #: startup and idle-drain deadlines are physical waits, not hidden
    #: simulation inputs (kernel time stays the step counter; see the
    #: module docstring of repro/net/asyncio_transport.py).
    EXEMPT = (
        "repro/exec",
        "repro/cli.py",
        "repro/net/asyncio_transport.py",
    )

    #: forbidden dotted-name suffixes (module alias, attribute).
    FORBIDDEN: "Set[Tuple[str, str]]" = {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "environ"),
        ("os", "getenv"),
        ("os", "urandom"),
    }

    #: from-import names that smuggle the same reads in.
    FORBIDDEN_IMPORTS = {
        "time": {"time", "time_ns", "monotonic", "perf_counter"},
        "os": {"environ", "getenv", "urandom"},
    }

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        if module.in_exempt_dirs(self.EXEMPT):
            return
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                parts = attribute_chain(node)
                if len(parts) >= 2 and tuple(parts[-2:]) in self.FORBIDDEN:
                    dotted = ".".join(parts[-2:])
                    yield self.finding(
                        module,
                        node,
                        f"{dotted} is a wall-clock/environment read;"
                        " deterministic code must take time and"
                        " configuration as explicit inputs",
                    )
            elif isinstance(node, ast.ImportFrom):
                banned = self.FORBIDDEN_IMPORTS.get(node.module or "")
                if not banned:
                    continue
                for alias in node.names:
                    if alias.name in banned:
                        yield self.finding(
                            module,
                            node,
                            f"'from {node.module} import {alias.name}'"
                            " imports a wall-clock/environment read into"
                            " deterministic code",
                        )


@register_rule
class ProtocolConformanceRule(Rule):
    """R003: registry-registered builders must return full Emulations."""

    id = "R003"
    title = "algorithm-registry classes implement the Emulation surface"

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            algorithm = self._registered_name(node)
            if algorithm is None:
                continue
            for ret in ast.walk(node):
                if not isinstance(ret, ast.Return) or ret.value is None:
                    continue
                call = ret.value
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                ):
                    continue
                class_name = call.func.id
                resolved = project.resolve_class(module, class_name)
                if resolved is None:
                    continue  # cannot locate the class statically
                classdef, home = resolved
                surface = _class_surface(classdef, home, project)
                if surface is None:
                    continue  # unresolvable base class: inconclusive
                missing = [
                    name for name in EMULATION_SURFACE if name not in surface
                ]
                if missing:
                    yield self.finding(
                        module,
                        ret,
                        f"class {class_name} registered as algorithm"
                        f" {algorithm!r} is missing Emulation surface:"
                        f" {', '.join(missing)}",
                    )

    @staticmethod
    def _registered_name(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> "Optional[str]":
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            chain = attribute_chain(decorator.func)
            if chain and chain[-1] == "register_algorithm":
                if decorator.args and isinstance(
                    decorator.args[0], ast.Constant
                ):
                    return str(decorator.args[0].value)
                return "<dynamic>"
        return None


def _class_surface(
    classdef: ast.ClassDef,
    module: ModuleInfo,
    project: ProjectIndex,
    _depth: int = 0,
) -> "Optional[Set[str]]":
    """Names a class provides (methods, class vars, ``self.x`` assigns).

    Returns None when a base class cannot be resolved — the class may
    inherit the rest of the surface, so the check stays conservative.
    """
    if _depth > 8:
        return None
    provided: "Set[str]" = set()
    for stmt in classdef.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            provided.add(stmt.name)
            for inner in ast.walk(stmt):
                target_list = []
                if isinstance(inner, ast.Assign):
                    target_list = inner.targets
                elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                    target_list = [inner.target]
                for target in target_list:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        provided.add(target.attr)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    provided.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                provided.add(stmt.target.id)
    for base in classdef.bases:
        if isinstance(base, ast.Attribute):
            if base.attr in ("Protocol", "object"):
                continue
            return None
        if not isinstance(base, ast.Name):
            return None
        if base.id in ("object", "Protocol"):
            continue
        resolved = project.resolve_class(module, base.id)
        if resolved is None:
            return None
        base_surface = _class_surface(
            resolved[0], resolved[1], project, _depth + 1
        )
        if base_surface is None:
            return None
        provided |= base_surface
    return provided


@register_rule
class BaseObjectDisciplineRule(Rule):
    """R004: the paper's base-object access model, made executable.

    Emulation code in ``core/`` may interact with base objects and
    servers only via triggered low-level operations and kernel events —
    never by reaching into the :class:`~repro.sim.server.ObjectMap` to
    mutate state, apply effects, or read private internals.
    """

    id = "R004"
    title = "base objects are accessed only through trigger/respond"

    #: transports relay messages but must not mutate object state either.
    SCOPE = ("repro/core", "repro/net")

    #: ObjectMap methods that mutate the deployment or bypass the kernel.
    MUTATORS = {"crash_server", "add_object", "add_server", "host", "apply"}

    #: kernel delivery-seam methods (request arrival, response delivery).
    #: Only the transport layer may call them: a protocol that marks its
    #: own operations as arrived (or hand-delivers responses) bypasses
    #: the network model the same way a direct apply() bypasses the
    #: object model.
    DELIVERY_SEAM = {"arrive", "deliver"}
    SEAM_SCOPE = ("repro/core",)

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        if not module.in_package_dirs(self.SCOPE):
            return
        seam_scoped = module.in_package_dirs(self.SEAM_SCOPE)
        assert module.tree is not None
        for node in ast.walk(module.tree):
            targets: "List[ast.expr]" = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                if isinstance(target, ast.Attribute):
                    receiver = attribute_chain(target.value)
                    if "object_map" in receiver:
                        yield self.finding(
                            module,
                            target,
                            f"direct mutation of '{target.attr}' behind the"
                            " object map; emulations must go through the"
                            " trigger/respond interface",
                        )
                elif isinstance(target, ast.Subscript):
                    receiver = attribute_chain(target.value)
                    if "object_map" in receiver:
                        yield self.finding(
                            module,
                            target,
                            "direct mutation of an object-map entry;"
                            " emulations must go through the"
                            " trigger/respond interface",
                        )
            if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
                receiver = attribute_chain(node.value)
                if "object_map" in receiver:
                    yield self.finding(
                        module,
                        node,
                        f"access to ObjectMap internals ('{node.attr}');"
                        " use the public delta/image/preimage API",
                    )
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                method = node.func.attr
                if method in self.MUTATORS:
                    receiver = attribute_chain(node.func.value)
                    if "object_map" in receiver:
                        yield self.finding(
                            module,
                            node,
                            f"'{method}()' on the object map bypasses the"
                            " kernel; crashes and effects must flow"
                            " through kernel actions",
                        )
                if seam_scoped and method in self.DELIVERY_SEAM:
                    receiver = attribute_chain(node.func.value)
                    if "kernel" in receiver:
                        yield self.finding(
                            module,
                            node,
                            f"'{method}()' is the kernel's delivery seam;"
                            " only the transport layer (repro/net) may"
                            " mark arrivals or deliver responses",
                        )


@register_rule
class ListenerHygieneRule(Rule):
    """R005: the static form of the PR 2 listener-leak fix."""

    id = "R005"
    title = "add_listener is paired with remove_listener in finally"

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        assert module.tree is not None
        # Map every function to its (optional) enclosing class, so an
        # __enter__ subscription can be paired with an __exit__ release.
        functions: "List[Tuple[ast.AST, Optional[ast.ClassDef]]]" = []
        self._collect(module.tree, None, functions)
        for body_owner, enclosing_class in functions:
            yield from self._check_body(module, body_owner, enclosing_class)

    def _collect(self, node, enclosing_class, out) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((child, enclosing_class))
                self._collect(child, None, out)
            elif isinstance(child, ast.ClassDef):
                self._collect(child, child, out)
            else:
                self._collect(child, enclosing_class, out)

    def _check_body(
        self,
        module: ModuleInfo,
        function,
        enclosing_class: "Optional[ast.ClassDef]",
    ) -> "Iterator[Finding]":
        adds = [
            call
            for call in self._own_calls(function, "add_listener")
        ]
        if not adds:
            return
        releases = {
            self._pair_key(call)
            for call in self._finally_calls(function, "remove_listener")
        }
        exit_releases: "Set[Tuple[str, str]]" = set()
        if enclosing_class is not None and function.name == "__enter__":
            for method in enclosing_class.body:
                if (
                    isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and method.name == "__exit__"
                ):
                    exit_releases = {
                        self._pair_key(call)
                        for call in self._own_calls(
                            method, "remove_listener"
                        )
                    }
        for call in adds:
            key = self._pair_key(call)
            if key in releases or key in exit_releases:
                continue
            yield self.finding(
                module,
                call,
                "add_listener without a matching remove_listener in a"
                " finally block (or __enter__/__exit__ pair): listeners"
                " leak across runs and double-count metrics",
            )

    @staticmethod
    def _pair_key(call: ast.Call) -> "Tuple[str, str]":
        receiver = ".".join(attribute_chain(call.func.value))
        argument = ast.dump(call.args[0]) if call.args else ""
        return receiver, argument

    def _own_calls(self, function, method: str) -> "List[ast.Call]":
        """Calls of ``*.method(...)`` in a function, skipping nested defs."""
        found: "List[ast.Call]" = []

        def walk(node) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == method
                ):
                    found.append(child)
                walk(child)

        walk(function)
        return found

    def _finally_calls(self, function, method: str) -> "List[ast.Call]":
        found: "List[ast.Call]" = []

        def walk(node) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if isinstance(child, ast.Try):
                    for stmt in child.finalbody:
                        for inner in ast.walk(stmt):
                            if (
                                isinstance(inner, ast.Call)
                                and isinstance(inner.func, ast.Attribute)
                                and inner.func.attr == method
                            ):
                                found.append(inner)
                walk(child)

        walk(function)
        return found


@register_rule
class IterationOrderRule(Rule):
    """R006: set iteration order must not leak into decisions."""

    id = "R006"
    title = "no iteration over unsorted sets in scheduler/kernel paths"

    SCOPE = ("repro/sim", "repro/core", "repro/net")

    #: ObjectMap API known to return sets.
    SET_METHODS = {"image", "preimage"}
    SET_ATTRS = {"crashed_servers", "correct_servers"}

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        if not module.in_package_dirs(self.SCOPE):
            return
        assert module.tree is not None
        for node in ast.walk(module.tree):
            iterables: "List[ast.expr]" = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
            ):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                reason = self._set_expr(iterable)
                if reason is not None:
                    yield self.finding(
                        module,
                        iterable,
                        f"iterating {reason} has arbitrary order; wrap in"
                        " sorted(...) so scheduler/kernel decisions stay"
                        " deterministic",
                    )

    def _set_expr(self, node: ast.expr) -> "Optional[str]":
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            ):
                return f"{func.id}(...)"
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.SET_METHODS
            ):
                return f"the set returned by .{func.attr}(...)"
        if isinstance(node, ast.Attribute) and node.attr in self.SET_ATTRS:
            return f"the set-valued .{node.attr}"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._set_expr(node.left)
            right = self._set_expr(node.right)
            if left is not None or right is not None:
                return "a set-operation result"
        return None
