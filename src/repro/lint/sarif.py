"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the format CI
platforms ingest for PR annotations: GitHub's ``upload-sarif`` action
turns each ``result`` into an inline diff annotation at its
``physicalLocation``.  This module renders a :class:`~repro.lint.engine.
LintResult` as one SARIF run and validates the output — against the
relevant slice of the official schema via ``jsonschema`` when that
package is importable, and via structural checks otherwise, so the
``lint-self`` CI smoke needs no network access.

Suppressed and baselined findings are included with a ``suppressions``
array (kind ``inSource`` for ``# repro-lint: disable=`` directives,
kind ``external`` for baseline entries, carrying the baseline reason as
the justification); SARIF consumers hide suppressed results but keep
them auditable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.lint.engine import RULES, Finding, LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: the slice of the SARIF 2.1.0 schema the lint output exercises.
#: Field names and requiredness mirror the official schema; keeping it
#: inline lets CI validate without fetching the 300 kB original.
SARIF_MINI_SCHEMA: "Dict[str, Any]" = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": SARIF_VERSION},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object"
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message", "ruleId"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string"
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            },
                                            "justification": {
                                                "type": "string"
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _artifact_uri(finding: Finding) -> str:
    return finding.path.replace("\\", "/")


def _result(
    finding: Finding,
    rule_index: "Dict[str, int]",
    suppression: "Optional[Dict[str, str]]" = None,
) -> "Dict[str, Any]":
    payload: "Dict[str, Any]" = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _artifact_uri(finding)},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col),
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if finding.rule in rule_index:
        payload["ruleIndex"] = rule_index[finding.rule]
    if suppression is not None:
        payload["suppressions"] = [suppression]
    return payload


def sarif_payload(
    result: LintResult,
    tool_version: str = "0",
    baseline_reasons: "Optional[Dict[str, str]]" = None,
) -> "Dict[str, Any]":
    """The SARIF log for one lint run, as a plain dict.

    ``baseline_reasons`` maps fingerprints to baseline reason strings so
    baselined results carry their justification.
    """
    # importing the rule modules populates the registry for the catalog
    import repro.lint.rules  # noqa: F401
    import repro.lint.rules_flow  # noqa: F401

    reasons = baseline_reasons or {}
    rules: "List[Dict[str, Any]]" = []
    rule_index: "Dict[str, int]" = {}
    for rule_id, rule in sorted(RULES.items()):
        rule_index[rule_id] = len(rules)
        descriptor: "Dict[str, Any]" = {
            "id": rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": "error"},
        }
        explain = getattr(rule, "explain", "")
        if explain:
            descriptor["fullDescription"] = {
                "text": " ".join(explain.split())
            }
        rules.append(descriptor)
    results: "List[Dict[str, Any]]" = []
    for finding in result.active:
        results.append(_result(finding, rule_index))
    for finding in result.suppressed:
        results.append(
            _result(finding, rule_index, suppression={"kind": "inSource"})
        )
    for finding in result.baselined:
        suppression = {"kind": "external"}
        reason = reasons.get(finding.fingerprint)
        if reason:
            suppression["justification"] = reason
        results.append(_result(finding, rule_index, suppression=suppression))
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "informationUri": (
                            "https://example.invalid/repro/docs/LINTING.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    result: LintResult,
    tool_version: str = "0",
    baseline_reasons: "Optional[Dict[str, str]]" = None,
) -> str:
    """The SARIF log as a JSON string (stable key order)."""
    return json.dumps(
        sarif_payload(result, tool_version, baseline_reasons),
        indent=2,
        sort_keys=True,
    )


def _structural_errors(payload: "Dict[str, Any]") -> "List[str]":
    """Hand-rolled checks mirroring :data:`SARIF_MINI_SCHEMA`."""
    errors: "List[str]" = []
    if payload.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty array"]
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            errors.append("tool.driver.name is required")
        known = {rule.get("id") for rule in driver.get("rules", [])}
        for item in run.get("results", []):
            if not item.get("ruleId"):
                errors.append("result.ruleId is required")
            elif known and item["ruleId"] not in known:
                errors.append(
                    f"result.ruleId {item['ruleId']!r} not in driver.rules"
                )
            if "text" not in item.get("message", {}):
                errors.append("result.message.text is required")
            for location in item.get("locations", []):
                physical = location.get("physicalLocation", {})
                if "uri" not in physical.get("artifactLocation", {}):
                    errors.append("artifactLocation.uri is required")
                region = physical.get("region", {})
                for key in ("startLine", "startColumn"):
                    value = region.get(key)
                    if value is not None and (
                        not isinstance(value, int) or value < 1
                    ):
                        errors.append(f"region.{key} must be a 1-based int")
    return errors


def validate_sarif(payload: "Dict[str, Any]") -> "List[str]":
    """Validation errors for a SARIF log (empty list = valid).

    Prefers ``jsonschema`` against :data:`SARIF_MINI_SCHEMA`; falls back
    to the structural checks when jsonschema is unavailable.
    """
    try:
        import jsonschema
    except ImportError:  # pragma: no cover — jsonschema ships in CI
        return _structural_errors(payload)
    validator = jsonschema.Draft202012Validator(SARIF_MINI_SCHEMA)
    errors = [
        f"{'/'.join(str(part) for part in error.absolute_path)}:"
        f" {error.message}"
        for error in validator.iter_errors(payload)
    ]
    # the mini-schema cannot express cross-references; keep the
    # structural ruleId-in-catalog check on top
    return errors + [
        message
        for message in _structural_errors(payload)
        if "not in driver.rules" in message
    ]
