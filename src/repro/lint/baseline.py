"""Baseline files: grandfathered findings, each with a reason.

A baseline entry names a finding by its content fingerprint (rule id +
package-relative path + normalized source line — see
:func:`repro.lint.engine.fingerprint`), so entries survive unrelated
edits that shift line numbers but go *stale* the moment the flagged line
changes or disappears.  Stale entries are reported by the CLI and
rejected by the self-cleanliness test, which keeps the baseline honest:
it can only shrink, never silently rot.

Every entry carries a ``reason`` string.  The checked-in
``lint-baseline.json`` holds the deliberate violations triaged when the
linter was introduced (permanent listener subscriptions, mostly);
``repro lint --write-baseline`` regenerates entries with a placeholder
reason that is expected to be replaced by hand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.engine import Finding

BASELINE_VERSION = 1

#: reason --write-baseline stamps on new entries (replace it by hand).
PLACEHOLDER_REASON = "grandfathered by --write-baseline; justify or fix"


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str  # package-relative, informational
    reason: str

    def to_dict(self) -> "Dict[str, str]":
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """A set of grandfathered findings, keyed by fingerprint."""

    entries: "List[BaselineEntry]" = field(default_factory=list)

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r}"
                f" (expected {BASELINE_VERSION})"
            )
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=entry["fingerprint"],
                    rule=entry["rule"],
                    path=entry["path"],
                    reason=entry.get("reason", ""),
                )
                for entry in payload.get("entries", [])
            ]
        )

    @classmethod
    def from_findings(cls, findings: "List[Finding]") -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=item.fingerprint,
                    rule=item.rule,
                    path=item.relpath,
                    reason=PLACEHOLDER_REASON,
                )
                for item in findings
            ]
        )

    def save(self, path: "Path | str") -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def partition(
        self, findings: "List[Finding]"
    ) -> "Tuple[List[Finding], List[Finding], List[Dict[str, str]]]":
        """Split findings into (active, baselined); report stale entries."""
        by_fingerprint = {
            entry.fingerprint: entry for entry in self.entries
        }
        active: "List[Finding]" = []
        baselined: "List[Finding]" = []
        matched = set()
        for item in findings:
            entry = by_fingerprint.get(item.fingerprint)
            if entry is not None:
                baselined.append(item)
                matched.add(item.fingerprint)
            else:
                active.append(item)
        stale = [
            entry.to_dict()
            for entry in self.entries
            if entry.fingerprint not in matched
        ]
        return active, baselined, stale

    def pruned(self, stale: "List[Dict[str, str]]") -> "Baseline":
        """A copy without the given stale entries (``--prune-baseline``)."""
        stale_fingerprints = {entry["fingerprint"] for entry in stale}
        return Baseline(
            entries=[
                entry
                for entry in self.entries
                if entry.fingerprint not in stale_fingerprints
            ]
        )

    def reasons(self) -> "Dict[str, str]":
        """fingerprint -> reason, for SARIF suppression justifications."""
        return {
            entry.fingerprint: entry.reason
            for entry in self.entries
            if entry.reason
        }
