"""Rendering lint results as text and JSON."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.engine import RULES, LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The human-facing report: one line per active finding + summary."""
    lines = [item.render() for item in result.active]
    if verbose:
        lines.extend(
            f"{item.render()} [suppressed]" for item in result.suppressed
        )
        lines.extend(
            f"{item.render()} [baselined]" for item in result.baselined
        )
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry['rule']} {entry['path']}"
            f" ({entry['fingerprint']}) — finding no longer exists;"
            " remove it from the baseline"
        )
    lines.append(
        f"repro lint: {result.files} file(s),"
        f" {len(result.active)} finding(s)"
        f" ({len(result.suppressed)} suppressed,"
        f" {len(result.baselined)} baselined,"
        f" {len(result.stale_baseline)} stale baseline)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-facing report (uploaded as a CI artifact)."""
    payload: "Dict[str, Any]" = {
        "findings": [item.to_dict() for item in result.active],
        "suppressed": [item.to_dict() for item in result.suppressed],
        "baselined": [item.to_dict() for item in result.baselined],
        "stale_baseline": result.stale_baseline,
        "summary": {
            "files": result.files,
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The rule catalog (``repro lint --list-rules``)."""
    # Importing the rule modules populates the registry.
    import repro.lint.rules  # noqa: F401
    import repro.lint.rules_flow  # noqa: F401

    width = max(len(rule_id) for rule_id in RULES)
    return "\n".join(
        f"{rule_id:<{width}}  {rule.title}"
        for rule_id, rule in sorted(RULES.items())
    )


def render_explain(rule_id: str) -> str:
    """One rule's rationale (``repro lint --explain R010``)."""
    import repro.lint.rules  # noqa: F401
    import repro.lint.rules_flow  # noqa: F401

    rule = RULES.get(rule_id)
    if rule is None:
        known = ", ".join(sorted(RULES))
        return f"unknown rule {rule_id!r}; known rules: {known}"
    body = getattr(rule, "explain", "") or rule.title
    return f"{rule.id} — {rule.title}\n\n{body}"
