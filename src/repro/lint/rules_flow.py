"""Dataflow-aware ``repro lint`` rules, R007–R010.

Where R001–R006 are single-pass AST pattern matchers, these four rule
families query the intraprocedural engine in
:mod:`repro.lint.dataflow` — reaching definitions, literal value
kinds, and taint propagation — so they can follow a value through
assignments instead of only recognising it at the point of use:

* R007 — event-loop discipline: blocking calls (``time.sleep``, sync
  socket/file IO, ``run_to_quiescence``) must not be reachable inside
  ``async def``; a callback parameter defaulting to ``print`` counts.
* R008 — unawaited coroutines and fire-and-forget tasks:
  ``create_task``/``ensure_future`` results need an exception sink.
* R009 — replay-determinism taint: salted ``hash()``/``id()`` values,
  unsorted set/dict iteration order, and float accumulation must not
  flow into fate functions, cache keys, or wire frames (the PR 4 bug
  class).
* R010 — typed-error discipline: service-layer code raises
  :mod:`repro.errors` classes, not bare ``ValueError``/``RuntimeError``.

Every rule inherits the engine's bias: unknown values never match, so
the rules err toward silence rather than noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.dataflow import (
    FunctionNode,
    ReachingDefs,
    Taint,
    may_be_kind,
    resolves_to_builtin,
)
from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    Rule,
    register_rule,
)
from repro.lint.rules import attribute_chain


def functions_with_enclosing(
    tree: ast.Module,
) -> "Iterator[Tuple[FunctionNode, List[FunctionNode]]]":
    """Every function in a module, with its enclosing-function stack
    (outermost first) — nested defs see their parents' parameters."""

    def walk(
        node: ast.AST, stack: "List[FunctionNode]"
    ) -> "Iterator[Tuple[FunctionNode, List[FunctionNode]]]":
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(stack)
                stack.append(child)
                yield from walk(child, stack)
                stack.pop()
            else:
                yield from walk(child, stack)

    yield from walk(tree, [])


def _own_statements(func: FunctionNode) -> "Iterator[ast.stmt]":
    """Statements of ``func`` itself, not of nested defs."""

    def walk(node: ast.AST) -> "Iterator[ast.stmt]":
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.stmt):
                yield child
            yield from walk(child)

    yield from walk(func)


def _own_nodes(func: FunctionNode) -> "Iterator[ast.AST]":
    """AST nodes of ``func`` itself, not of nested defs."""

    def walk(node: ast.AST) -> "Iterator[ast.AST]":
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield child
            yield from walk(child)

    yield from walk(func)


def _enclosing_binding(
    name: str, stack: "Sequence[FunctionNode]"
) -> "Optional[ast.expr]":
    """The value a free variable is bound to in an enclosing function.

    Resolves the closure pattern the asyncio transport uses — a nested
    ``async def`` reading a parameter of the function that built it
    (``def run(..., announce=print): async def _serve(): announce(...)``).
    Checks parameter defaults and simple top-level assignments, innermost
    enclosing function first.
    """
    for func in reversed(stack):
        args = func.args
        positional = list(args.posonlyargs) + list(args.args)
        defaults: "List[Optional[ast.expr]]" = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        for arg, default in zip(positional, defaults):
            if arg.arg == name:
                return default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == name:
                return kw_default
        for stmt in func.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return stmt.value
    return None


@register_rule
class EventLoopDisciplineRule(Rule):
    """R007: no blocking calls reachable inside ``async def``."""

    id = "R007"
    title = "no blocking calls inside async def"
    explain = (
        "A blocking call inside an async function stalls the whole event\n"
        "loop: every replica served by that loop stops responding, which\n"
        "the cluster harness cannot distinguish from a crash — so a\n"
        "stray time.sleep() silently changes the fault pattern under\n"
        "test.  Use `await asyncio.sleep(...)`, async transport APIs, or\n"
        "`loop.run_in_executor(...)` for genuinely blocking work.  The\n"
        "rule resolves callback parameters through their defaults, so\n"
        "`announce(...)` with `announce=print` in an enclosing function\n"
        "counts as blocking console IO."
    )

    #: dotted-call suffixes that block the calling thread.
    BLOCKING_SUFFIXES: "Set[Tuple[str, str]]" = {
        ("time", "sleep"),
        ("socket", "socket"),
        ("socket", "create_connection"),
        ("subprocess", "run"),
        ("subprocess", "check_output"),
        ("subprocess", "check_call"),
        ("os", "system"),
    }

    #: bare names whose call blocks (console/file IO builtins).
    BLOCKING_BUILTINS = {"open", "input", "print"}

    #: repro's own synchronous drivers: stepping a simulation to
    #: quiescence is a CPU-bound loop, not awaitable work.
    BLOCKING_LOCAL = {"run_to_quiescence"}

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        assert module.tree is not None
        for func, stack in functions_with_enclosing(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            reaching: "Optional[ReachingDefs]" = None
            for node in _own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                label = self._blocking_label(node)
                if label is None and isinstance(node.func, ast.Name):
                    if reaching is None:
                        reaching = ReachingDefs(func)
                    label = self._indirect_label(
                        node, func, stack, reaching
                    )
                if label is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{label} blocks the event loop inside"
                        f" 'async def {func.name}'; use the async"
                        " equivalent or run_in_executor",
                    )

    def _blocking_label(self, call: ast.Call) -> "Optional[str]":
        chain = attribute_chain(call.func)
        if not chain:
            return None
        if len(chain) >= 2 and tuple(chain[-2:]) in self.BLOCKING_SUFFIXES:
            return ".".join(chain[-2:]) + "()"
        if chain[-1] in self.BLOCKING_LOCAL:
            return chain[-1] + "()"
        if (
            isinstance(call.func, ast.Name)
            and chain[0] in self.BLOCKING_BUILTINS
        ):
            return chain[0] + "()"
        return None

    def _indirect_label(
        self,
        call: ast.Call,
        func: FunctionNode,
        stack: "Sequence[FunctionNode]",
        reaching: ReachingDefs,
    ) -> "Optional[str]":
        """A bare-name call whose binding resolves to a blocking builtin
        — through this function's reaching defs or an enclosing scope."""
        assert isinstance(call.func, ast.Name)
        name = call.func.id
        anchor = self._enclosing_statement(call, func)
        if anchor is not None:
            resolved = resolves_to_builtin(
                call.func, self.BLOCKING_BUILTINS, reaching, anchor
            )
            if resolved is not None:
                return f"{name}() (= {resolved})"
            if reaching.defs_of(anchor, name):
                return None  # locally bound to something non-blocking
        bound = _enclosing_binding(name, stack)
        if isinstance(bound, ast.Name) and bound.id in self.BLOCKING_BUILTINS:
            return f"{name}() (= {bound.id})"
        return None

    @staticmethod
    def _enclosing_statement(
        call: ast.Call, func: FunctionNode
    ) -> "Optional[ast.stmt]":
        for stmt in _own_statements(func):
            for node in ast.walk(stmt):
                if node is call:
                    return stmt
        return None


@register_rule
class FireAndForgetRule(Rule):
    """R008: spawned tasks and coroutines need an exception sink."""

    id = "R008"
    title = "no fire-and-forget coroutines or unobserved tasks"
    explain = (
        "asyncio only reports an exception from a Task when something\n"
        "observes the task — awaits it, gathers it, or attaches a\n"
        "done-callback.  A discarded `ensure_future(...)` that fails\n"
        "(e.g. a redial that keeps losing the race) dies silently and\n"
        "the failure surfaces only as a hung experiment.  Keep a\n"
        "reference and attach an exception sink (`add_done_callback`,\n"
        "`await`, `gather`).  A bare coroutine call that is never\n"
        "awaited does not run at all."
    )

    SPAWNERS = {"create_task", "ensure_future"}

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        assert module.tree is not None
        async_defs = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for func, _stack in functions_with_enclosing(module.tree):
            yield from self._check_function(module, func, async_defs)
        yield from self._check_body(
            module, module.tree.body, async_defs, top_level=True
        )

    def _check_function(
        self,
        module: ModuleInfo,
        func: FunctionNode,
        async_defs: "Set[str]",
    ) -> "Iterator[Finding]":
        loads: "Set[str]" = {
            node.id
            for node in _own_nodes(func)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        for stmt in _own_statements(func):
            if isinstance(stmt, ast.Expr):
                yield from self._check_discarded(module, stmt, async_defs)
            elif isinstance(stmt, ast.Assign) and self._spawner_call(
                stmt.value
            ):
                names = [
                    target.id
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                ]
                if names and not any(name in loads for name in names):
                    yield self.finding(
                        module,
                        stmt,
                        f"task assigned to '{names[0]}' is never read"
                        " again: no await, gather, or"
                        " add_done_callback observes its exceptions",
                    )

    def _check_body(
        self,
        module: ModuleInfo,
        body: "Sequence[ast.stmt]",
        async_defs: "Set[str]",
        top_level: bool = False,
    ) -> "Iterator[Finding]":
        for stmt in body:
            if isinstance(stmt, ast.Expr):
                yield from self._check_discarded(module, stmt, async_defs)

    def _check_discarded(
        self, module: ModuleInfo, stmt: ast.Expr, async_defs: "Set[str]"
    ) -> "Iterator[Finding]":
        value = stmt.value
        if self._spawner_call(value):
            assert isinstance(value, ast.Call)
            spawner = attribute_chain(value.func)[-1]
            yield self.finding(
                module,
                stmt,
                f"{spawner}(...) result is discarded: the task's"
                " exceptions are never observed (fire-and-forget);"
                " keep the handle and add an exception sink",
            )
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in async_defs
        ):
            yield self.finding(
                module,
                stmt,
                f"coroutine '{value.func.id}(...)' is never awaited:"
                " the call builds a coroutine object and discards it"
                " without running it",
            )

    def _spawner_call(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        chain = attribute_chain(expr.func)
        return bool(chain) and chain[-1] in self.SPAWNERS


@register_rule
class ReplayDeterminismRule(Rule):
    """R009: process-salted values must not decide fates or keys."""

    id = "R009"
    title = "no salted hashes or unordered values in replay-relevant flow"
    explain = (
        "Python salts str/bytes hashing per process (PYTHONHASHSEED), so\n"
        "hash('request') differs between the coordinator and a replica\n"
        "shell — exactly the PR 4 FaultPlan.fate bug, where a salted\n"
        "hash seeded the fate RNG and cross-process replay silently\n"
        "diverged.  id() is a process address; set/dict iteration order\n"
        "and float accumulation are schedule-dependent.  None of these\n"
        "may flow into fate functions, cache keys, or wire frames.  Use\n"
        "all-int tuples for hashing, sorted(...) before iterating, and\n"
        "integer arithmetic for anything that feeds a seed."
    )

    SCOPE = (
        "repro/sim",
        "repro/core",
        "repro/consistency",
        "repro/net",
        "repro/apps",
    )

    #: call names that consume replay-relevant values.
    SINKS = {
        "fate",
        "cache_key",
        "encode_request",
        "encode_response",
        "encode_frame",
        "Random",
    }

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        if not module.in_package_dirs(self.SCOPE):
            return
        assert module.tree is not None
        for func, _stack in functions_with_enclosing(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: ModuleInfo, func: FunctionNode
    ) -> "Iterator[Finding]":
        reaching = ReachingDefs(func)
        # direct findings: hash() over a str/bytes-bearing argument, and
        # id() anywhere in scope — both are per-process values.
        reported: "Set[int]" = set()
        for stmt in reaching.statements():
            for node in ast.walk(stmt):
                if id(node) in reported or not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Name):
                    continue
                if node.func.id == "hash" and len(node.args) == 1:
                    salted = self._salted_part(node.args[0], reaching, stmt)
                    if salted is not None:
                        reported.add(id(node))
                        yield self.finding(
                            module,
                            node,
                            f"hash() over {salted} is salted per process"
                            " (PYTHONHASHSEED) and breaks cross-process"
                            " replay; hash an all-int tuple instead",
                        )
                elif node.func.id == "id" and len(node.args) == 1:
                    reported.add(id(node))
                    yield self.finding(
                        module,
                        node,
                        "id() is a process-local address; it can never"
                        " agree across coordinator and replica"
                        " processes",
                    )
        # taint: three independent source families, reported at sinks.
        yield from self._check_taint(
            module,
            reaching,
            self._hash_source(reaching),
            None,
            "a per-process hash()/id() value",
        )
        yield from self._check_taint(
            module,
            reaching,
            lambda expr: False,
            self._iteration_sources(reaching),
            "a value drawn from unsorted set/dict iteration",
        )
        yield from self._check_taint(
            module,
            reaching,
            lambda expr: False,
            self._float_sources(reaching),
            "a float accumulation",
        )

    # -- sources -----------------------------------------------------------

    def _salted_part(
        self, arg: ast.expr, reaching: ReachingDefs, at: ast.AST
    ) -> "Optional[str]":
        """Why hashing ``arg`` is salted, or None when it looks safe."""
        elements = (
            list(arg.elts) if isinstance(arg, (ast.Tuple, ast.List)) else [arg]
        )
        for element in elements:
            for kind in ("str", "bytes"):
                if may_be_kind(element, kind, reaching, at):
                    label = (
                        f"'{element.id}'"
                        if isinstance(element, ast.Name)
                        else f"a {kind} value"
                    )
                    return f"{label} (may be {kind})"
        return None

    def _hash_source(self, reaching: ReachingDefs):
        def is_source(expr: ast.expr) -> bool:
            if not (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
            ):
                return False
            if expr.func.id == "id" and len(expr.args) == 1:
                return True
            if expr.func.id == "hash" and len(expr.args) == 1:
                anchor = self._stmt_of(expr, reaching)
                if anchor is None:
                    return False
                return (
                    self._salted_part(expr.args[0], reaching, anchor)
                    is not None
                )
            return False

        return is_source

    def _iteration_sources(self, reaching: ReachingDefs):
        def stmt_sources(stmt: ast.AST, state: "Set[str]") -> "Set[str]":
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                return set()
            unordered = False
            for kind in ("set", "dict"):
                if may_be_kind(stmt.iter, kind, reaching, stmt):
                    unordered = True
            if not unordered:
                return set()
            return {
                node.id
                for node in ast.walk(stmt.target)
                if isinstance(node, ast.Name)
            }

        return stmt_sources

    def _float_sources(self, reaching: ReachingDefs):
        def stmt_sources(stmt: ast.AST, state: "Set[str]") -> "Set[str]":
            if not (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)
                and isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult))
            ):
                return set()
            name = stmt.target.id
            target = ast.Name(id=name, ctx=ast.Load())
            if may_be_kind(target, "float", reaching, stmt) or may_be_kind(
                stmt.value, "float", reaching, stmt
            ):
                return {name}
            return set()

        return stmt_sources

    # -- sinks -------------------------------------------------------------

    def _check_taint(
        self,
        module: ModuleInfo,
        reaching: ReachingDefs,
        is_source,
        stmt_sources,
        description: str,
    ) -> "Iterator[Finding]":
        taint = Taint(reaching, is_source, stmt_sources=stmt_sources)
        for stmt in reaching.statements():
            state = taint.tainted_before(stmt)
            if stmt_sources is not None:
                state = state | stmt_sources(stmt, state)
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                chain = attribute_chain(node.func)
                if not chain or chain[-1] not in self.SINKS:
                    continue
                dirty = self._dirty_argument(node, taint, state)
                if dirty is None:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{description} flows into {chain[-1]}(...) via"
                    f" '{dirty}'; replay-relevant inputs must be"
                    " deterministic across processes",
                )

    def _dirty_argument(
        self, call: ast.Call, taint: Taint, state: "Set[str]"
    ) -> "Optional[str]":
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(arg):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in state
                ):
                    return node.id
        return None

    @staticmethod
    def _stmt_of(
        expr: ast.expr, reaching: ReachingDefs
    ) -> "Optional[ast.AST]":
        for stmt in reaching.statements():
            for node in ast.walk(stmt):
                if node is expr:
                    return stmt
        return None


@register_rule
class TypedErrorRule(Rule):
    """R010: service layers raise repro.errors classes, not builtins."""

    id = "R010"
    title = "raise repro.errors classes, not bare ValueError/RuntimeError"
    explain = (
        "repro.errors defines one class per failure mode, each also\n"
        "subclassing the builtin it historically raised, so `except\n"
        "ValueError` keeps working while the CLI maps every class to a\n"
        "distinct exit code (repro.cli.exit_code_for) and sweep tooling\n"
        "can triage failures mechanically.  A bare `raise ValueError`\n"
        "collapses that taxonomy.  Pick the class that matches the\n"
        "failure: InvalidConfig (bad config parameters), BoundViolation\n"
        "(outside a bound's domain), WriterBoundExceeded (writer id >=\n"
        "k), WireDecodeError (malformed frames) for caller errors;\n"
        "QuorumUnavailable, StaleShardMap, ShardCapacityExceeded,\n"
        "SessionClosed for environmental failures.  New failure modes\n"
        "get a new subclass in repro/errors.py."
    )

    #: the hierarchy itself and its tests may raise anything.
    EXEMPT = ("repro/errors.py",)

    BUILTIN_HINTS = {
        "ValueError": (
            "InvalidConfig, BoundViolation, WriterBoundExceeded, or"
            " WireDecodeError"
        ),
        "RuntimeError": (
            "QuorumUnavailable, StaleShardMap, ShardCapacityExceeded, or"
            " SessionClosed"
        ),
    }

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        if module.in_exempt_dirs(self.EXEMPT):
            return
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: "Optional[str]" = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name not in self.BUILTIN_HINTS:
                continue
            yield self.finding(
                module,
                node,
                f"bare 'raise {name}' loses the error taxonomy; raise"
                f" a repro.errors class instead (e.g."
                f" {self.BUILTIN_HINTS[name]} — `repro lint --explain"
                " R010` for the full map)",
            )
