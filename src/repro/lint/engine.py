"""The ``repro lint`` engine: files, findings, suppressions, rules.

The linter enforces the *simulation discipline* the reproduction's
claims rest on — determinism under a seed and base-object access
through the invocation/response interface of the paper's model (see
``docs/LINTING.md`` for the rule catalog and the rationale).  This
module is the rule-agnostic machinery:

* :class:`Finding` — one diagnostic, with a content *fingerprint* that
  survives line-number shifts (it hashes the rule id, the module's
  package-relative path and the normalized source line, not the line
  number), so baselines do not rot on unrelated edits;
* :class:`ModuleInfo` / :class:`ProjectIndex` — parsed modules plus
  cross-module name resolution (rules like R003 follow ``from x import
  Y`` chains to the class definition);
* :class:`Suppressions` — per-line ``# repro-lint: disable=R00x
  <reason>`` directives (on the flagged line or the line above);
* :class:`Rule` and the rule registry — rules self-register via
  :func:`register_rule`; the concrete rules live in
  :mod:`repro.lint.rules`;
* :func:`lint_paths` — collect, check, suppress, baseline.
"""

from __future__ import annotations

import ast
import hashlib
import multiprocessing
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: rule id for files the parser rejects (not a registered rule: a file
#: that does not parse cannot be checked, which is itself a finding).
PARSE_ERROR = "R000"

_MP_CONTEXT: "Optional[multiprocessing.context.BaseContext]"
try:
    # Fork keeps workers identical to the parent (registered rules and
    # all) and skips re-import; same pattern as repro.exec.engine.
    _MP_CONTEXT = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover — non-POSIX platforms
    _MP_CONTEXT = None

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?:\s+(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule, location, message, stable fingerprint."""

    rule: str
    path: str  # path as passed to the linter (for display)
    relpath: str  # package-relative posix path (stable across checkouts)
    line: int
    col: int
    message: str
    fingerprint: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> "Dict[str, object]":
        return {
            "rule": self.rule,
            "path": self.path,
            "relpath": self.relpath,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class Suppressions:
    """Per-line ``# repro-lint: disable=R00x[,R00y] <reason>`` directives.

    A directive silences matching findings on its own line and on the
    line directly below it (so long statements can carry the directive on
    a comment line above).  A reason string is required by convention —
    the self-cleanliness test rejects reasonless directives in ``src/``.
    """

    def __init__(self, lines: "Sequence[str]") -> None:
        #: line number -> (rule ids, reason or None)
        self.by_line: "Dict[int, Tuple[Set[str], Optional[str]]]" = {}
        for number, text in enumerate(lines, start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")}
            self.by_line[number] = (ids, match.group("reason"))

    def matches(self, rule: str, line: int) -> bool:
        for candidate in (line, line - 1):
            entry = self.by_line.get(candidate)
            if entry is not None and rule in entry[0]:
                return True
        return False

    def reasonless(self) -> "List[int]":
        """Line numbers of directives that carry no reason string."""
        return sorted(
            number
            for number, (_, reason) in self.by_line.items()
            if not reason
        )


@dataclass
class ModuleInfo:
    """One parsed source file plus its package coordinates."""

    path: Path
    display_path: str
    text: str
    lines: "List[str]"
    tree: "Optional[ast.Module]"
    relpath: str  # "repro/sim/kernel.py", or the bare filename
    module_name: "Optional[str]"  # "repro.sim.kernel" when derivable
    root: "Optional[Path]"  # directory containing the top-level package
    suppressions: Suppressions = field(init=False)

    def __post_init__(self) -> None:
        self.suppressions = Suppressions(self.lines)

    # -- path scoping used by the rules -----------------------------------

    def in_package_dirs(self, prefixes: "Tuple[str, ...]") -> bool:
        """True when the module lives under one of the package prefixes.

        Files outside the ``repro`` package (rule-fixture files in test
        temp dirs) count as in scope for every rule, so fixtures exercise
        rules without replicating the package layout.
        """
        if not self._in_package:
            return True
        return self._under(prefixes)

    def in_exempt_dirs(self, prefixes: "Tuple[str, ...]") -> bool:
        """True when the module is exempt (only meaningful in-package)."""
        return self._in_package and self._under(prefixes)

    @property
    def _in_package(self) -> bool:
        return self.relpath.startswith("repro/") or self.relpath == "repro"

    def _under(self, prefixes: "Tuple[str, ...]") -> bool:
        return any(
            self.relpath == prefix or self.relpath.startswith(prefix + "/")
            for prefix in prefixes
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _package_coordinates(
    path: Path,
) -> "Tuple[str, Optional[str], Optional[Path]]":
    """Derive (relpath, module name, package root) from a file path.

    The last ``repro`` path component anchors the package; fixture files
    outside any ``repro`` directory fall back to their bare filename.
    """
    parts = path.parts
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            anchor = index
            break
    if anchor is None:
        return path.name, path.stem, path.parent
    rel_parts = parts[anchor:]
    relpath = "/".join(rel_parts)
    module_parts = list(rel_parts)
    module_parts[-1] = module_parts[-1][: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return relpath, ".".join(module_parts), Path(*parts[:anchor]) or Path(".")


def load_module(path: Path, display_path: "Optional[str]" = None) -> ModuleInfo:
    """Read and parse one file (``tree`` is None on syntax errors)."""
    text = path.read_text(encoding="utf-8")
    relpath, module_name, root = _package_coordinates(path)
    try:
        tree: "Optional[ast.Module]" = ast.parse(text, filename=str(path))
    except SyntaxError:
        tree = None
    return ModuleInfo(
        path=path,
        display_path=display_path or str(path),
        text=text,
        lines=text.splitlines(),
        tree=tree,
        relpath=relpath,
        module_name=module_name,
        root=root,
    )


class ProjectIndex:
    """Cross-module lookups over the linted file set (plus lazy extras).

    ``module(dotted)`` prefers modules already in the linted set and
    falls back to parsing the file from any known package root, so rules
    can resolve imports that point outside the paths being linted (e.g.
    linting only ``core/emulation.py`` still resolves the emulation
    classes it imports).
    """

    def __init__(self, modules: "Sequence[ModuleInfo]") -> None:
        self.modules = list(modules)
        self.by_name: "Dict[str, ModuleInfo]" = {}
        self.roots: "List[Path]" = []
        for module in modules:
            if module.module_name and module.module_name not in self.by_name:
                self.by_name[module.module_name] = module
            for root in (module.root, module.path.parent):
                if root is not None and root not in self.roots:
                    self.roots.append(root)
        self._extra: "Dict[str, Optional[ModuleInfo]]" = {}

    def module(self, dotted: str) -> "Optional[ModuleInfo]":
        found = self.by_name.get(dotted)
        if found is not None:
            return found
        if dotted in self._extra:
            return self._extra[dotted]
        resolved: "Optional[ModuleInfo]" = None
        tail = Path(*dotted.split("."))
        for root in self.roots:
            for candidate in (
                root / tail.with_suffix(".py"),
                root / tail / "__init__.py",
            ):
                if candidate.is_file():
                    resolved = load_module(candidate)
                    break
            if resolved is not None:
                break
        self._extra[dotted] = resolved
        return resolved

    # -- name resolution ---------------------------------------------------

    def resolve_class(
        self, module: ModuleInfo, name: str, _depth: int = 0
    ) -> "Optional[Tuple[ast.ClassDef, ModuleInfo]]":
        """Find the ClassDef bound to ``name`` in ``module``.

        Follows ``from x import Y [as Z]`` chains (including imports
        nested inside function bodies, the registry's lazy-import idiom)
        up to a small depth; returns None when the definition cannot be
        located statically.
        """
        if module.tree is None or _depth > 8:
            return None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node, module
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                if (alias.asname or alias.name) != name:
                    continue
                target = self._absolute_module(module, node)
                if target is None:
                    return None
                imported = self.module(target)
                if imported is None:
                    return None
                return self.resolve_class(imported, alias.name, _depth + 1)
        return None

    @staticmethod
    def _absolute_module(
        module: ModuleInfo, node: ast.ImportFrom
    ) -> "Optional[str]":
        if not node.level:
            return node.module
        if module.module_name is None:
            return None
        base = module.module_name.split(".")
        if node.level > len(base):
            return None
        base = base[: len(base) - node.level]
        if node.module:
            base.append(node.module)
        return ".".join(base)


# -- rules ------------------------------------------------------------------

#: rule id -> rule instance, in registration order.
RULES: "Dict[str, Rule]" = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


class Rule:
    """Base class: one id, one message family, one AST pass."""

    id = ""
    title = ""

    def check(
        self, module: ModuleInfo, project: ProjectIndex
    ) -> "Iterator[Finding]":
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            relpath=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def fingerprint(relpath: str, rule: str, line_text: str, occurrence: int) -> str:
    """Content hash identifying a finding independent of line numbers."""
    blob = f"{rule}::{relpath}::{line_text.strip()}::{occurrence}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


# -- running ----------------------------------------------------------------


def collect_files(paths: "Iterable[Path | str]") -> "List[Path]":
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: "Set[Path]" = set()
    ordered: "List[Path]" = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(
                p
                for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif entry.is_file():
            candidates = [entry]
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: "List[Finding]"  # every finding, pre-suppression
    active: "List[Finding]"  # findings that fail the run
    suppressed: "List[Finding]"  # silenced by inline directives
    baselined: "List[Finding]"  # silenced by the baseline file
    stale_baseline: "List[Dict[str, str]]"  # baseline entries that no longer match
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.active


def run_rules(
    modules: "Sequence[ModuleInfo]",
    rule_ids: "Optional[Iterable[str]]" = None,
) -> "List[Finding]":
    """Run the (selected) rules over parsed modules; assign fingerprints."""
    # Import for the side effect of registering the built-in rules.
    import repro.lint.rules  # noqa: F401
    import repro.lint.rules_flow  # noqa: F401

    selected = [
        RULES[rule_id]
        for rule_id in (rule_ids if rule_ids is not None else RULES)
    ]
    project = ProjectIndex(modules)
    findings: "List[Finding]" = []
    for module in modules:
        if module.tree is None:
            findings.append(
                Finding(
                    rule=PARSE_ERROR,
                    path=module.display_path,
                    relpath=module.relpath,
                    line=1,
                    col=1,
                    message="file does not parse",
                )
            )
            continue
        for rule in selected:
            findings.extend(rule.check(module, project))
    findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.rule))
    occurrences: "Dict[Tuple[str, str, str], int]" = {}
    stamped: "List[Finding]" = []
    for item in findings:
        module = next(
            (m for m in modules if m.display_path == item.path), None
        )
        text = module.line_text(item.line) if module else ""
        key = (item.rule, item.relpath, text.strip())
        occurrence = occurrences.get(key, 0)
        occurrences[key] = occurrence + 1
        stamped.append(
            Finding(
                **{
                    **item.to_dict(),
                    "fingerprint": fingerprint(
                        item.relpath, item.rule, text, occurrence
                    ),
                }
            )
        )
    return stamped


def _split_suppressed(
    modules: "Sequence[ModuleInfo]", findings: "Sequence[Finding]"
) -> "Tuple[List[Finding], List[Finding]]":
    """Partition findings into (unsuppressed, suppressed) via directives."""
    by_display = {module.display_path: module for module in modules}
    unsuppressed: "List[Finding]" = []
    suppressed: "List[Finding]" = []
    for item in findings:
        module = by_display.get(item.path)
        if module is not None and module.suppressions.matches(
            item.rule, item.line
        ):
            suppressed.append(item)
        else:
            unsuppressed.append(item)
    return unsuppressed, suppressed


def _analyze_chunk(
    payload: "Tuple[Tuple[str, ...], Optional[Tuple[str, ...]]]",
) -> "Tuple[List[Finding], List[Finding], List[Finding]]":
    """Worker body for parallel lint: one chunk of whole files.

    Fingerprint occurrence counters and suppression lookups are both
    per-file, so any whole-file partition of the input produces the
    same findings as a sequential run.
    """
    file_strs, rule_ids = payload
    modules = [load_module(Path(item)) for item in file_strs]
    findings = run_rules(
        modules, list(rule_ids) if rule_ids is not None else None
    )
    unsuppressed, suppressed = _split_suppressed(modules, findings)
    return findings, unsuppressed, suppressed


def _FINDING_ORDER(item: Finding) -> "Tuple[str, int, int, str]":
    return (item.relpath, item.line, item.col, item.rule)


def lint_paths(
    paths: "Iterable[Path | str]",
    baseline: "Optional[object]" = None,
    rule_ids: "Optional[Iterable[str]]" = None,
    jobs: int = 0,
) -> LintResult:
    """Lint files/directories; apply suppressions, then the baseline.

    ``jobs > 1`` fans whole files out across a fork-context process
    pool (``repro lint --jobs``); output order and fingerprints are
    identical to a sequential run.  Falls back to sequential when fork
    is unavailable or the pool breaks.
    """
    files = collect_files(paths)
    rule_list = list(rule_ids) if rule_ids is not None else None
    findings: "Optional[List[Finding]]" = None
    active: "List[Finding]" = []
    suppressed: "List[Finding]" = []
    if jobs > 1 and _MP_CONTEXT is not None and len(files) > 1:
        workers = min(jobs, len(files))
        chunks = [
            tuple(str(path) for path in files[index::workers])
            for index in range(workers)
        ]
        tasks = [
            (chunk, tuple(rule_list) if rule_list is not None else None)
            for chunk in chunks
            if chunk
        ]
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=len(tasks), mp_context=_MP_CONTEXT
            ) as pool:
                parts = list(pool.map(_analyze_chunk, tasks))
        except Exception:  # pragma: no cover — broken pool, fall back
            parts = None
        if parts is not None:
            findings = sorted(
                (item for part in parts for item in part[0]),
                key=_FINDING_ORDER,
            )
            active = sorted(
                (item for part in parts for item in part[1]),
                key=_FINDING_ORDER,
            )
            suppressed = sorted(
                (item for part in parts for item in part[2]),
                key=_FINDING_ORDER,
            )
    if findings is None:
        modules = [load_module(path) for path in files]
        findings = run_rules(modules, rule_list)
        active, suppressed = _split_suppressed(modules, findings)
    baselined: "List[Finding]" = []
    stale: "List[Dict[str, str]]" = []
    if baseline is not None:
        active, baselined, stale = baseline.partition(active)
    return LintResult(
        findings=findings,
        active=active,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files=len(files),
    )


def git_changed_files(cwd: "Path | str" = ".") -> "Optional[Set[Path]]":
    """Files changed relative to HEAD (staged, unstaged, untracked).

    Returns resolved absolute paths, or None when ``git`` is missing or
    the directory is not a work tree — callers fall back to a full run.
    """
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    changed: "Set[Path]" = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=str(cwd),
                capture_output=True,
                text=True,
                timeout=30,
                check=True,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add((Path(cwd) / line.strip()).resolve())
    return changed
