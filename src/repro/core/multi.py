"""Several emulated registers sharing one server fleet.

Production stores keep many objects on the same machines: crashes hit
every object on the server at once, and per-server storage is the *sum*
over objects — which is what makes Theorem 7's per-server capacity bound
bite.  :class:`MultiRegisterDeployment` deploys ``m`` independent
Algorithm 2 registers over a single :class:`~repro.sim.server.ObjectMap`
and one kernel: one crash event, one schedule, ``m`` consistency-checked
registers.

Each register keeps its own layout (offset into the shared object-id
space); its clients' collects scan only its own registers, so the
emulations compose without interference — asserted by the test suite.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.layout import RegisterLayout
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.kernel import Environment
from repro.sim.scheduling import Scheduler
from repro.sim.system import Placement, SimSystem, build_system


class OffsetLayout:
    """A view of a :class:`RegisterLayout` shifted into shared id space."""

    def __init__(self, base: RegisterLayout, offset: int):
        self.base = base
        self.offset = offset

    @property
    def k(self) -> int:
        return self.base.k

    @property
    def n(self) -> int:
        return self.base.n

    @property
    def f(self) -> int:
        return self.base.f

    @property
    def total_registers(self) -> int:
        return self.base.total_registers

    def _shift(self, object_id: ObjectId) -> ObjectId:
        return ObjectId(object_id.index + self.offset)

    def registers_for_writer(self, writer_index: int) -> "List[ObjectId]":
        return [
            self._shift(oid)
            for oid in self.base.registers_for_writer(writer_index)
        ]

    def registers_on_server(self, server_id: ServerId) -> "List[ObjectId]":
        return [
            self._shift(oid)
            for oid in self.base.registers_on_server(server_id)
        ]

    def server_of(self, object_id: ObjectId) -> ServerId:
        return self.base.server_of(ObjectId(object_id.index - self.offset))

    def read_quorum_servers(self) -> int:
        return self.base.read_quorum_servers()

    def storage_profile(self):
        return self.base.storage_profile()


class _FilteredHistory(History):
    """A History that records only operations of selected clients."""

    def __init__(self, client_ids):
        super().__init__()
        self.client_ids = set(client_ids)

    def admit(self, client_id: ClientId) -> None:
        self.client_ids.add(client_id)

    def on_invoke(self, event) -> None:
        if event.client_id in self.client_ids:
            super().on_invoke(event)

    def on_return(self, event) -> None:
        if event.seq in self.ops:
            super().on_return(event)


#: Public alias: per-client-set filtered histories are the building block
#: of any multi-register deployment (each register audits only its own
#: clients' operations).  Used by :mod:`repro.apps.shard`.
FilteredHistory = _FilteredHistory


class _RegisterView:
    """One register of the deployment, with the emulation interface the
    workload runner and checkers expect (kernel / object_map / history /
    add_writer / add_reader)."""

    def __init__(self, deployment, index: int, layout: OffsetLayout):
        self.deployment = deployment
        self.index = index
        self.layout = layout
        self.history = _FilteredHistory(set())
        self._writers: "Dict[int, ClientId]" = {}
        self._next_reader = 0

    @property
    def kernel(self):
        return self.deployment.kernel

    @property
    def object_map(self):
        return self.deployment.object_map

    @property
    def system(self):
        return self.deployment.system

    def _client_id(self, slot: int) -> ClientId:
        # Partition the client-id space: register i gets ids i*100000+slot.
        return ClientId(self.index * 100_000 + slot)

    def add_writer(self, writer_index: int):
        from repro.core.ws_register import WSRegisterClient

        if writer_index in self._writers:
            raise ValueError(
                f"writer {writer_index} already added to register"
                f" {self.index}"
            )
        client_id = self._client_id(writer_index)
        protocol = WSRegisterClient(
            self.layout,
            self.object_map,
            writer_index=writer_index,
            initial_value=self.deployment.initial_value,
        )
        runtime = self.kernel.add_client(client_id, protocol)
        self.history.admit(client_id)
        self._writers[writer_index] = client_id
        return runtime

    def add_reader(self):
        from repro.core.ws_register import WSRegisterClient

        client_id = self._client_id(50_000 + self._next_reader)
        self._next_reader += 1
        protocol = WSRegisterClient(
            self.layout,
            self.object_map,
            writer_index=None,
            initial_value=self.deployment.initial_value,
        )
        runtime = self.kernel.add_client(client_id, protocol)
        self.history.admit(client_id)
        return runtime


class MultiRegisterDeployment:
    """``m`` Algorithm 2 registers on one shared fleet of ``n`` servers."""

    def __init__(
        self,
        m: int,
        k: int,
        n: int,
        f: int,
        initial_value: Any = None,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        if m <= 0:
            raise ValueError("need at least one register")
        self.m = m
        self.initial_value = initial_value
        base_layouts = [RegisterLayout(k, n, f, initial_value) for _ in range(m)]
        for layout in base_layouts:
            layout.validate()
        placements: "List[Placement]" = []
        self.layouts: "List[OffsetLayout]" = []
        offset = 0
        for layout in base_layouts:
            self.layouts.append(OffsetLayout(layout, offset))
            placements.extend(layout.placements())
            offset += layout.total_registers
        self.system: SimSystem = build_system(
            n, placements, scheduler=scheduler, environment=environment
        )
        self.registers = [
            _RegisterView(self, index, self.layouts[index])
            for index in range(m)
        ]
        for view in self.registers:
            self.kernel.add_listener(view.history)

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def object_map(self):
        return self.system.object_map

    def register(self, index: int) -> _RegisterView:
        return self.registers[index]

    def crash_server(self, server_index: int) -> None:
        """One crash event: every register loses that server at once."""
        self.kernel.crash_server(ServerId(server_index))

    @property
    def total_registers(self) -> int:
        return self.object_map.n_objects

    def storage_profile(self):
        """Per-server storage summed over all m registers."""
        return self.object_map.storage_profile()
