"""Algorithm 2: the f-tolerant wait-free WS-Regular k-register.

The upper-bound construction of Section 3.3 / Appendix D, implemented line
by line against the paper's pseudo-code:

* Registers store timestamped values (:class:`~repro.sim.values.TSVal`).
* ``write(v)`` (lines 1-12): collect from a read quorum, pick a higher
  timestamp, trigger low-level writes on every register of the writer's
  set ``R_j`` that is **not covered** by one of the writer's own pending
  writes (lines 6-10), wait for ``|R_j| - f`` responses (line 11).
* ``read()`` (lines 17-19): collect and return the value with the highest
  timestamp.
* ``collect()`` (lines 20-26): scan all registers of every server, wait
  for ``n - f`` complete per-server scans.
* Respond handlers (lines 27-34): read responds accumulate into
  ``rdSet``; a write respond on a register the writer still covers
  immediately retriggers a write of the *current* timestamped value
  (lines 30-32), otherwise it counts toward the write quorum (line 34).

The covered-register avoidance (lines 6-10) is exactly what bounds each
writer's footprint to ``f`` covered registers after each complete write —
the property the lower bound shows is unavoidable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.layout import RegisterLayout
from repro.sim.client import ClientProtocol, Context
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.kernel import Environment
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import Scheduler
from repro.sim.system import SimSystem, build_system
from repro.sim.values import TSVal, bottom_tsval


class WSRegisterClient(ClientProtocol):
    """Client-side state machine of Algorithm 2.

    ``writer_index`` selects the register set ``R_{floor(w/z)}``; readers
    pass ``writer_index=None`` and may only invoke ``read``.
    """

    def __init__(
        self,
        layout: RegisterLayout,
        object_map,
        writer_index: "Optional[int]" = None,
        initial_value: Any = None,
    ):
        self.layout = layout
        self.object_map = object_map
        self.writer_index = writer_index
        # State_i of the paper: tsVal, rdSet, wrSet, coverSet.
        self.ts_val: TSVal = bottom_tsval(initial_value)
        self.rd_set: "List[TSVal]" = []
        self.wr_set: "Set[ObjectId]" = (
            set(layout.registers_for_writer(writer_index))
            if writer_index is not None
            else set()
        )
        self.cover_set: "Set[ObjectId]" = set()
        # Kernel-facing bookkeeping (not part of the paper's state): which
        # of our read ops responded, to advance the per-server scans, and
        # the server fleet snapshot (fixed once the system is built)
        # taken at the first collect.
        self._read_done: "Set[OpId]" = set()
        self._server_ids: "Optional[tuple]" = None

    # -- high-level operations -------------------------------------------------

    def op_write(self, ctx: Context, value: Any):
        """Lines 1-12."""
        if self.writer_index is None:
            raise RuntimeError("read-only client invoked write")
        collected = yield from self._collect(ctx)  # line 2
        self.ts_val = TSVal(  # lines 3-4
            ts=collected.ts + 1, wid=self.writer_index, val=value
        )
        registers = self.layout.registers_for_writer(self.writer_index)
        # Lines 6-10 execute atomically (single coroutine segment), which
        # realizes the "do not handle responds between lines 6 to 10" note.
        self.cover_set = set(registers) - self.wr_set  # line 6
        self.wr_set = set()  # line 7
        for register in registers:  # lines 8-10
            if register not in self.cover_set:
                ctx.trigger(register, OpKind.WRITE, self.ts_val)
        quorum = len(registers) - self.layout.f
        yield lambda: len(self.wr_set) >= quorum  # line 11
        return "ack"  # line 12

    def op_read(self, ctx: Context):
        """Lines 17-19."""
        collected = yield from self._collect(ctx)
        return collected.val

    # -- collect / scan (lines 13-16, 20-26) ---------------------------------------

    def _collect(self, ctx: Context):
        self.rd_set = []  # line 21
        server_ids = self._server_ids
        if server_ids is None:
            server_ids = self._server_ids = tuple(self.object_map.server_ids)
        handles = [
            ctx.spawn(self._scan(ctx, server_id), name=f"scan-{server_id}")
            for server_id in server_ids  # line 22
        ]
        needed = self.layout.read_quorum_servers()
        yield ctx.count_done(handles, needed)  # line 24
        best = self.rd_set[0]
        for candidate in self.rd_set[1:]:  # lines 25-26
            if candidate > best:
                best = candidate
        return best

    def _scan(self, ctx: Context, server_id: ServerId):
        """Lines 13-16: read every register of one server, sequentially.

        "Every register" means every register *of this emulation* — when
        several emulations share a server fleet, delta^-1(s) is taken
        within the emulation's own base-object set.
        """
        for register in self.layout.registers_on_server(server_id):
            op_id = ctx.trigger(register, OpKind.READ)  # line 15
            yield lambda op_id=op_id: op_id in self._read_done  # line 16
            self._read_done.discard(op_id)

    # -- respond handlers (lines 27-34) -----------------------------------------------

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        if op.kind is OpKind.READ:
            self.rd_set.append(op.result)  # line 28
            self._read_done.add(op.op_id)
            return
        if op.kind is OpKind.WRITE:
            register = op.object_id
            if register in self.cover_set:  # lines 30-32
                self.cover_set.discard(register)
                ctx.trigger(register, OpKind.WRITE, self.ts_val)
            else:  # line 34
                self.wr_set.add(register)


class WSRegisterEmulation:
    """A deployed Algorithm 2 instance: layout, servers, kernel, clients.

    Resource complexity is ``kf + ceil(k/z)(f+1)`` base registers
    (Theorem 3); ``emulation.layout.total_registers`` exposes the count.
    """

    def __init__(
        self,
        k: int,
        n: int,
        f: int,
        initial_value: Any = None,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        self.layout = RegisterLayout(k, n, f, initial_value)
        self.layout.validate()
        self.initial_value = initial_value
        self.system: SimSystem = build_system(
            n,
            self.layout.placements(),
            scheduler=scheduler,
            environment=environment,
        )
        self._writers: "Dict[int, ClientId]" = {}
        self._next_reader = 0

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    def add_writer(
        self, writer_index: int, client_id: "Optional[ClientId]" = None
    ):
        """Register writer ``w`` (0-based, < k)."""
        if writer_index in self._writers:
            raise ValueError(f"writer {writer_index} already added")
        cid = client_id or ClientId(writer_index)
        protocol = WSRegisterClient(
            self.layout,
            self.object_map,
            writer_index=writer_index,
            initial_value=self.initial_value,
        )
        runtime = self.kernel.add_client(cid, protocol)
        self._writers[writer_index] = cid
        return runtime

    def add_reader(self, client_id: "Optional[ClientId]" = None):
        """Register a reader (readers are unbounded)."""
        if client_id is None:
            client_id = ClientId(self.layout.k + 1000 + self._next_reader)
            self._next_reader += 1
        protocol = WSRegisterClient(
            self.layout,
            self.object_map,
            writer_index=None,
            initial_value=self.initial_value,
        )
        return self.kernel.add_client(client_id, protocol)

    def writer_client_id(self, writer_index: int) -> ClientId:
        return self._writers[writer_index]
