"""Covering bookkeeping: Definition 1 of the paper, executable.

Tracks, from kernel events:

* ``Cov(t)`` — registers covered by a pending low-level write (a
  *covering write*),
* ``C(t)`` — clients that have completed a high-level write,

and, per adversary phase ``i`` (started at time ``t_{i-1}``):

* ``Tr_i(t)`` — registers with a write triggered during the phase,
* ``Rr_i(t)`` — registers with a phase write that already responded,
* ``Cov_i(t) = Cov(t) \\ Cov(t_{i-1})`` — newly covered registers,
* ``Q_i(t)`` — ``delta(Cov_i(t)) \\ F`` while its size is <= f, frozen
  otherwise (Definition 1.4),
* ``F_i(t)`` — servers of ``F`` with a responded phase write
  (Definition 1.5),
* ``M_i(t)`` — servers of ``F`` covered by a phase write but without any
  responded phase write (Definition 1.6),
* ``G_i(t)`` — ``M_i(t)`` when ``|Q_i(t)| < |F_i(t)|``, else empty
  (Definition 1.7).

State is updated at the end of every kernel step, so between steps the
tracker reflects the paper's time-``t`` configuration — exactly when the
adversary consults it.  :meth:`CoveringTracker.check_lemma2` asserts the
invariants of Lemma 2 (those meaningful under the adversary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.sim.events import (
    EventListener,
    RespondEvent,
    ReturnEvent,
    TriggerEvent,
)
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.server import ObjectMap


@dataclass
class PhaseState:
    """Per-phase (Definition 1) bookkeeping."""

    index: int
    start_time: int
    F: "FrozenSet[ServerId]"
    cov_prev: "FrozenSet[ObjectId]"
    completed_prev: "FrozenSet[ClientId]"
    tri: "Set[ObjectId]" = field(default_factory=set)
    rri: "Set[ObjectId]" = field(default_factory=set)
    qi: "Set[ServerId]" = field(default_factory=set)
    #: registers with a write triggered during this phase that is pending
    _phase_pending: "Dict[ObjectId, Set[int]]" = field(default_factory=dict)


class CoveringTracker(EventListener):
    """Maintains Cov(t), C(t) and the Definition 1 phase sets."""

    def __init__(self, object_map: ObjectMap, f: int):
        self.object_map = object_map
        self.f = f
        #: pending covering writes per register: ObjectId -> set of op ids
        self._pending_writes: "Dict[ObjectId, Set[int]]" = {}
        #: op id -> op record, for all pending mutators
        self.pending_ops: "Dict[int, object]" = {}
        self.completed_writers: "Set[ClientId]" = set()
        self.phase: "Optional[PhaseState]" = None
        self.write_name = "write"
        self._lemma2_prev: "Optional[dict]" = None
        #: monotone state-version counter, bumped on every change that can
        #: affect the Definition 1 sets; consumers (the adversary's veto
        #: cache) use it to memoize derived state between changes.
        self.version = 0

    # -- global quantities -------------------------------------------------

    def cov(self) -> "Set[ObjectId]":
        """``Cov(t)``: registers with at least one pending write."""
        return {oid for oid, ops in self._pending_writes.items() if ops}

    def completed(self) -> "Set[ClientId]":
        """``C(t)``: clients that completed a high-level write."""
        return set(self.completed_writers)

    # -- phases ------------------------------------------------------------

    def start_phase(
        self, index: int, F: "Set[ServerId]", time: int
    ) -> PhaseState:
        """Begin phase ``i`` at time ``t_{i-1}`` with protected set F."""
        if len(F) != self.f + 1:
            raise ValueError(
                f"|F| must be f+1 = {self.f + 1}, got {len(F)}"
            )
        self.phase = PhaseState(
            index=index,
            start_time=time,
            F=frozenset(F),
            cov_prev=frozenset(self.cov()),
            completed_prev=frozenset(self.completed_writers),
        )
        self._lemma2_prev = None
        self.version += 1
        self._update_qi()
        return self.phase

    def end_phase(self) -> PhaseState:
        if self.phase is None:
            raise RuntimeError("no active phase")
        finished, self.phase = self.phase, None
        self.version += 1
        return finished

    # -- derived phase sets (Definition 1) -----------------------------------

    def covi(self) -> "Set[ObjectId]":
        """``Cov_i(t) = Cov(t) \\ Cov(t_{i-1})``."""
        assert self.phase is not None
        return self.cov() - self.phase.cov_prev

    def qi(self) -> "Set[ServerId]":
        assert self.phase is not None
        return set(self.phase.qi)

    def fi(self) -> "Set[ServerId]":
        """Servers of F with a register that responded to a phase write."""
        assert self.phase is not None
        return {
            self.object_map.server_of(oid)
            for oid in self.phase.rri
            if self.object_map.server_of(oid) in self.phase.F
        }

    def mi(self) -> "Set[ServerId]":
        """Servers of F covered by phase writes, none of which responded."""
        assert self.phase is not None
        covered_servers = self.object_map.image(self.covi())
        return covered_servers & (self.phase.F - self.fi())

    def gi(self) -> "Set[ServerId]":
        assert self.phase is not None
        if len(self.phase.qi) < len(self.fi()):
            return self.mi()
        return set()

    def _update_qi(self) -> None:
        """Definition 1.4: follow ``delta(Cov_i) \\ F`` while small, else
        freeze."""
        if self.phase is None:
            return
        outside = self.object_map.image(self.covi()) - self.phase.F
        if len(outside) <= self.f:
            self.phase.qi = outside
        # else: Q_i(t) = Q_i(t-1): keep the stored value.

    # -- listener hooks ----------------------------------------------------------

    def on_trigger(self, event: TriggerEvent) -> None:
        op = event.op
        if not op.is_mutator:
            return
        self.version += 1
        self.pending_ops[op.op_id.value] = op
        self._pending_writes.setdefault(op.object_id, set()).add(
            op.op_id.value
        )
        if self.phase is not None:
            self.phase.tri.add(op.object_id)
            self.phase._phase_pending.setdefault(op.object_id, set()).add(
                op.op_id.value
            )
        self._update_qi()

    def on_respond(self, event: RespondEvent) -> None:
        op = event.op
        if not op.is_mutator:
            return
        self.version += 1
        self.pending_ops.pop(op.op_id.value, None)
        pending = self._pending_writes.get(op.object_id)
        if pending is not None:
            pending.discard(op.op_id.value)
        if self.phase is not None:
            phase_pending = self.phase._phase_pending.get(op.object_id)
            if phase_pending is not None and op.op_id.value in phase_pending:
                phase_pending.discard(op.op_id.value)
                self.phase.rri.add(op.object_id)
        self._update_qi()

    def on_return(self, event: ReturnEvent) -> None:
        if event.name == self.write_name:
            self.completed_writers.add(event.client_id)
            self.version += 1

    # -- Lemma 2 invariants --------------------------------------------------------

    def check_lemma2(self) -> None:
        """Assert the Lemma 2 claims that hold under the adversary.

        Call between steps of a run in which the environment behaves like
        ``Ad_i`` (they need not hold in unconstrained runs).
        """
        assert self.phase is not None, "no active phase"
        f = self.f
        F = self.phase.F
        qi, fi, mi = self.qi(), self.fi(), self.mi()
        covi_servers = self.object_map.image(self.covi())
        rri_servers = self.object_map.image(self.phase.rri)

        # (1) Q_i <= delta(Cov_i) \ F
        assert qi <= covi_servers - F, "Lemma 2.1 violated"
        # (4) |F_i| - |Q_i| <= 1
        assert len(fi) - len(qi) <= 1, "Lemma 2.4 violated"
        # (5) |Q_i| <= f
        assert len(qi) <= f, "Lemma 2.5 violated"
        # (6) |F_i| <= f + 1
        assert len(fi) <= f + 1, "Lemma 2.6 violated"
        # (8) |M_i| <= f + 1
        assert len(mi) <= f + 1, "Lemma 2.8 violated"
        # (9) |delta(Cov_i) \ F| >= f  =>  |Q_i| >= f
        if len(covi_servers - F) >= f:
            assert len(qi) >= f, "Lemma 2.9 violated"
        # (10) |delta(Cov_i) \ F| < f  =>  delta(Rr_i) \ F = empty
        if len(covi_servers - F) < f:
            assert not (rri_servers - F), "Lemma 2.10 violated"
        # (11) (Q_i u M_i) disjoint from delta(Rr_i)
        assert not ((qi | mi) & rri_servers), "Lemma 2.11 violated"
        # (2), (3), (7): monotonicity vs. the previous check.
        if self._lemma2_prev is not None:
            prev = self._lemma2_prev
            assert prev["qi"] <= qi, "Lemma 2.2 violated"
            assert prev["fi"] <= fi, "Lemma 2.3 violated"
            if prev["fi"] == fi:
                assert prev["mi"] <= mi, "Lemma 2.7 violated"
        self._lemma2_prev = {"qi": qi, "fi": fi, "mi": mi}
