"""Theorem 5, executed: 2f servers are not enough.

Theorem 5 says every f-tolerant WS-Safe obstruction-free k-register
emulation needs at least 2f+1 servers.  The classic partitioning argument
behind it: with n = 2f servers, any operation that tolerates f crashes
can wait for at most n - f = f servers, and two f-server quorums need not
intersect — so a write can land entirely on one half while a reader,
seeing only the other half (its half *looks* crashed, the write's half is
merely slow), finds nothing.

We cannot quantify over all algorithms, but we can execute the argument
against the natural candidate: :class:`TwoFQuorumEmulation`, an ABD-style
emulation on n = 2f servers whose quorums are any f servers (the largest
quorum an f-tolerant algorithm may await).  :func:`partition_violation`
scripts the split-brain run and returns the WS-Safety violation the
checker finds; all correct emulations in this library refuse such
deployments up front (they validate n >= 2f+1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.consistency.ws import WSViolation, check_ws_safe
from repro.sim.client import ClientProtocol, Context
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.kernel import Action, ActionKind, Environment, Kernel
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import RoundRobinScheduler
from repro.sim.system import SimSystem, build_system
from repro.sim.values import TSVal, bottom_tsval, max_tsval


class TwoFQuorumClient(ClientProtocol):
    """ABD with f-server quorums on n = 2f servers (deliberately unsound).

    This is the *best* an f-tolerant algorithm could do on 2f servers: it
    may never wait for more than n - f = f responses, else a legal crash
    pattern blocks it forever.
    """

    def __init__(self, n: int, f: int, writer_id: int, initial_value: Any):
        self.n = n
        self.f = f
        self.writer_id = writer_id
        self.initial_value = initial_value
        self._results: "Dict[OpId, Any]" = {}

    def _quorum(self, ctx: Context, kind: OpKind, args: tuple):
        ops = [ctx.trigger(ObjectId(i), kind, *args) for i in range(self.n)]
        needed = self.n - self.f  # = f: non-intersecting quorums
        yield lambda: sum(1 for op in ops if op in self._results) >= needed
        return [self._results[op] for op in ops if op in self._results]

    def op_write(self, ctx: Context, value: Any):
        responses = yield from self._quorum(ctx, OpKind.READ_MAX, ())
        ts = max_tsval(responses).ts + 1
        yield from self._quorum(
            ctx, OpKind.WRITE_MAX, (TSVal(ts, self.writer_id, value),)
        )
        return "ack"

    def op_read(self, ctx: Context):
        responses = yield from self._quorum(ctx, OpKind.READ_MAX, ())
        return max_tsval(responses).val

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        self._results[op.op_id] = op.result


class TwoFQuorumEmulation:
    """Deployment of the unsound 2f-server emulation (negative control)."""

    def __init__(self, f: int, initial_value: Any = None, environment=None):
        self.n = 2 * f
        self.f = f
        self.initial_value = initial_value
        placements = [
            (i, "max-register", bottom_tsval(initial_value))
            for i in range(self.n)
        ]
        self.system: SimSystem = build_system(
            self.n,
            placements,
            scheduler=RoundRobinScheduler(),
            environment=environment,
        )
        self._next = 0

    @property
    def kernel(self) -> Kernel:
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    def add_client(self):
        client_id = ClientId(self._next)
        self._next += 1
        protocol = TwoFQuorumClient(
            self.n, self.f, client_id.index, self.initial_value
        )
        return self.kernel.add_client(client_id, protocol)


class _HalfBlocker(Environment):
    """Delays responds on one half of the servers, plus stale mutators.

    The blocked half is indistinguishable (to clients) from f crashed
    servers, so an f-tolerant algorithm must make progress without it.
    When the roles swap, mutators triggered before the swap stay delayed
    (``stale_mutators_before``): asynchrony lets the old write's updates
    hang in flight while the reader races ahead — the same covering power
    the lower bound uses.
    """

    def __init__(self, blocked_servers):
        self.blocked = set(blocked_servers)
        self.stale_mutators_before: "Optional[int]" = None

    def swap(self, new_blocked, now: int) -> None:
        self.blocked = set(new_blocked)
        self.stale_mutators_before = now

    def allows(self, action: Action, kernel: Kernel) -> bool:
        if action.kind is not ActionKind.RESPOND:
            return True
        op = kernel.pending.get(action.op_id)
        if op is None:
            return True
        if (
            self.stale_mutators_before is not None
            and op.is_mutator
            and op.trigger_time < self.stale_mutators_before
        ):
            return False
        server = kernel.object_map.server_of(op.object_id)
        return server not in self.blocked


def partition_violation(f: int = 1) -> "List[WSViolation]":
    """Script the split-brain run on n = 2f servers.

    Phase 1: servers {f..2f-1} are slow; the writer completes W(v1) using
    only the first half.  Phase 2: the halves swap roles; an isolated
    reader completes using only the second half — which never saw v1 —
    and returns the initial value.  WS-Safety is violated.
    """
    first_half = {ServerId(i) for i in range(f)}
    second_half = {ServerId(i) for i in range(f, 2 * f)}

    blocker = _HalfBlocker(second_half)
    emu = TwoFQuorumEmulation(f=f, initial_value="v0", environment=blocker)
    writer = emu.add_client()
    reader = emu.add_client()

    writer.enqueue("write", "v1")
    result = emu.kernel.run(
        max_steps=100_000, until=lambda k: writer.idle and not writer.program
    )
    assert result.satisfied, "write should finish on its half"

    # Swap the slow half; the write's updates remain in flight (delayed).
    blocker.swap(first_half, emu.kernel.time)
    reader.enqueue("read")
    result = emu.kernel.run(
        max_steps=100_000, until=lambda k: reader.idle and not reader.program
    )
    assert result.satisfied, "read should finish on the other half"

    return check_ws_safe(emu.history, initial_value="v0")
