"""The register layout of Section 3.3 (Figure 1) and its quorum system.

Algorithm 2 partitions its base registers into disjoint sets
``R = {R_0, ..., R_{m-1}}`` — ``floor(k/z)`` full sets of ``y = zf+f+1``
registers plus, when ``z`` does not divide ``k``, an overflow set of
``(k mod z)f + f + 1`` registers — and maps the registers of each set to
pairwise distinct servers.  Writer ``w`` (0-based; see DESIGN.md on the
paper's 1-based off-by-one) writes to set ``floor(w / z)``.

Quorums:

* a **write quorum** for writers of set ``R_i`` is any subset of ``R_i``
  of size ``|R_i| - f``;
* a **read quorum** is the set of all registers mapped to some ``n - f``
  servers.

The layout realizes Figure 1's example (n=6, k=5, f=2: five disjoint
columns of five registers over six servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core import bounds
from repro.sim.ids import ObjectId, ServerId
from repro.sim.system import Placement
from repro.sim.values import bottom_tsval


@dataclass(frozen=True)
class LayoutParams:
    """Derived parameters of a layout (paper notation)."""

    k: int
    n: int
    f: int
    z: int
    y: int
    m: int
    total_registers: int


class RegisterLayout:
    """Concrete register-to-server assignment for Algorithm 2.

    Registers get consecutive :class:`ObjectId`\\ s ``0 .. total-1`` in set
    order.  Within each set, registers are placed on the currently
    least-loaded servers (ties broken by server index), which balances
    storage and keeps every set on distinct servers.
    """

    def __init__(self, k: int, n: int, f: int, initial_value=None):
        sizes = bounds.layout_set_sizes(k, n, f)
        z = bounds.z_value(n, f)
        self.params = LayoutParams(
            k=k,
            n=n,
            f=f,
            z=z,
            y=bounds.y_value(n, f),
            m=len(sizes),
            total_registers=sum(sizes),
        )
        self.initial_value = initial_value
        self.set_sizes = sizes
        self.sets: "List[List[ObjectId]]" = []
        self._delta: "Dict[ObjectId, ServerId]" = {}
        # Per-server register lists, computed once (the layout is
        # immutable after _place) — scans ask for these on every collect.
        self._by_server: "Dict[ServerId, List[ObjectId]]" = {}
        self._place(sizes, n)

    def _place(self, sizes: "List[int]", n: int) -> None:
        load = [0] * n
        next_id = 0
        for size in sizes:
            if size > n:
                raise AssertionError(
                    f"register set of size {size} cannot fit on {n} servers"
                )
            # Least-loaded servers first, ties by index: balanced and
            # deterministic, and guarantees |delta(Ri)| = |Ri|.
            chosen = sorted(range(n), key=lambda s: (load[s], s))[:size]
            register_set = []
            for server_index in sorted(chosen):
                object_id = ObjectId(next_id)
                next_id += 1
                register_set.append(object_id)
                self._delta[object_id] = ServerId(server_index)
                load[server_index] += 1
            self.sets.append(register_set)

    # -- paper notation ------------------------------------------------------

    @property
    def k(self) -> int:
        return self.params.k

    @property
    def n(self) -> int:
        return self.params.n

    @property
    def f(self) -> int:
        return self.params.f

    @property
    def z(self) -> int:
        return self.params.z

    @property
    def total_registers(self) -> int:
        return self.params.total_registers

    @property
    def all_registers(self) -> "List[ObjectId]":
        return [oid for register_set in self.sets for oid in register_set]

    def server_of(self, object_id: ObjectId) -> ServerId:
        return self._delta[object_id]

    def set_index_for_writer(self, writer_index: int) -> int:
        """Writer ``w`` (0-based, < k) writes to set ``floor(w / z)``."""
        if not 0 <= writer_index < self.k:
            raise ValueError(
                f"writer index {writer_index} out of range [0, {self.k})"
            )
        return writer_index // self.z

    def registers_for_writer(self, writer_index: int) -> "List[ObjectId]":
        return list(self.sets[self.set_index_for_writer(writer_index)])

    def writers_of_set(self, set_index: int) -> "List[int]":
        """The writer indices assigned to set ``set_index``."""
        start = set_index * self.z
        return list(range(start, min(start + self.z, self.k)))

    def write_quorum_size(self, set_index: int) -> int:
        """``|R_i| - f``: responses a writer must await."""
        return len(self.sets[set_index]) - self.f

    def registers_on_server(self, server_id: ServerId) -> "List[ObjectId]":
        """This layout's registers hosted on ``server_id`` (scans read
        exactly these — relevant when several emulations share a fleet)."""
        cached = self._by_server.get(server_id)
        if cached is None:
            cached = self._by_server[server_id] = [
                oid for oid, sid in self._delta.items() if sid == server_id
            ]
        return list(cached)

    def read_quorum_servers(self) -> int:
        """Scans a reader must complete: ``n - f`` full-server scans."""
        return self.n - self.f

    # -- deployment --------------------------------------------------------------

    def placements(self) -> "List[Placement]":
        """Placement list for :func:`repro.sim.system.build_system`."""
        initial = bottom_tsval(self.initial_value)
        return [
            (self._delta[oid].index, "register", initial)
            for oid in self.all_registers
        ]

    def storage_profile(self) -> "Dict[ServerId, int]":
        profile: "Dict[ServerId, int]" = {
            ServerId(i): 0 for i in range(self.n)
        }
        for server_id in self._delta.values():
            profile[server_id] += 1
        return profile

    # -- validation (the three properties of the Algorithm 2 box) -----------------

    def validate(self) -> None:
        """Assert the layout properties the construction requires."""
        p = self.params
        # 1. Set sizes: full sets of y; overflow of (k mod z)f + f + 1.
        for index, register_set in enumerate(self.sets[:-1]):
            assert len(register_set) == p.y, f"set {index} not full"
        expected_last = (
            p.y if p.k % p.z == 0 else (p.k % p.z) * p.f + p.f + 1
        )
        assert len(self.sets[-1]) == expected_last, "overflow set size wrong"
        # 2. Pairwise disjoint.
        seen: "Set[ObjectId]" = set()
        for register_set in self.sets:
            for oid in register_set:
                assert oid not in seen, f"{oid} in two sets"
                seen.add(oid)
        # 3. |delta(Ri)| = |Ri| (distinct servers within a set).
        for index, register_set in enumerate(self.sets):
            servers = {self._delta[oid] for oid in register_set}
            assert len(servers) == len(register_set), (
                f"set {index} reuses a server"
            )
        # Totals match Theorem 3.
        assert p.total_registers == bounds.register_upper_bound(p.k, p.n, p.f)
        # Each set supports its writers: floor((|Ri|-(f+1))/f) >= #writers.
        for index, register_set in enumerate(self.sets):
            supported = bounds.writers_supported_by_set(
                len(register_set), p.f
            )
            assert supported >= len(self.writers_of_set(index)), (
                f"set {index} supports {supported} writers but has"
                f" {len(self.writers_of_set(index))}"
            )

    # -- rendering (Figure 1) ---------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering in the style of Figure 1.

        One row per server; each cell names the register and the set
        (column) it belongs to.
        """
        rows = []
        by_server: "Dict[ServerId, List[Tuple[int, ObjectId]]]" = {
            ServerId(i): [] for i in range(self.n)
        }
        for set_index, register_set in enumerate(self.sets):
            for oid in register_set:
                by_server[self._delta[oid]].append((set_index, oid))
        width = max(
            (len(f"{oid}(R{si})") for si in range(len(self.sets))
             for oid in self.sets[si]),
            default=6,
        )
        for server_index in range(self.n):
            cells = [
                f"{oid}(R{set_index})".ljust(width)
                for set_index, oid in sorted(by_server[ServerId(server_index)])
            ]
            rows.append(f"s{server_index}: " + " ".join(cells))
        header = (
            f"layout k={self.k} n={self.n} f={self.f}"
            f" z={self.z} sets={self.set_sizes}"
            f" total={self.total_registers}"
        )
        return "\n".join([header] + rows)
