"""An f-tolerant max-register from per-server max-registers.

A companion to the ABD emulation: because max-register values are
*monotone*, replicating one max-register per server and using n-f quorums
yields a fault-tolerant max-register directly — no timestamps needed.
This is the natural building block for the monotone coordination services
(epochs, configuration versions, watermarks) that motivate max-registers
in practice, and it inherits Table 1's space bound: 2f+1 base objects at
the minimum server count, independent of the number of writers.

* ``write_max(v)``: trigger ``write-max(v)`` on every server, await n-f.
* ``read_max()``: trigger ``read-max`` on every server, await n-f, return
  the maximum; with ``write_back=True`` the reader writes the maximum
  back to a quorum first (atomicity needs readers to write — the paper's
  Section 5 point), otherwise the emulation is regular.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.client import ClientProtocol, Context
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.kernel import Environment
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import Scheduler
from repro.sim.system import SimSystem, build_system


class FTMaxRegisterClient(ClientProtocol):
    """Quorum-replicated max-register client."""

    def __init__(
        self, n: int, f: int, initial_value: Any, write_back: bool = True
    ):
        self.n = n
        self.f = f
        self.initial_value = initial_value
        self.write_back = write_back
        self._results: "Dict[OpId, Any]" = {}

    def _quorum(self, ctx: Context, kind: OpKind, args: tuple):
        ops = [ctx.trigger(ObjectId(i), kind, *args) for i in range(self.n)]
        needed = self.n - self.f
        yield lambda: sum(1 for op in ops if op in self._results) >= needed
        return [self._results[op] for op in ops if op in self._results]

    def op_write_max(self, ctx: Context, value: Any):
        yield from self._quorum(ctx, OpKind.WRITE_MAX, (value,))
        return "ok"

    def op_read_max(self, ctx: Context):
        responses = yield from self._quorum(ctx, OpKind.READ_MAX, ())
        best = responses[0]
        for candidate in responses[1:]:
            if candidate > best:
                best = candidate
        if self.write_back:
            yield from self._quorum(ctx, OpKind.WRITE_MAX, (best,))
        return best

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        self._results[op.op_id] = op.result


class FTMaxRegister:
    """A deployed f-tolerant max-register (n servers, one max-register
    base object each; any number of clients)."""

    def __init__(
        self,
        n: int,
        f: int,
        initial_value: Any = 0,
        write_back: bool = True,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        if n < 2 * f + 1:
            raise ValueError(f"need n >= 2f+1, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.initial_value = initial_value
        self.write_back = write_back
        placements = [(i, "max-register", initial_value) for i in range(n)]
        self.system: SimSystem = build_system(
            n,
            placements,
            scheduler=scheduler,
            environment=environment,
            history=History(write_name="write_max", read_name="read_max"),
        )
        self._next_client = 0

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    @property
    def total_objects(self) -> int:
        return self.n

    def add_client(self, client_id: "Optional[ClientId]" = None):
        if client_id is None:
            client_id = ClientId(self._next_client)
        self._next_client = max(self._next_client, client_id.index) + 1
        protocol = FTMaxRegisterClient(
            self.n, self.f, self.initial_value, self.write_back
        )
        return self.kernel.add_client(client_id, protocol)

    # Writers are unbounded; the writer/reader split below only serves the
    # uniform Emulation surface (ops are write_max / read_max).

    def add_writer(self, writer_index: int):
        return self.add_client(ClientId(writer_index))

    def add_reader(self):
        client_id = ClientId(1000 + self._next_client)
        return self.add_client(client_id)
