"""Ablations: break Algorithm 2's mechanisms and watch safety fail.

DESIGN.md calls out two load-bearing design choices in Algorithm 2:

1. **Covered-register avoidance** (lines 6-10): a writer never triggers a
   new low-level write on a register that still has one of its own writes
   pending.  :class:`NoCoverAvoidanceClient` removes this: it always
   triggers on every register of its set.  An old pending write can then
   *revert* a register after newer values landed, and an adversary can
   stack reverts until the latest value is invisible to a legal read
   quorum — a WS-Safety violation (scripted in
   :func:`cover_avoidance_violation`).

2. **The |R_j| - f write quorum** (line 11): waiting for fewer responses
   leaves the value on too few servers.  :class:`SmallQuorumClient` waits
   for |R_j| - (f+1); with one crash and the remaining pending writes
   delayed, a subsequent isolated read misses the value entirely
   (scripted in :func:`small_quorum_violation`).

Both scripts return the recorded history; the WS-Safety checker flags the
stale read, demonstrating that the space the paper charges for these
mechanisms is not an artifact of the algorithm but of the problem.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.consistency.ws import WSViolation, check_ws_safe
from repro.core.ws_register import WSRegisterClient, WSRegisterEmulation
from repro.sim.client import Context
from repro.sim.ids import ObjectId
from repro.sim.kernel import Action, ActionKind, Environment, Kernel
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import RoundRobinScheduler
from repro.sim.values import TSVal


class NoCoverAvoidanceClient(WSRegisterClient):
    """Algorithm 2 minus lines 6-10's cover check: writes everywhere.

    The writer triggers a write on *every* register of its set each
    operation and counts any |R_j| - f responses of the current
    operation, leaving old covering writes free to revert registers
    later.
    """

    def op_write(self, ctx: Context, value: Any):
        if self.writer_index is None:
            raise RuntimeError("read-only client invoked write")
        collected = yield from self._collect(ctx)
        self.ts_val = TSVal(
            ts=collected.ts + 1, wid=self.writer_index, val=value
        )
        registers = self.layout.registers_for_writer(self.writer_index)
        self.cover_set = set()  # ablated: no avoidance, no retrigger
        self.wr_set = set()
        current_ops = set()
        for register in registers:
            current_ops.add(ctx.trigger(register, OpKind.WRITE, self.ts_val))
        self._current_write_ops = current_ops
        quorum = len(registers) - self.layout.f
        yield lambda: len(self.wr_set) >= quorum
        return "ack"

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        if op.kind is OpKind.WRITE:
            if op.op_id in getattr(self, "_current_write_ops", set()):
                self.wr_set.add(op.object_id)
            return
        super().on_response(ctx, op)


class SmallQuorumClient(WSRegisterClient):
    """Algorithm 2 with an insufficient write quorum: |R_j| - (f+1)."""

    def op_write(self, ctx: Context, value: Any):
        if self.writer_index is None:
            raise RuntimeError("read-only client invoked write")
        collected = yield from self._collect(ctx)
        self.ts_val = TSVal(
            ts=collected.ts + 1, wid=self.writer_index, val=value
        )
        registers = self.layout.registers_for_writer(self.writer_index)
        self.cover_set = set(registers) - self.wr_set
        self.wr_set = set()
        for register in registers:
            if register not in self.cover_set:
                ctx.trigger(register, OpKind.WRITE, self.ts_val)
        quorum = len(registers) - (self.layout.f + 1)  # ablated: one short
        yield lambda: len(self.wr_set) >= quorum
        return "ack"


class ScriptedWriteBlocker(Environment):
    """Blocks write responds on selected objects, optionally only for
    writes triggered before a time threshold (so later phases can write
    the same object)."""

    def __init__(self) -> None:
        #: object -> block writes triggered strictly before this time
        #: (None = block all writes on the object)
        self.rules: "dict[ObjectId, Optional[int]]" = {}

    def block(self, object_id: ObjectId, triggered_before: "Optional[int]" = None):
        self.rules[object_id] = triggered_before
        return self

    def unblock(self, object_id: ObjectId):
        self.rules.pop(object_id, None)
        return self

    def allows(self, action: Action, kernel: Kernel) -> bool:
        if action.kind is not ActionKind.RESPOND:
            return True
        op = kernel.pending.get(action.op_id)
        if op is None or not op.is_mutator:
            return True
        threshold = self.rules.get(op.object_id, "absent")
        if threshold == "absent":
            return True
        if threshold is None:
            return False
        return op.trigger_time >= threshold


class _AblatedEmulation(WSRegisterEmulation):
    """WSRegisterEmulation deploying an ablated client class."""

    CLIENT_CLS = WSRegisterClient

    def add_writer(self, writer_index, client_id=None):
        from repro.sim.ids import ClientId

        cid = client_id or ClientId(writer_index)
        protocol = self.CLIENT_CLS(
            self.layout,
            self.object_map,
            writer_index=writer_index,
            initial_value=self.initial_value,
        )
        runtime = self.kernel.add_client(cid, protocol)
        self._writers[writer_index] = cid
        return runtime


class NoCoverAvoidanceEmulation(_AblatedEmulation):
    CLIENT_CLS = NoCoverAvoidanceClient


class SmallQuorumEmulation(_AblatedEmulation):
    CLIENT_CLS = SmallQuorumClient


def _run_until_idle(emulation, runtime, max_steps=100_000) -> None:
    result = emulation.kernel.run(
        max_steps=max_steps,
        until=lambda k: runtime.idle and not runtime.program,
    )
    if not result.satisfied:
        raise AssertionError(f"operation did not finish: {result}")


def cover_avoidance_violation() -> "List[WSViolation]":
    """Script the revert attack against :class:`NoCoverAvoidanceClient`.

    k=1, n=3, f=1, set R_0 = {b0, b1, b2} on servers s0, s1, s2.

    * W1(v1): responds on b0, b1; the write on b2 is held (covering).
    * W2(v2): responds on b0, b1; its b2 write held too.
    * W3(v3): b1 now held instead; responds on b0 and b2 (so W3 returns),
      after which the held W2- and W1-writes on b2 respond **in that
      order**, reverting b2 to v1.
    * Crash s0 (one crash: within f).  An isolated read scans s1, s2 and
      sees only v2, v1 — it returns v2 although W3(v3) completed:
      WS-Safety is violated.

    Returns the checker's violations (non-empty = ablation broke safety).
    """
    env = ScriptedWriteBlocker()
    emu = NoCoverAvoidanceEmulation(
        k=1, n=3, f=1, scheduler=RoundRobinScheduler(), environment=env
    )
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    b0, b1, b2 = emu.layout.registers_for_writer(0)

    env.block(b2)  # all writes on b2 held
    writer.enqueue("write", "v1")
    _run_until_idle(emu, writer)
    writer.enqueue("write", "v2")
    _run_until_idle(emu, writer)

    # Phase 3: free *new* writes on b2, hold everything on b1.
    now = emu.kernel.time
    env.block(b2, triggered_before=now)
    env.block(b1)
    writer.enqueue("write", "v3")
    _run_until_idle(emu, writer)

    # Release the stale covering writes on b2, newest first, so the
    # oldest value lands last (Assumption 1: effect at respond).
    stale = sorted(
        (
            op
            for op in emu.kernel.pending.values()
            if op.object_id == b2 and op.is_mutator
        ),
        key=lambda op: op.trigger_time,
        reverse=True,
    )
    for op in stale:
        emu.kernel.force_respond(op.op_id)
    assert emu.object_map.object(b2).value.val == "v1", "revert failed"

    # One crash (within f), then an isolated read.
    emu.kernel.crash_server(emu.layout.server_of(b0))
    reader.enqueue("read")
    _run_until_idle(emu, reader)
    return check_ws_safe(emu.history)


def small_quorum_violation() -> "List[WSViolation]":
    """Script the lost-write attack against :class:`SmallQuorumClient`.

    k=1, n=3, f=1: the ablated writer awaits only |R_0| - (f+1) = 1
    response.  The adversary lets only the b0 write respond, W1 returns,
    s0 crashes, and the two held writes never land — an isolated read
    finds no trace of v1 and returns the initial value.
    """
    env = ScriptedWriteBlocker()
    emu = SmallQuorumEmulation(
        k=1,
        n=3,
        f=1,
        initial_value="v0",
        scheduler=RoundRobinScheduler(),
        environment=env,
    )
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    b0, b1, b2 = emu.layout.registers_for_writer(0)

    env.block(b1)
    env.block(b2)
    writer.enqueue("write", "v1")
    _run_until_idle(emu, writer)

    emu.kernel.crash_server(emu.layout.server_of(b0))
    reader.enqueue("read")
    _run_until_idle(emu, reader)
    return check_ws_safe(emu.history, initial_value="v0")


def baseline_no_violation() -> "List[WSViolation]":
    """The revert script against the *real* Algorithm 2 client.

    Two defenses neutralize the attack.  First, the covered register b2
    is never rewritten, so there is nothing newer on it to revert — its
    old covering write can only deliver the value it always carried.
    Second, while the adversary holds both b1's fresh writes and b2's old
    ones (more than f servers effectively silent), W3 *refuses to return*
    rather than complete a write it cannot make durable; once fairness
    forces b1 to respond, W3 completes with v3 safely on a quorum.
    """
    env = ScriptedWriteBlocker()
    emu = WSRegisterEmulation(
        k=1, n=3, f=1, scheduler=RoundRobinScheduler(), environment=env
    )
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    b0, b1, b2 = emu.layout.registers_for_writer(0)

    env.block(b2)
    writer.enqueue("write", "v1")
    _run_until_idle(emu, writer)
    writer.enqueue("write", "v2")
    _run_until_idle(emu, writer)
    now = emu.kernel.time
    env.block(b2, triggered_before=now)
    env.block(b1)
    writer.enqueue("write", "v3")
    # With b1 and (old) b2 writes held, the honest writer cannot reach its
    # |R_0| - f = 2 quorum: it waits instead of returning unsafely.
    stalled = emu.kernel.run(
        max_steps=10_000,
        until=lambda k: writer.idle and not writer.program,
    )
    assert not stalled.satisfied, "honest writer returned without a quorum"
    # Fairness: the environment cannot hold a correct server forever.
    env.unblock(b1)
    _run_until_idle(emu, writer)

    # Release the stale covering write on b2 (it carries v1; there is no
    # newer value on b2 to revert).  Algorithm 2's respond handler
    # immediately retriggers the current value onto b2 (lines 30-32).
    stale = sorted(
        (
            op
            for op in emu.kernel.pending.values()
            if op.object_id == b2 and op.is_mutator
        ),
        key=lambda op: op.trigger_time,
        reverse=True,
    )
    for op in stale:
        emu.kernel.force_respond(op.op_id)

    emu.kernel.crash_server(emu.layout.server_of(b0))
    reader.enqueue("read")
    _run_until_idle(emu, reader)
    return check_ws_safe(emu.history)
