"""The lower-bound adversary: Definitions 2 and 3 of the paper.

``BlockedWrites_i(t)`` is the set of covering (pending) low-level writes
``w`` such that either

1. ``w`` was triggered by a client in ``C(t_{i-1})`` (a writer that
   already completed a high-level write before the phase began), or
2. ``w`` was triggered on a base register in
   ``delta^-1(Q_i(t) u G_i(t))``.

The environment *behaves like* ``Ad_i`` when, after ``t_{i-1}``, no
blocked write responds, there are no failures, and every non-blocked
pending operation eventually responds (handled by running a fair
scheduler over the non-vetoed actions).

:class:`AdversaryAdi` implements this as a kernel
:class:`~repro.sim.kernel.Environment`: it vetoes exactly the respond
actions of blocked writes, consulting a
:class:`~repro.core.covering.CoveringTracker` for ``C(t_{i-1})``,
``Q_i(t)`` and ``G_i(t)``.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.covering import CoveringTracker
from repro.sim.ids import ServerId
from repro.sim.kernel import Action, ActionKind, Environment, Kernel
from repro.sim.objects import LowLevelOp


class AdversaryAdi(Environment):
    """Environment behaving like ``Ad_i`` for the tracker's active phase.

    While the tracker has no active phase the adversary allows everything
    (useful between phases and for assembling initial configurations).
    """

    def __init__(self, tracker: CoveringTracker):
        self.tracker = tracker
        #: number of vetoes issued (observability/testing)
        self.vetoes = 0
        # Memoized decision inputs (C(t) and Q_i(t) u G_i(t)), valid for
        # one tracker version; recomputing them per consulted op is the
        # dominant cost of the adversary in long constructed runs.
        self._memo_version: "Optional[int]" = None
        self._memo = None

    def veto_epoch(self, kernel: Kernel):
        """Verdicts only change when the tracker's state does.

        ``BlockedWrites_i(t)`` is a pure function of the tracker (which
        versions itself on every state change), so the kernel may cache
        per-op verdicts between tracker changes instead of re-consulting
        the adversary for ops it already blocked.
        """
        return getattr(self.tracker, "version", None)

    def _decision_state(self):
        version = getattr(self.tracker, "version", None)
        if self._memo is None or version is None or version != self._memo_version:
            completed = self.tracker.completed()
            if self.tracker.phase is not None:
                controlled: "Set[ServerId]" = (
                    self.tracker.qi() | self.tracker.gi()
                )
            else:
                controlled = set()
            self._memo = (completed, controlled)
            self._memo_version = version
        return self._memo

    def blocked(self, op: LowLevelOp) -> bool:
        """Is ``op`` in ``BlockedWrites_i(t)`` right now?

        Condition 1 is applied with ``C(t)`` (a superset of the paper's
        ``C(t_{i-1})``, since the phase's own writer only joins it when
        its write returns — at which point its covering writes are held by
        condition 2 anyway).  Blocking this superset is a legal
        environment behaviour, leaves every constructed run unchanged, and
        keeps covering writes pinned *between* phases too, so reads may be
        interleaved with the construction without deflating ``Cov``.
        """
        if not op.is_mutator or not op.pending:
            return False
        completed, controlled = self._decision_state()
        # Condition 1: triggered by a client that has completed a
        # high-level write.
        if op.client_id in completed:
            return True
        if self.tracker.phase is None:
            return False
        # Condition 2: triggered on a register hosted by Q_i(t) u G_i(t).
        if self.tracker.object_map.server_of(op.object_id) in controlled:
            return True
        return False

    def allows(self, action: Action, kernel: Kernel) -> bool:
        if action.kind is not ActionKind.RESPOND:
            return True
        op = kernel.pending.get(action.op_id)
        if op is None:
            return True
        if self.blocked(op):
            self.vetoes += 1
            return False
        return True
