"""Capacitated layouts: deploying Algorithm 2 under per-server limits.

Theorem 7 lower-bounds the number of servers when each server stores at
most ``m`` registers.  This module supplies the constructive side: given
``(k, f, m)``, find a server count ``n`` and a register layout such that

* the layout is a valid Algorithm 2 layout for ``(k, n, f)`` (disjoint
  sets, distinct servers per set, Theorem 3 register count), and
* no server stores more than ``m`` registers,

using as few servers as possible (scanning ``n`` upward from the maximum
of the Theorem 5 and Theorem 7 floors).  The gap between the achieved
``n`` and Theorem 7's bound quantifies how constructive the bound is for
Algorithm 2's particular layout shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import bounds
from repro.core.layout import RegisterLayout


@dataclass(frozen=True)
class CapacitatedPlan:
    """Result of :func:`capacitated_layout`."""

    k: int
    f: int
    capacity: int
    servers: int
    theorem7_floor: int
    layout: RegisterLayout

    @property
    def max_per_server(self) -> int:
        return max(self.layout.storage_profile().values())

    @property
    def total_registers(self) -> int:
        return self.layout.total_registers

    @property
    def slack_over_floor(self) -> int:
        """Extra servers beyond Theorem 7's lower bound."""
        return self.servers - self.theorem7_floor


def _fits(k: int, n: int, f: int, capacity: int) -> "Optional[RegisterLayout]":
    layout = RegisterLayout(k, n, f)
    if max(layout.storage_profile().values()) <= capacity:
        return layout
    return None


def capacitated_layout(
    k: int, f: int, capacity: int, max_servers: int = 10_000
) -> CapacitatedPlan:
    """Smallest Algorithm 2 deployment respecting a per-server capacity.

    Raises ``ValueError`` for non-positive parameters and
    ``RuntimeError`` if no deployment fits within ``max_servers`` (cannot
    happen for sane inputs: with ``n >= kf + f + 1`` the balanced layout
    stores at most one register per server... and capacity >= 1).
    """
    if k <= 0 or f <= 0:
        raise ValueError("k and f must be positive")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    floor_n = max(
        bounds.min_servers(f),
        bounds.servers_needed_bounded_storage(k, f, capacity),
    )
    n = floor_n
    while n <= max_servers:
        layout = _fits(k, n, f, capacity)
        if layout is not None:
            layout.validate()
            return CapacitatedPlan(
                k=k,
                f=f,
                capacity=capacity,
                servers=n,
                theorem7_floor=bounds.servers_needed_bounded_storage(
                    k, f, capacity
                ),
                layout=layout,
            )
        n += 1
    raise RuntimeError(
        f"no capacitated layout within {max_servers} servers for"
        f" k={k}, f={f}, capacity={capacity}"
    )


def capacity_frontier(k: int, f: int, capacities) -> "list[CapacitatedPlan]":
    """Plans for a list of capacities (the Theorem 7 frontier, achieved)."""
    return [capacitated_layout(k, f, m) for m in capacities]
