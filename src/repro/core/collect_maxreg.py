"""Max-registers from plain read/write registers.

Two constructions from the paper's narrative:

* :class:`CollectMaxRegister` — a wait-free atomic **k-writer max-register
  from exactly k registers** in the standard (failure-free) shared memory
  model: writer ``w`` keeps the maximum of its own writes in register
  ``w``; a reader collects all ``k`` registers and returns the largest
  value.  Theorem 2 proves ``k`` registers are *necessary*, so this
  construction is space-optimal.

* :class:`ReplicatedMaxRegisterEmulation` — the matching upper bound for
  ``n = 2f+1`` mentioned in Sections 1 and 3.2: each server implements a
  k-writer max-register from ``k`` base registers, and an ABD-style quorum
  protocol runs on top, for ``(2f+1)k`` registers total — tight against
  Theorem 1's ``kf + k(f+1) = k(2f+1)`` at ``n = 2f+1``.  Structurally
  this is Algorithm 2 with the *per-writer column* layout (writer ``w``
  owns register ``w`` of every server), so we instantiate the
  Algorithm 2 client over a :class:`PerWriterLayout`, inheriting the
  covered-register avoidance that fault-prone registers force.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.client import ClientProtocol, Context
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.kernel import Environment
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import Scheduler
from repro.sim.system import Placement, SimSystem, build_system
from repro.sim.values import bottom_tsval


class CollectMaxRegisterClient(ClientProtocol):
    """Client of the k-register max-register (standard shared memory).

    Writer ``w`` caches the largest value it has written; ``write_max(v)``
    writes register ``w`` only when ``v`` exceeds the cache (a smaller
    ``write_max`` is a no-op that linearizes immediately).  ``read_max()``
    reads all ``k`` registers and returns the maximum.
    """

    def __init__(
        self, k: int, writer_index: "Optional[int]", initial_value: Any
    ):
        self.k = k
        self.writer_index = writer_index
        self.initial_value = initial_value
        self._local_max = initial_value
        self._results: "Dict[OpId, Any]" = {}

    def op_write_max(self, ctx: Context, value: Any):
        if self.writer_index is None:
            raise RuntimeError("read-only client invoked write_max")
        if value <= self._local_max:
            return "ok"
        self._local_max = value
        op = ctx.trigger(ObjectId(self.writer_index), OpKind.WRITE, value)
        yield lambda: op in self._results
        self._results.pop(op)
        return "ok"

    def op_read_max(self, ctx: Context):
        ops = [
            ctx.trigger(ObjectId(i), OpKind.READ) for i in range(self.k)
        ]
        yield lambda: all(op in self._results for op in ops)
        values = [self._results.pop(op) for op in ops]
        best = self.initial_value
        for value in values:
            if value > best:
                best = value
        return best

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        self._results[op.op_id] = op.result


class CollectMaxRegister:
    """Deployment of the k-register max-register on one reliable server."""

    def __init__(
        self,
        k: int,
        initial_value: Any = 0,
        scheduler: "Optional[Scheduler]" = None,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.initial_value = initial_value
        placements: "List[Placement]" = [
            (0, "register", initial_value) for _ in range(k)
        ]
        self.system: SimSystem = build_system(
            1, placements, scheduler=scheduler
        )
        self._next_reader = 0

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    @property
    def total_registers(self) -> int:
        """Exactly k — matching Theorem 2's lower bound."""
        return self.k

    def add_writer(self, writer_index: int):
        if not 0 <= writer_index < self.k:
            raise ValueError(f"writer index {writer_index} out of range")
        protocol = CollectMaxRegisterClient(
            self.k, writer_index, self.initial_value
        )
        return self.kernel.add_client(ClientId(writer_index), protocol)

    def add_reader(self):
        client_id = ClientId(self.k + 1000 + self._next_reader)
        self._next_reader += 1
        protocol = CollectMaxRegisterClient(self.k, None, self.initial_value)
        return self.kernel.add_client(client_id, protocol)


class PerWriterLayout:
    """The per-writer column layout: writer ``w`` owns one register per
    server (register ids ``w, k + w, 2k + w, ...``).

    Provides the interface :class:`~repro.core.ws_register.WSRegisterClient`
    expects (``f``, ``registers_for_writer``, ``read_quorum_servers``,
    ``placements``), so the Algorithm 2 client runs unchanged over it.
    Total registers: ``n * k`` (``(2f+1)k`` at the minimum server count).
    """

    def __init__(self, k: int, n: int, f: int, initial_value: Any = None):
        if n < 2 * f + 1:
            raise ValueError(f"need n >= 2f+1, got n={n}, f={f}")
        if k <= 0 or f <= 0:
            raise ValueError("k and f must be positive")
        self.k = k
        self.n = n
        self.f = f
        self.z = 1  # one writer per register set
        self.initial_value = initial_value
        # Register w + s*k is writer w's register on server s.
        self.sets = [
            [ObjectId(w + s * k) for s in range(n)] for w in range(k)
        ]
        self._delta = {
            ObjectId(w + s * k): ServerId(s)
            for s in range(n)
            for w in range(k)
        }

    @property
    def total_registers(self) -> int:
        return self.n * self.k

    def server_of(self, object_id: ObjectId) -> ServerId:
        return self._delta[object_id]

    def set_index_for_writer(self, writer_index: int) -> int:
        if not 0 <= writer_index < self.k:
            raise ValueError(f"writer index {writer_index} out of range")
        return writer_index

    def registers_for_writer(self, writer_index: int) -> "List[ObjectId]":
        return list(self.sets[self.set_index_for_writer(writer_index)])

    def read_quorum_servers(self) -> int:
        return self.n - self.f

    def registers_on_server(self, server_id: ServerId) -> "List[ObjectId]":
        return [
            oid for oid, sid in self._delta.items() if sid == server_id
        ]

    def storage_profile(self) -> "Dict[ServerId, int]":
        profile: "Dict[ServerId, int]" = {
            ServerId(i): 0 for i in range(self.n)
        }
        for server_id in self._delta.values():
            profile[server_id] += 1
        return profile

    def placements(self) -> "List[Placement]":
        initial = bottom_tsval(self.initial_value)
        total = self.n * self.k
        return [
            (self._delta[ObjectId(i)].index, "register", initial)
            for i in range(total)
        ]

    def validate(self) -> None:
        for register_set in self.sets:
            servers = {self._delta[oid] for oid in register_set}
            assert len(servers) == len(register_set)
        assert self.total_registers == self.n * self.k


class ReplicatedMaxRegisterEmulation:
    """The ``(2f+1)k``-register emulation for ``n = 2f+1`` (Section 3.2).

    Algorithm 2's client over the per-writer column layout: each server
    effectively implements a k-writer max-register from k registers, and
    quorum accesses provide f-tolerance.  WS-Regular and wait-free.
    """

    def __init__(
        self,
        k: int,
        n: int,
        f: int,
        initial_value: Any = None,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        # Imported here to avoid a module cycle (ws_register imports layout).
        from repro.core.ws_register import WSRegisterClient

        self._client_cls = WSRegisterClient
        self.layout = PerWriterLayout(k, n, f, initial_value)
        self.layout.validate()
        self.initial_value = initial_value
        self.system: SimSystem = build_system(
            n,
            self.layout.placements(),
            scheduler=scheduler,
            environment=environment,
        )
        self._writers: "Dict[int, ClientId]" = {}
        self._next_reader = 0

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    @property
    def total_registers(self) -> int:
        return self.layout.total_registers

    def add_writer(self, writer_index: int, client_id: "Optional[ClientId]" = None):
        if writer_index in self._writers:
            raise ValueError(f"writer {writer_index} already added")
        cid = client_id or ClientId(writer_index)
        protocol = self._client_cls(
            self.layout,
            self.object_map,
            writer_index=writer_index,
            initial_value=self.initial_value,
        )
        runtime = self.kernel.add_client(cid, protocol)
        self._writers[writer_index] = cid
        return runtime

    def add_reader(self, client_id: "Optional[ClientId]" = None):
        if client_id is None:
            client_id = ClientId(self.layout.k + 1000 + self._next_reader)
            self._next_reader += 1
        protocol = self._client_cls(
            self.layout,
            self.object_map,
            writer_index=None,
            initial_value=self.initial_value,
        )
        return self.kernel.add_client(client_id, protocol)

    def writer_client_id(self, writer_index: int) -> ClientId:
        return self._writers[writer_index]
