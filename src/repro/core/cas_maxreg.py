"""Algorithm 1: a wait-free atomic max-register from a single CAS.

Appendix B of the paper.  The CAS object supports ``cas(exp, new)``
returning the old value; ``cas(v0, v0)`` doubles as a read.

* ``write-max(v)``: loop — read the current value; if it already dominates
  ``v`` return, else ``cas(current, v)`` and retry.
* ``read-max()``: one ``cas(v0, v0)``.

Because the stored value only grows (``cas(tmp, v)`` is attempted only
with ``v > tmp``), the loop terminates after at most one iteration per
distinct intervening larger value — the *time* complexity grows with
contention/domain, the tradeoff Section 5 highlights: the emulation is
space-optimal (one object) but not time-optimal.  Iteration counts are
recorded in :attr:`CASMaxRegisterClient.iterations` for the time bench.

The module also provides :class:`CASABDEmulation`: ABD where each server's
max-register is *emulated* from the server's single CAS via Algorithm 1 —
the composition giving the CAS row of Table 1 (2f+1 CAS objects).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.sim.client import ClientProtocol, Context, TaskHandle
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.kernel import Environment
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import Scheduler
from repro.sim.system import SimSystem, build_system
from repro.sim.values import TSVal, bottom_tsval, max_tsval


class _CASOps:
    """Shared plumbing: triggering CAS ops and awaiting their results."""

    def __init__(self) -> None:
        self._results: "Dict[OpId, Any]" = {}
        #: total Algorithm 1 loop iterations (time-complexity metric)
        self.iterations = 0

    def record(self, op: LowLevelOp) -> None:
        if op.kind is OpKind.CAS:
            self._results[op.op_id] = op.result

    def _cas(self, ctx: Context, obj: ObjectId, exp: Any, new: Any):
        """Trigger one CAS and wait for its response (generator)."""
        op = ctx.trigger(obj, OpKind.CAS, exp, new)
        yield lambda: op in self._results
        return self._results.pop(op)

    def write_max(self, ctx: Context, obj: ObjectId, value: Any, v0: Any):
        """Algorithm 1, lines 1-6 (generator returning ``"ok"``)."""
        while True:
            self.iterations += 1
            tmp = yield from self._cas(ctx, obj, v0, v0)  # line 3
            if tmp >= value:  # lines 4-5
                return "ok"
            yield from self._cas(ctx, obj, tmp, value)  # line 6

    def read_max(self, ctx: Context, obj: ObjectId, v0: Any):
        """Algorithm 1, lines 7-9 (generator returning the value)."""
        tmp = yield from self._cas(ctx, obj, v0, v0)  # line 8
        return tmp


class CASMaxRegisterClient(ClientProtocol):
    """A standalone max-register client over one CAS object.

    High-level operations ``write_max(v)`` and ``read_max()``; used to
    validate Theorem 4 (the emulation is atomic and wait-free) and to
    measure Algorithm 1's time complexity.
    """

    def __init__(self, object_id: ObjectId, initial_value: Any):
        self.object_id = object_id
        self.v0 = initial_value
        self.ops = _CASOps()

    @property
    def iterations(self) -> int:
        return self.ops.iterations

    def op_write_max(self, ctx: Context, value: Any):
        result = yield from self.ops.write_max(
            ctx, self.object_id, value, self.v0
        )
        return result

    def op_read_max(self, ctx: Context):
        result = yield from self.ops.read_max(ctx, self.object_id, self.v0)
        return result

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        self.ops.record(op)


class SingleCASMaxRegister:
    """A deployed single-CAS max-register (one server, one CAS object)."""

    def __init__(
        self,
        initial_value: Any = 0,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        self.initial_value = initial_value
        self.system: SimSystem = build_system(
            1,
            [(0, "cas", initial_value)],
            scheduler=scheduler,
            environment=environment,
        )
        self._clients: "List[CASMaxRegisterClient]" = []

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    def add_client(self, client_id: "Optional[ClientId]" = None):
        if client_id is None:
            client_id = ClientId(len(self._clients))
        protocol = CASMaxRegisterClient(ObjectId(0), self.initial_value)
        self._clients.append(protocol)
        return self.kernel.add_client(client_id, protocol)

    # Writers are unbounded; the writer/reader split below only serves the
    # uniform Emulation surface (ops are write_max / read_max).

    def add_writer(self, writer_index: int):
        return self.add_client(ClientId(writer_index))

    def add_reader(self):
        return self.add_client(ClientId(1000 + len(self._clients)))

    @property
    def total_iterations(self) -> int:
        return sum(c.iterations for c in self._clients)


class CASABDClient(ClientProtocol):
    """ABD client whose per-server primitive is Algorithm 1 over a CAS.

    Each quorum round spawns one sub-coroutine per server running
    ``write_max``/``read_max`` against that server's CAS object; the round
    completes when ``n - f`` sub-coroutines finish.  A crashed server's
    coroutine simply never completes — exactly the failure mode ABD
    tolerates.
    """

    def __init__(
        self,
        n: int,
        f: int,
        writer_id: int,
        initial_value: Any = None,
        write_back: bool = True,
        object_ids: "Optional[Sequence[ObjectId]]" = None,
    ):
        self.n = n
        self.f = f
        self.writer_id = writer_id
        self.v0 = bottom_tsval(initial_value)
        self.write_back = write_back
        # Identity placement by default; multi-register fleets pass the
        # instance's slice of the shared object-id space (see ABDClient).
        if object_ids is None:
            self.object_ids: "List[ObjectId]" = [
                ObjectId(i) for i in range(n)
            ]
        else:
            if len(object_ids) != n:
                raise ValueError(
                    f"need one object per server: got {len(object_ids)}"
                    f" ids for n={n}"
                )
            self.object_ids = list(object_ids)
        self.ops = _CASOps()

    @property
    def iterations(self) -> int:
        return self.ops.iterations

    # -- per-server emulated max-register rounds ---------------------------

    def _round(self, ctx: Context, write_value: "Optional[TSVal]"):
        """One quorum round: read-max (write_value None) or write-max."""
        handles: "List[TaskHandle]" = []
        results: "List[TSVal]" = []

        def server_task(server_index: int):
            obj = self.object_ids[server_index]
            if write_value is None:
                value = yield from self.ops.read_max(ctx, obj, self.v0)
                results.append(value)
            else:
                yield from self.ops.write_max(
                    ctx, obj, write_value, self.v0
                )

        for server_index in range(self.n):
            handles.append(
                ctx.spawn(server_task(server_index), name=f"srv-{server_index}")
            )
        yield ctx.count_done(handles, self.n - self.f)
        return results

    # -- high-level operations ------------------------------------------------

    def op_write(self, ctx: Context, value: Any):
        responses = yield from self._round(ctx, None)
        ts = max_tsval(responses).ts + 1
        tagged = TSVal(ts=ts, wid=self.writer_id, val=value)
        yield from self._round(ctx, tagged)
        return "ack"

    def op_read(self, ctx: Context):
        responses = yield from self._round(ctx, None)
        best = max_tsval(responses)
        if self.write_back:
            yield from self._round(ctx, best)
        return best.val

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        self.ops.record(op)


class CASABDEmulation:
    """ABD over n servers each storing a single CAS object.

    Resource complexity: ``n`` CAS objects (2f+1 at the minimum), the CAS
    row of Table 1.
    """

    def __init__(
        self,
        n: int,
        f: int,
        initial_value: Any = None,
        write_back: bool = True,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        if n < 2 * f + 1:
            raise ValueError(f"ABD requires n >= 2f+1, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.initial_value = initial_value
        self.write_back = write_back
        v0 = bottom_tsval(initial_value)
        placements = [(i, "cas", v0) for i in range(n)]
        self.system: SimSystem = build_system(
            n, placements, scheduler=scheduler, environment=environment
        )
        self._clients: "List[CASABDClient]" = []

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    @property
    def total_objects(self) -> int:
        return self.n

    @property
    def total_iterations(self) -> int:
        return sum(c.iterations for c in self._clients)

    def add_client(self, client_id: "Optional[ClientId]" = None):
        if client_id is None:
            client_id = ClientId(len(self._clients))
        protocol = CASABDClient(
            self.n,
            self.f,
            writer_id=client_id.index,
            initial_value=self.initial_value,
            write_back=self.write_back,
        )
        self._clients.append(protocol)
        return self.kernel.add_client(client_id, protocol)

    def add_writer(self, writer_index: int):
        return self.add_client(ClientId(writer_index))

    def add_reader(self):
        return self.add_client(ClientId(1000 + len(self._clients)))
