"""The Lemma 1 run construction, executable.

Lemma 1 asserts that for *every* f-tolerant WS-Safe obstruction-free
k-register emulation and every set ``F`` of ``f+1`` servers there exist
failure-free write-sequential runs ``r_1, ..., r_k`` — each extending the
previous with one complete high-level write by a fresh client under the
adversary ``Ad_i`` — such that after the i-th write

(a) ``|Cov(t_i)| >= i * f``  (at least ``i*f`` covered registers), and
(b) ``delta(Cov(t_i)) cap F = empty``  (none of them on ``F``),

plus the extended claims (Appendix C):

(c) ``|delta(Tr_i(t_i) \\ Cov(t_{i-1}))| > 2f``,
(d) ``|delta(Cov(t_i) \\ Cov(t_{i-1}))| >= f``,
(e) ``Cov(t_i) >= Cov(t_{i-1})``.

We cannot quantify over all algorithms, so :class:`Lemma1Runner` builds
these runs against a *given* emulation (our Algorithm 2 instance, or the
replicated-max-register construction) and verifies the claims, plus the
Lemma 2 invariants at every step.  Phase ``i``:

1. snapshot ``Cov(t_{i-1})`` / ``C(t_{i-1})`` and arm ``Ad_i``;
2. a fresh client invokes ``write(v_i)``; run a strongly fair scheduler
   over the non-vetoed actions until the write returns (Lemma 3 says it
   must — the blocked servers and old clients merely *appear* faulty);
3. keep draining non-blocked responds until the configuration stabilizes
   (the construction's extension making ``delta(Cov_i) cap F = empty``);
4. record and assert the claims.

Theorem 8 falls out as a free observation: point contention is 1
throughout (the runs are write-sequential), yet resource consumption
grows by ``f`` per write — no function of contention bounds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.adversary import AdversaryAdi
from repro.core.covering import CoveringTracker
from repro.sim.events import EventListener
from repro.sim.ids import ServerId
from repro.sim.scheduling import RoundRobinScheduler


@dataclass
class PhaseReport:
    """Measured quantities after phase ``i`` (time ``t_i``)."""

    index: int
    end_time: int
    covered: int
    covered_new: int
    covered_servers_in_F: int
    triggered_fresh_servers: int
    per_server_covered: "Dict[ServerId, int]"
    point_contention: int
    claim_a: bool
    claim_b: bool
    claim_c: bool
    claim_d: bool
    claim_e: bool

    @property
    def all_claims(self) -> bool:
        return (
            self.claim_a
            and self.claim_b
            and self.claim_c
            and self.claim_d
            and self.claim_e
        )


class _Lemma2Checker(EventListener):
    """Asserts Lemma 2's invariants after every step of an Ad_i phase."""

    def __init__(self, tracker: CoveringTracker):
        self.tracker = tracker
        self.enabled = True
        self.checks = 0

    def on_step(self, time: int) -> None:
        if self.enabled and self.tracker.phase is not None:
            self.tracker.check_lemma2()
            self.checks += 1


class Lemma1Runner:
    """Drive the Lemma 1 construction against an emulation instance.

    ``emulation_factory(scheduler)`` must build a fresh emulation exposing
    ``kernel``, ``object_map``, ``history`` and ``add_writer(index)``.
    The runner rewires the kernel's environment to ``Ad_i``.
    """

    def __init__(
        self,
        emulation_factory: "Callable[..., object]",
        k: int,
        f: int,
        F: "Optional[Set[ServerId]]" = None,
        check_lemma2: bool = True,
        max_steps_per_phase: int = 500_000,
        scheduler=None,
    ):
        self.k = k
        self.f = f
        self.emulation = emulation_factory(
            scheduler=scheduler or RoundRobinScheduler()
        )
        if F is None:
            F = {ServerId(i) for i in range(f + 1)}
        if len(F) != f + 1:
            raise ValueError(f"|F| must be f+1, got {len(F)}")
        if not F <= set(self.emulation.object_map.server_ids):
            raise ValueError("F must be a subset of the servers")
        self.F = F
        self.max_steps_per_phase = max_steps_per_phase
        self.tracker = CoveringTracker(self.emulation.object_map, f)
        self.emulation.kernel.add_listener(self.tracker)
        self.adversary = AdversaryAdi(self.tracker)
        self.emulation.kernel.environment = self.adversary
        self.checker: "Optional[_Lemma2Checker]" = None
        if check_lemma2:
            self.checker = _Lemma2Checker(self.tracker)
            self.emulation.kernel.add_listener(self.checker)
        self.reports: "List[PhaseReport]" = []

    # -- one phase ----------------------------------------------------------

    def run_phase(self, index: int, value) -> PhaseReport:
        """Phase ``i``: one write by a fresh client under ``Ad_i``."""
        kernel = self.emulation.kernel
        object_map = self.emulation.object_map
        cov_prev = frozenset(self.tracker.cov())
        phase = self.tracker.start_phase(index, self.F, kernel.time)

        writer = self.emulation.add_writer(index - 1)
        writer.enqueue("write", value)

        def write_returned(_kernel) -> bool:
            return writer.idle and not writer.program

        result = kernel.run(
            max_steps=self.max_steps_per_phase, until=write_returned
        )
        if not result.satisfied:
            raise AssertionError(
                f"phase {index}: write did not return under Ad_i"
                f" (run ended: {result.reason}) — Lemma 3 violated by the"
                " emulation or the adversary"
            )
        # Lemma 4 quantity at the write's return time t_r.
        tri_fresh = phase.tri - cov_prev
        claim_c = len(object_map.image(tri_fresh)) > 2 * self.f

        # Extension of the proof: drain all non-blocked responds so that
        # delta(Cov_i(t_i)) cap F = empty.
        drain = kernel.run(max_steps=self.max_steps_per_phase)
        if drain.reason == "max_steps":
            raise AssertionError(f"phase {index}: drain did not stabilize")

        cov = self.tracker.cov()
        covi = cov - cov_prev
        cov_servers = object_map.image(cov)
        per_server: "Dict[ServerId, int]" = {}
        for oid in cov:
            sid = object_map.server_of(oid)
            per_server[sid] = per_server.get(sid, 0) + 1
        report = PhaseReport(
            index=index,
            end_time=kernel.time,
            covered=len(cov),
            covered_new=len(covi),
            covered_servers_in_F=len(cov_servers & self.F),
            triggered_fresh_servers=len(object_map.image(tri_fresh)),
            per_server_covered=per_server,
            point_contention=1,  # the run is write-sequential by design
            claim_a=len(cov) >= index * self.f,
            claim_b=not (cov_servers & self.F),
            claim_c=claim_c,
            claim_d=len(object_map.image(covi)) >= self.f,
            claim_e=cov_prev <= cov,
        )
        self.tracker.end_phase()
        self.reports.append(report)
        return report

    def run(self, values: "Optional[Sequence]" = None) -> "List[PhaseReport]":
        """Run all k phases; returns per-phase reports."""
        if values is None:
            values = [f"v{i}" for i in range(1, self.k + 1)]
        if len(values) != self.k:
            raise ValueError(f"need {self.k} values, got {len(values)}")
        for index, value in enumerate(values, start=1):
            self.run_phase(index, value)
        return self.reports

    # -- summaries ---------------------------------------------------------------

    def covered_growth(self) -> "List[int]":
        """``|Cov(t_i)|`` per phase — the Figure 2 / Theorem 8 series."""
        return [report.covered for report in self.reports]

    def assert_all_claims(self) -> None:
        for report in self.reports:
            assert report.claim_a, f"claim (a) failed at phase {report.index}"
            assert report.claim_b, f"claim (b) failed at phase {report.index}"
            assert report.claim_c, f"claim (c) failed at phase {report.index}"
            assert report.claim_d, f"claim (d) failed at phase {report.index}"
            assert report.claim_e, f"claim (e) failed at phase {report.index}"
