"""The paper's contribution: bounds, layouts, emulations, adversary.

* :mod:`repro.core.bounds` — every closed-form bound (Table 1, Theorems
  1, 2, 3, 5, 6, 7).
* :mod:`repro.core.layout` — the register-to-server layout of Section 3.3
  (Figure 1) with its quorum system.
* :mod:`repro.core.ws_register` — Algorithm 2: the wait-free WS-Regular
  k-register from read/write registers (the upper bound).
* :mod:`repro.core.abd` — multi-writer ABD over per-server max-registers
  (the max-register upper bound of Table 1).
* :mod:`repro.core.cas_maxreg` — Algorithm 1: max-register from one CAS,
  and ABD over CAS servers (the CAS upper bound).
* :mod:`repro.core.collect_maxreg` — k-writer max-register from k
  registers (Theorem 2's matching construction) and the (2f+1)k-register
  emulation for n = 2f+1.
* :mod:`repro.core.covering` — Cov(t) and the Definition 1 bookkeeping
  (Q_i, F_i, M_i, G_i) with Lemma 2 invariant checks.
* :mod:`repro.core.adversary` — Definitions 2-3: BlockedWrites and Ad_i.
* :mod:`repro.core.lemma1` — the Lemma 1 run construction.
"""

from repro.core import bounds
from repro.core.emulation import (
    Emulation,
    EmulationSpec,
    algorithm_names,
    register_algorithm,
)
from repro.core.layout import RegisterLayout
from repro.core.ws_register import WSRegisterEmulation, WSRegisterClient
from repro.core.abd import ABDEmulation, ABDClient
from repro.core.cas_maxreg import (
    CASMaxRegisterClient,
    CASABDEmulation,
    SingleCASMaxRegister,
)
from repro.core.collect_maxreg import (
    CollectMaxRegister,
    ReplicatedMaxRegisterEmulation,
)
from repro.core.covering import CoveringTracker, PhaseState
from repro.core.adversary import AdversaryAdi
from repro.core.lemma1 import Lemma1Runner, PhaseReport
from repro.core.multi import MultiRegisterDeployment
from repro.core.ft_maxreg import FTMaxRegister
from repro.core.layout_opt import CapacitatedPlan, capacitated_layout

__all__ = [
    "ABDClient",
    "ABDEmulation",
    "AdversaryAdi",
    "CASABDEmulation",
    "CASMaxRegisterClient",
    "CollectMaxRegister",
    "CoveringTracker",
    "CapacitatedPlan",
    "Emulation",
    "EmulationSpec",
    "FTMaxRegister",
    "Lemma1Runner",
    "MultiRegisterDeployment",
    "PhaseReport",
    "PhaseState",
    "RegisterLayout",
    "ReplicatedMaxRegisterEmulation",
    "SingleCASMaxRegister",
    "WSRegisterClient",
    "WSRegisterEmulation",
    "algorithm_names",
    "bounds",
    "capacitated_layout",
    "register_algorithm",
]
