"""The emulation contract, made explicit.

Every deployed emulation in :mod:`repro.core` exposes the same surface —
``kernel`` / ``object_map`` / ``history`` / ``system`` plus
``add_writer(index)`` / ``add_reader()`` — but until now that contract
was duck-typed: the workload runner, the Lemma 1 machinery and the
experiment registry all relied on it implicitly.  This module states it
once:

* :class:`Emulation` — a ``typing.Protocol`` naming the surface, so
  conformance is checkable (``isinstance`` works — the protocol is
  ``runtime_checkable``) and new emulations have a contract to build to.
* :class:`EmulationSpec` — a picklable *description* of an emulation
  (algorithm name + parameters + scheduler seed).  Deployed emulations
  hold a live kernel, client coroutines and listener closures and cannot
  cross a process boundary; a spec can, which is what lets the parallel
  experiment engine (:mod:`repro.exec`) fan work out to worker
  processes and rebuild identical deployments there.

The algorithm registry maps stable names to constructors::

    spec = EmulationSpec("ws-register", k=2, n=5, f=2, seed=7)
    emu = spec.build()           # a WSRegisterEmulation, seeded scheduler
    run_workload(spec, workload) # runner builds it for you
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.sim.scheduling import RandomScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.config import TransportConfig


@runtime_checkable
class Emulation(Protocol):
    """A deployed register (or max-register) emulation.

    The properties expose the wired simulation; the two methods attach
    clients.  ``add_writer(i)`` registers writer ``i`` (0-based; bounded
    by ``k`` where the algorithm bounds writers); ``add_reader()``
    attaches a fresh reader (readers are unbounded everywhere).
    """

    @property
    def kernel(self) -> Any: ...

    @property
    def object_map(self) -> Any: ...

    @property
    def history(self) -> Any: ...

    @property
    def system(self) -> Any: ...

    def add_writer(self, writer_index: int) -> Any: ...

    def add_reader(self) -> Any: ...


#: algorithm name -> (constructor, parameter names it accepts)
_ALGORITHMS: "Dict[str, Callable[..., Any]]" = {}


def register_algorithm(name: str):
    """Register a builder ``fn(**params) -> Emulation`` under ``name``."""

    def wrap(fn):
        _ALGORITHMS[name] = fn
        return fn

    return wrap


def algorithm_names() -> "Tuple[str, ...]":
    return tuple(sorted(_ALGORITHMS))


@dataclass(frozen=True)
class EmulationSpec:
    """A picklable factory description for an :class:`Emulation`.

    ``algorithm`` names a registered constructor; ``k``/``n``/``f`` are
    the paper's parameters (leave at ``None`` where the algorithm does
    not take them); ``seed`` seeds the scheduler (``None`` uses the
    simulator default, ``RandomScheduler(0)``); ``options`` carries any
    extra constructor keywords as a sorted item tuple so the spec stays
    hashable; ``transport`` is an optional
    :class:`~repro.net.config.TransportConfig` (``None`` means direct
    in-process delivery) — it is part of the spec's identity, so the
    experiment engine's result cache keys on it.
    """

    algorithm: str
    k: "Optional[int]" = None
    n: "Optional[int]" = None
    f: "Optional[int]" = None
    seed: "Optional[int]" = None
    options: "Tuple[Tuple[str, Any], ...]" = ()
    transport: "Optional[TransportConfig]" = None

    @classmethod
    def make(cls, algorithm: str, **params) -> "EmulationSpec":
        """Build a spec, routing unknown keywords into ``options``."""
        known = {
            key: params.pop(key)
            for key in ("k", "n", "f", "seed", "transport")
            if key in params
        }
        return cls(
            algorithm,
            options=tuple(sorted(params.items())),
            **known,
        )

    def build(self) -> Emulation:
        """Construct the described emulation (fresh kernel, no clients)."""
        try:
            factory = _ALGORITHMS[self.algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r};"
                f" known: {', '.join(algorithm_names())}"
            ) from None
        kwargs: "Dict[str, Any]" = dict(self.options)
        for name in ("k", "n", "f"):
            value = getattr(self, name)
            if value is not None:
                kwargs[name] = value
        if self.seed is not None:
            kwargs["scheduler"] = RandomScheduler(self.seed)
        emulation = factory(**kwargs)
        if self.transport is not None:
            # Attached after construction (before any trigger) so the
            # seven emulation constructors stay transport-oblivious.
            emulation.kernel.set_transport(self.transport.build())
        return emulation


@register_algorithm("ws-register")
def _build_ws_register(**kwargs) -> Emulation:
    from repro.core.ws_register import WSRegisterEmulation

    return WSRegisterEmulation(**kwargs)


@register_algorithm("abd")
def _build_abd(**kwargs) -> Emulation:
    from repro.core.abd import ABDEmulation

    kwargs.pop("k", None)  # writers are unbounded in ABD
    return ABDEmulation(**kwargs)


@register_algorithm("cas-abd")
def _build_cas_abd(**kwargs) -> Emulation:
    from repro.core.cas_maxreg import CASABDEmulation

    kwargs.pop("k", None)
    return CASABDEmulation(**kwargs)


@register_algorithm("replicated-maxreg")
def _build_replicated_maxreg(**kwargs) -> Emulation:
    from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation

    return ReplicatedMaxRegisterEmulation(**kwargs)


@register_algorithm("collect-maxreg")
def _build_collect_maxreg(**kwargs) -> Emulation:
    from repro.core.collect_maxreg import CollectMaxRegister

    kwargs.pop("n", None)  # single-server construction
    kwargs.pop("f", None)
    return CollectMaxRegister(**kwargs)


@register_algorithm("ft-maxreg")
def _build_ft_maxreg(**kwargs) -> Emulation:
    from repro.core.ft_maxreg import FTMaxRegister

    kwargs.pop("k", None)
    return FTMaxRegister(**kwargs)


@register_algorithm("single-cas")
def _build_single_cas(**kwargs) -> Emulation:
    from repro.core.cas_maxreg import SingleCASMaxRegister

    for name in ("k", "n", "f"):
        kwargs.pop(name, None)
    return SingleCASMaxRegister(**kwargs)
