"""Multi-writer ABD over one max-register per server.

The paper observes (Section 1, "Results") that the per-server code of
multi-writer ABD can be encapsulated into the ``write-max`` / ``read-max``
primitives of a max-register, so the classic 2f+1 upper bound carries over
to max-register base objects.  This module implements exactly that:

* ``n >= 2f+1`` servers, each storing **one** max-register whose value
  domain is :class:`~repro.sim.values.TSVal` (lexicographic on
  ``(ts, wid)``).
* ``write(v)``: read-max from ``n - f`` servers, pick ``ts = max + 1``,
  write-max ``<ts, wid, v>`` to ``n - f`` servers.
* ``read()``: read-max from ``n - f`` servers, take the maximum; in the
  *atomic* variant the reader writes the maximum back to ``n - f``
  servers before returning (readers must write for atomicity — the
  paper's motivation for studying regularity instead); the *regular*
  variant skips the write-back.

Resource complexity: ``n`` max-registers — ``2f + 1`` when run at the
minimum server count, matching both sides of Table 1's max-register row.
The number of writers is unbounded (no dependence on ``k``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.sim.client import ClientProtocol, Context
from repro.sim.history import History
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.kernel import Environment
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.scheduling import Scheduler
from repro.sim.system import SimSystem, build_system
from repro.sim.values import TSVal, bottom_tsval, max_tsval


class ABDClient(ClientProtocol):
    """Client-side ABD state machine (writers and readers alike)."""

    def __init__(
        self,
        n: int,
        f: int,
        writer_id: int,
        initial_value: Any = None,
        write_back: bool = True,
        object_ids: "Optional[Sequence[ObjectId]]" = None,
    ):
        self.n = n
        self.f = f
        self.writer_id = writer_id
        self.initial_value = initial_value
        self.write_back = write_back
        # Which object lives on server i.  The default identity placement
        # serves single-register deployments; multi-register fleets (one
        # kernel hosting many ABD instances) pass each instance its own
        # slice of the shared object-id space.
        if object_ids is None:
            self.object_ids: "List[ObjectId]" = [
                ObjectId(i) for i in range(n)
            ]
        else:
            if len(object_ids) != n:
                raise ValueError(
                    f"need one object per server: got {len(object_ids)}"
                    f" ids for n={n}"
                )
            self.object_ids = list(object_ids)
        self._results: "Dict[OpId, Any]" = {}

    # -- quorum round ------------------------------------------------------

    def _quorum(self, ctx: Context, kind: OpKind, args: tuple):
        """Trigger ``kind(args)`` on every server's object, await n-f."""
        ops = [
            ctx.trigger(oid, kind, *args) for oid in self.object_ids
        ]
        needed = self.n - self.f
        yield lambda: sum(
            1 for op in ops if op in self._results
        ) >= needed
        return [self._results[op] for op in ops if op in self._results]

    # -- high-level operations ------------------------------------------------

    def op_write(self, ctx: Context, value: Any):
        responses = yield from self._quorum(ctx, OpKind.READ_MAX, ())
        ts = max_tsval(responses).ts + 1
        tagged = TSVal(ts=ts, wid=self.writer_id, val=value)
        yield from self._quorum(ctx, OpKind.WRITE_MAX, (tagged,))
        return "ack"

    def op_read(self, ctx: Context):
        responses = yield from self._quorum(ctx, OpKind.READ_MAX, ())
        best = max_tsval(responses)
        if self.write_back:
            yield from self._quorum(ctx, OpKind.WRITE_MAX, (best,))
        return best.val

    def on_response(self, ctx: Context, op: LowLevelOp) -> None:
        self._results[op.op_id] = op.result


class ABDEmulation:
    """A deployed ABD instance: n servers, one max-register each.

    ``write_back=True`` yields an atomic register; ``write_back=False``
    yields a (WS-)regular one with read-only readers.
    """

    def __init__(
        self,
        n: int,
        f: int,
        initial_value: Any = None,
        write_back: bool = True,
        scheduler: "Optional[Scheduler]" = None,
        environment: "Optional[Environment]" = None,
    ):
        if n < 2 * f + 1:
            raise ValueError(f"ABD requires n >= 2f+1, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.initial_value = initial_value
        self.write_back = write_back
        placements = [
            (i, "max-register", bottom_tsval(initial_value))
            for i in range(n)
        ]
        self.system: SimSystem = build_system(
            n, placements, scheduler=scheduler, environment=environment
        )
        self._next_client = 0

    @property
    def kernel(self):
        return self.system.kernel

    @property
    def history(self) -> History:
        return self.system.history

    @property
    def object_map(self):
        return self.system.object_map

    @property
    def total_objects(self) -> int:
        """Resource consumption: one max-register per server."""
        return self.n

    def add_client(self, client_id: "Optional[ClientId]" = None):
        """Add a client (any client may both read and write)."""
        if client_id is None:
            client_id = ClientId(self._next_client)
        self._next_client = max(self._next_client, client_id.index) + 1
        protocol = ABDClient(
            self.n,
            self.f,
            writer_id=client_id.index,
            initial_value=self.initial_value,
            write_back=self.write_back,
        )
        return self.kernel.add_client(client_id, protocol)

    # ABD supports unboundedly many clients; the writer/reader split below
    # only serves the uniform workload-runner interface.

    def add_writer(self, writer_index: int):
        return self.add_client(ClientId(writer_index))

    def add_reader(self):
        client_id = ClientId(1000 + self._next_client)
        return self.add_client(client_id)
