"""The quorum system of Section 3.3, as a first-class object.

Algorithm 2's correctness rests on two combinatorial properties of its
layout (stated just below Figure 1):

1. each set ``R_i`` supports ``floor((|R_i|-(f+1))/f)`` writers — at
   least as many as are assigned to it;
2. every read quorum (all registers on some ``n-f`` servers) covers at
   least ``|R_i| - f`` registers of each ``R_i`` (it can miss at most the
   f unscanned servers' one-register-each share), hence intersects every
   write quorum (any ``|R_i| - f``-subset of ``R_i``) in at least
   ``|R_i| - 2f >= 1`` registers.

:class:`QuorumSystem` enumerates the quorum families for a layout (with
explicit combinatorial guards) and :func:`verify_quorum_properties`
checks both properties exhaustively — executable versions of the
paragraph the paper proves Lemma 7 from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List

from repro.core import bounds
from repro.sim.ids import ObjectId, ServerId


@dataclass(frozen=True)
class QuorumStats:
    """Measured intersection structure of one register set."""

    set_index: int
    set_size: int
    writers_assigned: int
    writers_supported: int
    min_read_cover: int
    min_write_read_intersection: int


class QuorumSystem:
    """Read/write quorum families of an Algorithm 2 layout."""

    #: refuse enumerations beyond this many quorums (guard, not a limit
    #: of the math)
    MAX_ENUMERATION = 200_000

    def __init__(self, layout):
        self.layout = layout
        self.f = layout.f
        self.n = layout.n

    # -- families ------------------------------------------------------------

    def write_quorums(self, set_index: int) -> "Iterator[FrozenSet[ObjectId]]":
        """All ``|R_i| - f``-subsets of ``R_i``."""
        register_set = self.layout.sets[set_index]
        size = len(register_set) - self.f
        self._guard(_n_choose_k(len(register_set), size))
        for subset in itertools.combinations(register_set, size):
            yield frozenset(subset)

    def read_quorum_server_sets(self) -> "Iterator[FrozenSet[ServerId]]":
        """All ``n - f``-subsets of the servers."""
        servers = [ServerId(i) for i in range(self.n)]
        size = self.n - self.f
        self._guard(_n_choose_k(self.n, size))
        for subset in itertools.combinations(servers, size):
            yield frozenset(subset)

    def read_quorum(self, servers: "FrozenSet[ServerId]") -> "FrozenSet[ObjectId]":
        """The registers of the layout hosted on the given servers."""
        registers: "List[ObjectId]" = []
        for server in servers:
            registers.extend(self.layout.registers_on_server(server))
        return frozenset(registers)

    def _guard(self, count: int) -> None:
        if count > self.MAX_ENUMERATION:
            raise ValueError(
                f"quorum family too large to enumerate ({count});"
                " use smaller parameters"
            )

    # -- measured structure -------------------------------------------------------

    def stats(self, set_index: int) -> QuorumStats:
        register_set = frozenset(self.layout.sets[set_index])
        writers = getattr(
            self.layout, "writers_of_set", lambda i: [None]
        )(set_index)
        min_cover = len(register_set)
        min_intersection = len(register_set)
        for server_subset in self.read_quorum_server_sets():
            read_quorum = self.read_quorum(server_subset)
            cover = len(read_quorum & register_set)
            min_cover = min(min_cover, cover)
            for write_quorum in self.write_quorums(set_index):
                min_intersection = min(
                    min_intersection, len(write_quorum & read_quorum)
                )
        return QuorumStats(
            set_index=set_index,
            set_size=len(register_set),
            writers_assigned=len(writers),
            writers_supported=bounds.writers_supported_by_set(
                len(register_set), self.f
            ),
            min_read_cover=min_cover,
            min_write_read_intersection=min_intersection,
        )


def verify_quorum_properties(layout) -> "List[QuorumStats]":
    """Exhaustively verify Section 3.3's quorum claims for a layout.

    Returns the per-set stats; raises ``AssertionError`` on any violated
    property.  Exponential in the set sizes — intended for the small
    instances the tests and benches use.
    """
    system = QuorumSystem(layout)
    all_stats = []
    for set_index in range(len(layout.sets)):
        stats = system.stats(set_index)
        size = stats.set_size
        f = layout.f
        assert stats.writers_supported >= stats.writers_assigned, (
            f"set {set_index} overloaded:"
            f" {stats.writers_assigned} > {stats.writers_supported}"
        )
        # Claim: every read quorum covers >= |R_i| - f of the set.
        assert stats.min_read_cover >= size - f, (
            f"set {set_index}: read cover {stats.min_read_cover}"
            f" < {size - f}"
        )
        # Hence write/read quorums always intersect (>= |R_i| - 2f >= 1).
        assert stats.min_write_read_intersection >= max(size - 2 * f, 1), (
            f"set {set_index}: intersection"
            f" {stats.min_write_read_intersection} too small"
        )
        all_stats.append(stats)
    return all_stats


def _n_choose_k(n: int, k: int) -> int:
    import math

    if k < 0 or k > n:
        return 0
    return math.comb(n, k)
