"""Closed-form bounds from the paper.

Every bound in Table 1 and Theorems 1, 2, 3, 5, 6, 7 as a checked Python
function.  Parameter names follow the paper:

* ``k`` — number of writers of the emulated register (k > 0),
* ``n`` — number of servers, ``n = |S|`` (n >= 2f + 1),
* ``f`` — failure threshold (f > 0),
* ``z = floor((n - (f+1)) / f)`` — writers supported per register set,
* ``y = z*f + f + 1`` — size of a full register set.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import BoundViolation


def _validate_kf(k: int, f: int) -> None:
    if k <= 0:
        raise BoundViolation(f"k must be positive, got {k}")
    if f <= 0:
        raise BoundViolation(f"f must be positive, got {f}")


def _validate(k: int, n: int, f: int) -> None:
    _validate_kf(k, f)
    if n < 2 * f + 1:
        raise BoundViolation(
            f"n must be at least 2f+1 = {2 * f + 1} (Theorem 5), got {n}"
        )


def min_servers(f: int) -> int:
    """Theorem 5: any f-tolerant WS-Safe obstruction-free emulation needs
    at least 2f + 1 servers."""
    if f <= 0:
        raise BoundViolation(f"f must be positive, got {f}")
    return 2 * f + 1


def z_value(n: int, f: int) -> int:
    """``z = floor((n - (f+1)) / f)``: writers per register set (Sec. 3.3)."""
    _validate(1, n, f)
    return (n - (f + 1)) // f


def y_value(n: int, f: int) -> int:
    """``y = z*f + f + 1``: size of a full register set (Sec. 3.3)."""
    return z_value(n, f) * f + f + 1


def max_register_lower_bound(f: int) -> int:
    """Table 1: max-register base objects, lower bound (2f + 1)."""
    if f <= 0:
        raise BoundViolation(f"f must be positive, got {f}")
    return 2 * f + 1


def max_register_upper_bound(f: int) -> int:
    """Table 1: max-register base objects, upper bound (2f + 1, via ABD)."""
    return max_register_lower_bound(f)


def cas_lower_bound(f: int) -> int:
    """Table 1: CAS base objects, lower bound (2f + 1)."""
    return max_register_lower_bound(f)


def cas_upper_bound(f: int) -> int:
    """Table 1: CAS base objects, upper bound (2f + 1; Appendix B turns
    each CAS into a max-register)."""
    return max_register_lower_bound(f)


def register_lower_bound(k: int, n: int, f: int) -> int:
    """Theorem 1: at least ``kf + ceil(kf / (n-(f+1))) * (f+1)`` registers."""
    _validate(k, n, f)
    return k * f + math.ceil(k * f / (n - (f + 1))) * (f + 1)


def register_upper_bound(k: int, n: int, f: int) -> int:
    """Theorem 3: Algorithm 2 uses ``kf + ceil(k / z) * (f+1)`` registers."""
    _validate(k, n, f)
    z = z_value(n, f)
    return k * f + math.ceil(k / z) * (f + 1)


def register_bound_gap(k: int, n: int, f: int) -> int:
    """Upper minus lower bound — the open gap discussed in Section 4."""
    return register_upper_bound(k, n, f) - register_lower_bound(k, n, f)


def bounds_coincide(k: int, n: int, f: int) -> bool:
    """True where the paper's bounds meet (e.g. n = 2f+1, n >= kf+f+1)."""
    return register_bound_gap(k, n, f) == 0


def k_max_register_lower_bound(k: int) -> int:
    """Theorem 2: a wait-free k-writer max-register needs >= k registers."""
    if k <= 0:
        raise BoundViolation(f"k must be positive, got {k}")
    return k


def per_server_lower_bound(k: int, n: int, f: int) -> int:
    """Theorem 6: with n = 2f+1 servers, every server stores >= k registers.

    For n > 2f+1 the theorem gives no per-server bound (returns 0).
    """
    _validate(k, n, f)
    if n == 2 * f + 1:
        return k
    return 0


def servers_needed_bounded_storage(k: int, f: int, m: int) -> int:
    """Theorem 7: with at most ``m`` registers per server, an emulation
    needs at least ``ceil(kf/m) + f + 1`` servers."""
    _validate_kf(k, f)
    if m <= 0:
        raise BoundViolation(f"per-server capacity m must be positive, got {m}")
    return math.ceil(k * f / m) + f + 1


def layout_set_sizes(k: int, n: int, f: int) -> "list[int]":
    """Sizes of the register sets R_0, ..., of Section 3.3.

    ``floor(k/z)`` full sets of ``y`` registers, plus — when z does not
    divide k — one overflow set of ``(k mod z)*f + f + 1`` registers.
    """
    _validate(k, n, f)
    z = z_value(n, f)
    y = y_value(n, f)
    sizes = [y] * (k // z)
    remainder = k % z
    if remainder:
        sizes.append(remainder * f + f + 1)
    return sizes


def writers_supported_by_set(set_size: int, f: int) -> int:
    """``floor((|Ri| - (f+1)) / f)``: writers a set of registers supports."""
    if f <= 0:
        raise BoundViolation(f"f must be positive, got {f}")
    return (set_size - (f + 1)) // f


def table1_row(base_object: str, k: int, n: int, f: int) -> "Dict[str, int]":
    """One row of Table 1 for given parameters.

    ``base_object`` is ``"max-register"``, ``"cas"`` or ``"register"``.
    """
    if base_object == "max-register":
        return {
            "lower": max_register_lower_bound(f),
            "upper": max_register_upper_bound(f),
        }
    if base_object == "cas":
        return {"lower": cas_lower_bound(f), "upper": cas_upper_bound(f)}
    if base_object == "register":
        return {
            "lower": register_lower_bound(k, n, f),
            "upper": register_upper_bound(k, n, f),
        }
    raise BoundViolation(f"unknown base object type {base_object!r}")


def max_writers_within_budget(n: int, f: int, budget: int) -> int:
    """Largest k whose Theorem 3 register count fits in ``budget``.

    The planning inverse of :func:`register_upper_bound`: given a fleet
    of ``n`` servers and a register budget, how many writers can Algorithm
    2 support?  Returns 0 if not even one writer fits.
    """
    _validate(1, n, f)
    if budget <= 0:
        raise BoundViolation(f"budget must be positive, got {budget}")
    # register_upper_bound is non-decreasing in k: binary search.
    if register_upper_bound(1, n, f) > budget:
        return 0
    low, high = 1, 2
    while register_upper_bound(high, n, f) <= budget:
        low, high = high, high * 2
    while high - low > 1:
        mid = (low + high) // 2
        if register_upper_bound(mid, n, f) <= budget:
            low = mid
        else:
            high = mid
    return low


def saturation_n(k: int, f: int) -> int:
    """The server count ``kf + f + 1`` beyond which more servers no longer
    reduce the register bounds (both equal ``kf + f + 1`` there)."""
    _validate_kf(k, f)
    return k * f + f + 1
