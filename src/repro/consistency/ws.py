"""Write-Sequential Regularity and Write-Sequential Safety checkers.

Definitions (Section 2 / Appendix A.3 of the paper):

* **WS-Regular**: for every write-sequential schedule, for each complete
  read ``rd`` there is a linearization of the subsequence consisting of
  ``rd`` and all the writes.
* **WS-Safe**: as WS-Regular, but only required for complete reads that
  are not concurrent with any write.

Because the schedules are write-sequential, the writes are totally ordered
by real time and the checks collapse to exact linear-time conditions:

* Let ``p`` be the last write that *precedes* ``rd`` (returns before the
  read is invoked), or none.
* WS-Safe (read not concurrent with any write): ``rd`` must return
  ``p``'s value, or the initial value if there is no preceding write.
* WS-Regular: ``rd`` may return the value of any write ``W`` that (a)
  ``rd`` does not precede (so ``W`` can be linearized before ``rd``) and
  (b) is not followed by a complete write that precedes ``rd`` — i.e.
  ``W = p`` or any write after ``p`` concurrent with ``rd``; plus the
  initial value when ``p`` is none.

Both checkers also offer a slow-path cross-check via the general
linearizability search (used in the test suite to validate the fast path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import RegisterSpec
from repro.sim.history import History, HistoryOp


@dataclass
class WSViolation:
    """A read that violates the checked condition."""

    read: HistoryOp
    allowed: "List[Any]"
    condition: str

    def __str__(self) -> str:
        return (
            f"{self.condition} violation: {self.read} returned"
            f" {self.read.result!r}, allowed {self.allowed!r}"
        )


def _ordered_writes(history: History) -> "List[HistoryOp]":
    """Writes in their (write-sequential) real-time order."""
    return sorted(history.writes, key=lambda w: w.invoke_time)


def _written_value(write: HistoryOp) -> Any:
    (value,) = write.args
    return value


def _last_preceding_write_index(
    writes: "List[HistoryOp]", read: HistoryOp
) -> int:
    """Index of the last write preceding ``read``; -1 if none."""
    last = -1
    for index, write in enumerate(writes):
        if write.precedes(read):
            last = index
    return last


def valid_read_values_ws_safe(
    history: History, read: HistoryOp, initial_value: Any = None
) -> "List[Any]":
    """Values WS-Safety allows ``read`` to return (singleton or empty).

    Only meaningful for reads not concurrent with any write; for other
    reads WS-Safety imposes no constraint and every value is allowed —
    signalled by returning ``None``.
    """
    writes = _ordered_writes(history)
    if any(read.concurrent_with(write) for write in writes):
        return None  # unconstrained
    last = _last_preceding_write_index(writes, read)
    if last < 0:
        return [initial_value]
    return [_written_value(writes[last])]


def valid_read_values_ws_regular(
    history: History, read: HistoryOp, initial_value: Any = None
) -> "List[Any]":
    """Values WS-Regularity allows ``read`` to return."""
    writes = _ordered_writes(history)
    last = _last_preceding_write_index(writes, read)
    allowed: "List[Any]" = []
    if last < 0:
        allowed.append(initial_value)
    for index, write in enumerate(writes):
        if index < last:
            continue  # superseded by a write that must precede the read
        if read.precedes(write):
            continue  # the write must follow the read
        allowed.append(_written_value(write))
    return allowed


def check_ws_safe(
    history: History, initial_value: Any = None
) -> "List[WSViolation]":
    """All WS-Safety violations in a history (empty list = satisfied).

    If the history is not write-sequential the condition is vacuous and an
    empty list is returned.
    """
    if not history.is_write_sequential():
        return []
    violations = []
    for read in history.reads:
        if not read.complete:
            continue
        allowed = valid_read_values_ws_safe(history, read, initial_value)
        if allowed is None:
            continue  # concurrent with a write: unconstrained
        if read.result not in allowed:
            violations.append(WSViolation(read, allowed, "WS-Safe"))
    return violations


def check_ws_regular(
    history: History,
    initial_value: Any = None,
    cross_check: bool = False,
) -> "List[WSViolation]":
    """All WS-Regularity violations in a history (empty list = satisfied).

    With ``cross_check=True`` every read is additionally validated through
    the general linearizability search over ``writes + {rd}`` — the
    literal Appendix A.3 definition — and a disagreement raises
    ``AssertionError`` (used by the test suite to validate the fast path).
    """
    if not history.is_write_sequential():
        return []
    violations = []
    writes = _ordered_writes(history)
    for read in history.reads:
        if not read.complete:
            continue
        allowed = valid_read_values_ws_regular(history, read, initial_value)
        ok = read.result in allowed
        if cross_check:
            spec = RegisterSpec(initial_value)
            slow = is_linearizable(writes + [read], spec)
            assert slow == ok, (
                f"fast/slow WS-Regular disagreement on {read}:"
                f" fast={ok} slow={slow}"
            )
        if not ok:
            violations.append(WSViolation(read, allowed, "WS-Regular"))
    return violations
