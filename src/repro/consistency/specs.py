"""Sequential specifications of the object types studied by the paper.

A sequential specification maps ``(state, operation, args)`` to
``(new_state, result)``.  The linearizability checker replays candidate
orders through a spec and compares produced results with observed ones.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple


def hashable_key(value: Any) -> Hashable:
    """A hashable stand-in for ``value`` (repr for unhashable payloads)."""
    try:
        hash(value)
        return value
    except TypeError:
        return ("__unhashable__", repr(value))


class SequentialSpec:
    """Interface of a sequential object specification."""

    def initial_state(self) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, name: str, args: tuple) -> "Tuple[Any, Any]":
        """Return ``(new_state, result)`` of applying the operation."""
        raise NotImplementedError

    def state_key(self, state: Any) -> Hashable:
        """Hashable key of a state (for memoization)."""
        return hashable_key(state)


class RegisterSpec(SequentialSpec):
    """Read/write register: ``read`` returns the last written value.

    Operation names: ``write`` (one arg, returns ``"ack"``) and ``read``
    (no args, returns the value).
    """

    def __init__(self, initial_value: Any = None):
        self.initial_value = initial_value

    def initial_state(self) -> Any:
        return self.initial_value

    def apply(self, state: Any, name: str, args: tuple) -> "Tuple[Any, Any]":
        if name == "write":
            (value,) = args
            return value, "ack"
        if name == "read":
            return state, state
        raise ValueError(f"register spec: unknown operation {name!r}")


class MaxRegisterSpec(SequentialSpec):
    """Max-register: ``read_max`` returns the largest value written so far.

    Operation names: ``write_max`` (one arg, returns ``"ok"``) and
    ``read_max`` (no args).  The value domain must be totally ordered.
    """

    def __init__(self, initial_value: Any):
        self.initial_value = initial_value

    def initial_state(self) -> Any:
        return self.initial_value

    def apply(self, state: Any, name: str, args: tuple) -> "Tuple[Any, Any]":
        if name == "write_max":
            (value,) = args
            new_state = state if state >= value else value
            return new_state, "ok"
        if name == "read_max":
            return state, state
        raise ValueError(f"max-register spec: unknown operation {name!r}")


class CASSpec(SequentialSpec):
    """Compare-and-swap: ``cas(exp, new)`` returns the old value."""

    def __init__(self, initial_value: Any):
        self.initial_value = initial_value

    def initial_state(self) -> Any:
        return self.initial_value

    def apply(self, state: Any, name: str, args: tuple) -> "Tuple[Any, Any]":
        if name == "cas":
            expected, new_value = args
            if state == expected:
                return new_value, state
            return state, state
        raise ValueError(f"CAS spec: unknown operation {name!r}")
