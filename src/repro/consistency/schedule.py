"""Schedule formalities of Appendix A.1, as utilities.

The paper works with *schedules*: sequences of invocations and responses.
Our :class:`~repro.sim.history.History` is the same information in record
form; this module supplies the paper's notation over it —

* ``ops(sigma)``, ``complete(sigma)``, ``pending(sigma)``,
* the per-client projection ``sigma|i`` and subset projection
  ``sigma|X``,
* well-formedness ("each sigma|i is sequential"),
* write-sequential and write-only predicates (already on History, re-
  exported here for the notation's sake),

plus an event-sequence view (:func:`to_event_sequence`) that renders a
history as the literal alternating invoke/response sequence, which the
schedule-level tests check for well-nesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def ops(history: History) -> "List[HistoryOp]":
    """``ops(sigma)``: all invoked operations."""
    return history.all_ops()


def complete(history: History) -> "List[HistoryOp]":
    """``complete(sigma)``: operations whose response is present."""
    return history.complete_ops


def pending(history: History) -> "List[HistoryOp]":
    """``pending(sigma)``: invoked operations with no response."""
    return history.pending_ops


def project_client(history: History, client_id: ClientId) -> "List[HistoryOp]":
    """``sigma|i``: the subsequence of client ``i``'s actions."""
    return [op for op in history.all_ops() if op.client_id == client_id]


def project_ops(
    history: History, subset: "Iterable[HistoryOp]"
) -> "List[HistoryOp]":
    """``sigma|X``: the subsequence of the operations in ``X``."""
    wanted = {op.seq for op in subset}
    return [op for op in history.all_ops() if op.seq in wanted]


def is_sequential(operations: "Sequence[HistoryOp]") -> bool:
    """No two operations are concurrent (a sequential schedule)."""
    ordered = sorted(operations, key=lambda op: op.invoke_time)
    for first, second in zip(ordered, ordered[1:]):
        if not first.precedes(second):
            return False
    return True


def is_well_formed(history: History) -> bool:
    """Each client's projection is sequential (well-formed schedules are
    the only ones the paper considers; the client runtime guarantees this
    by construction — one in-flight high-level operation per client)."""
    clients = {op.client_id for op in history.all_ops()}
    return all(
        is_sequential(project_client(history, client_id))
        for client_id in clients
    )


@dataclass(frozen=True)
class ScheduleEvent:
    """One invocation or response event in a schedule."""

    time: int
    kind: str  # "invoke" | "response"
    op: HistoryOp

    def __str__(self) -> str:
        if self.kind == "invoke":
            return (
                f"{self.time}: inv {self.op.name}{self.op.args}"
                f" by {self.op.client_id}"
            )
        return (
            f"{self.time}: res {self.op.name} -> {self.op.result!r}"
            f" by {self.op.client_id}"
        )


def to_event_sequence(history: History) -> "List[ScheduleEvent]":
    """The literal schedule: invoke/response events in time order."""
    events: "List[ScheduleEvent]" = []
    for op in history.all_ops():
        events.append(ScheduleEvent(op.invoke_time, "invoke", op))
        if op.complete:
            events.append(ScheduleEvent(op.return_time, "response", op))
    events.sort(key=lambda event: (event.time, event.kind == "response"))
    return events


def validate_event_sequence(events: "Sequence[ScheduleEvent]") -> None:
    """Sanity of a schedule: every response follows its invocation, and no
    client has two operations in flight simultaneously."""
    in_flight: "dict[ClientId, int]" = {}
    invoked: "set[int]" = set()
    for event in events:
        client = event.op.client_id
        if event.kind == "invoke":
            assert event.op.seq not in invoked, "duplicate invocation"
            invoked.add(event.op.seq)
            assert in_flight.get(client) is None, (
                f"{client} invoked {event.op.seq} with"
                f" {in_flight[client]} still in flight"
            )
            in_flight[client] = event.op.seq
        else:
            assert event.op.seq in invoked, "response before invocation"
            assert in_flight.get(client) == event.op.seq, (
                "response does not match the client's in-flight operation"
            )
            in_flight[client] = None
