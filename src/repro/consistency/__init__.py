"""Executable consistency conditions (Appendix A.3 of the paper).

* :mod:`repro.consistency.specs` — sequential specifications of the object
  types (register, max-register, CAS).
* :mod:`repro.consistency.linearizability` — a general linearizability
  (atomicity) checker for small histories.
* :mod:`repro.consistency.ws` — exact checkers for Write-Sequential
  Regularity (WS-Regular) and Write-Sequential Safety (WS-Safe).
* :mod:`repro.consistency.register_atomicity` — a fast register-specific
  atomicity test for histories with distinct write values.
"""

from repro.consistency.specs import (
    CASSpec,
    MaxRegisterSpec,
    RegisterSpec,
    SequentialSpec,
)
from repro.consistency.linearizability import (
    find_linearization,
    is_linearizable,
)
from repro.consistency.ws import (
    WSViolation,
    check_ws_regular,
    check_ws_safe,
    valid_read_values_ws_regular,
    valid_read_values_ws_safe,
)
from repro.consistency.mw_regularity import (
    check_mw_regular_strong,
    check_mw_regular_weak,
)
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.schedule import (
    is_well_formed,
    project_client,
    project_ops,
    to_event_sequence,
)

__all__ = [
    "CASSpec",
    "MaxRegisterSpec",
    "RegisterSpec",
    "SequentialSpec",
    "WSViolation",
    "check_mw_regular_strong",
    "check_mw_regular_weak",
    "check_ws_regular",
    "check_ws_safe",
    "find_linearization",
    "is_linearizable",
    "is_register_history_atomic",
    "is_well_formed",
    "project_client",
    "project_ops",
    "to_event_sequence",
    "valid_read_values_ws_regular",
    "valid_read_values_ws_safe",
]
