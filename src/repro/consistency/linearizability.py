"""A general linearizability (atomicity) checker.

Implements the classic Wing & Gong search with memoization (in the style
later refined by Lowe): a depth-first enumeration of linearization orders,
pruned by the real-time precedence relation and memoized on
``(set-of-linearized-ops, object-state)``.

Semantics of pending operations follow the paper's definition of a
linearization: a linearization contains **all complete** operations plus
**any subset** of the pending ones, each assigned a matching response.  A
pending operation therefore (a) may be omitted entirely, and (b) if
included, is allowed to produce any result the spec yields.

Exponential in the worst case, as the problem demands (checking
linearizability is NP-complete); our histories are small and heavily
constrained, so in practice this is fast.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.consistency.specs import SequentialSpec
from repro.sim.history import HistoryOp


def _precedence_masks(ops: "Sequence[HistoryOp]") -> "List[int]":
    """For each op, a bitmask of the ops that must be linearized before it."""
    masks = []
    for op in ops:
        mask = 0
        for j, other in enumerate(ops):
            if other is op:
                continue
            if other.precedes(op):
                mask |= 1 << j
        masks.append(mask)
    return masks


def find_linearization(
    ops: "Sequence[HistoryOp]",
    spec: SequentialSpec,
) -> "Optional[List[HistoryOp]]":
    """Return a valid linearization of ``ops``, or ``None`` if none exists.

    ``ops`` is an arbitrary iterable of high-level operations (not
    necessarily a full history — the WS checkers pass the subsequence of
    writes plus one read).
    """
    ops = list(ops)
    n = len(ops)
    if n == 0:
        return []
    masks = _precedence_masks(ops)
    complete_mask = 0
    for i, op in enumerate(ops):
        if op.complete:
            complete_mask |= 1 << i

    # Memoize failed (done-set, state-key) pairs.
    failed: "set[Tuple[int, Hashable]]" = set()
    order: "List[HistoryOp]" = []

    def search(done: int, state: Any) -> bool:
        if done & complete_mask == complete_mask:
            # All complete ops linearized; remaining pending ops may be
            # omitted, so we are finished.
            return True
        key = (done, spec.state_key(state))
        if key in failed:
            return False
        for i in range(n):
            bit = 1 << i
            if done & bit:
                continue
            if masks[i] & ~done:
                continue  # some predecessor not yet linearized
            op = ops[i]
            new_state, result = spec.apply(state, op.name, op.args)
            if op.complete and result != op.result:
                continue  # observed result contradicts this order
            order.append(op)
            if search(done | bit, new_state):
                return True
            order.pop()
        failed.add(key)
        return False

    if search(0, spec.initial_state()):
        return list(order)
    return None


def is_linearizable(
    ops: "Sequence[HistoryOp]",
    spec: SequentialSpec,
) -> bool:
    """True iff the operations admit a linearization under ``spec``."""
    return find_linearization(ops, spec) is not None
