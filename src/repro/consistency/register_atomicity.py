"""Fast register atomicity (linearizability) test.

For *write-sequential* histories with distinct write values the test is
exact and linear-ish: the write order is fixed by real time, each read has
a window of writes it may legally return (the WS-Regular window), and
atomicity additionally forbids old-new inversions between reads ordered by
real time.  Feasibility of assigning each read a write index inside its
window, monotone along read precedence, is decided greedily.

For histories with concurrent writes the function falls back to the
general linearizability search of
:mod:`repro.consistency.linearizability`, which is exact but exponential
in the worst case.
"""

from __future__ import annotations

from typing import Any, List

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import RegisterSpec
from repro.sim.history import History, HistoryOp


def _ordered_writes(history: History) -> "List[HistoryOp]":
    return sorted(history.writes, key=lambda w: w.invoke_time)


def _read_window(
    writes: "List[HistoryOp]", read: HistoryOp
) -> "tuple[int, int]":
    """Inclusive window ``[lo, hi]`` of write indices ``read`` may return.

    Index ``-1`` denotes the initial value.  ``lo`` is the last write that
    precedes the read; ``hi`` is the last write the read does not precede
    (a write the read precedes can only be linearized after it).
    """
    lo = -1
    hi = -1
    for index, write in enumerate(writes):
        if write.precedes(read):
            lo = index
        if not read.precedes(write):
            hi = index
    return lo, hi


def is_register_history_atomic(
    history: History, initial_value: Any = None
) -> bool:
    """True iff the high-level history is linearizable as a register.

    Requires distinct write values on the fast (write-sequential) path so
    a read's result identifies the write it read from.  Pending reads are
    unconstrained; a pending final write may or may not take effect.
    """
    if not history.is_write_sequential():
        ops = [op for op in history.all_ops()]
        return is_linearizable(ops, RegisterSpec(initial_value))

    writes = _ordered_writes(history)
    values = [w.args[0] for w in writes]

    def key(value: Any):
        # Unhashable payloads (lists, dicts) are keyed by repr so the
        # fast path still works for them.
        try:
            hash(value)
            return value
        except TypeError:
            return ("__unhashable__", repr(value))

    value_keys = [key(v) for v in values]
    if len(set(value_keys)) != len(value_keys):
        # Duplicate write values: results no longer identify writes; use
        # the exact search instead.
        return is_linearizable(
            list(history.all_ops()), RegisterSpec(initial_value)
        )

    if key(initial_value) in value_keys:
        # A read returning this value is ambiguous (initial or written);
        # decide exactly instead.
        return is_linearizable(
            list(history.all_ops()), RegisterSpec(initial_value)
        )
    value_to_index = {vk: index for index, vk in enumerate(value_keys)}

    reads = sorted(
        (r for r in history.reads if r.complete),
        key=lambda r: r.invoke_time,
    )
    # Each read's result identifies the write it read from, so we only
    # check its window and monotonicity along read precedence.
    assigned: "List[tuple[HistoryOp, int]]" = []
    for read in reads:
        result_key = key(read.result)
        if read.result == initial_value:
            index = -1
        elif result_key in value_to_index:
            index = value_to_index[result_key]
        else:
            return False  # read returned a never-written value
        lo, hi = _read_window(writes, read)
        if index < lo or index > hi:
            return False
        required = max(
            (j for other, j in assigned if other.precedes(read)),
            default=-1,
        )
        if index < required:
            return False  # old-new inversion
        assigned.append((read, index))
    return True
