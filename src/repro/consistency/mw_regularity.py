"""Multi-writer regularity conditions (Shao, Welch, Pierce & Lee [34]).

The paper's WS-Regularity constrains only *write-sequential* runs and is
"weaker than the multi-writer regularity generalizations defined in
[34]"; it also leaves open whether its lower bound is tight for those
stronger conditions.  To make the comparison concrete this module
implements the two ends of the [34] spectrum over arbitrary histories:

* **MW-Weak** (per-read write orders): every complete read, together with
  *all* writes, admits a linearization — but different reads may order
  the writes differently.
* **MW-Strong** (one write order): a *single* permutation of the writes,
  consistent with their real-time order, works for every read
  simultaneously.

Facts the test-suite checks empirically: atomicity implies MW-Strong
implies MW-Weak; on write-sequential histories both collapse to the
paper's WS-Regularity (the write order is forced); ABD without read
write-back satisfies MW-Weak on concurrent-write histories.

Both checkers are exact searches (exponential worst case) intended for
the small histories the simulator produces.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import RegisterSpec
from repro.consistency.ws import WSViolation
from repro.sim.history import History, HistoryOp


def _complete_reads(history: History) -> "List[HistoryOp]":
    return [r for r in history.reads if r.complete]


def check_mw_regular_weak(
    history: History, initial_value: Any = None
) -> "List[WSViolation]":
    """MW-Weak violations: reads that cannot be linearized with the writes.

    Each read is checked independently against the full write set (the
    literal per-read generalization of Lamport regularity to multiple
    writers).
    """
    writes = history.writes
    spec = RegisterSpec(initial_value)
    violations = []
    for read in _complete_reads(history):
        if not is_linearizable(writes + [read], spec):
            violations.append(
                WSViolation(read, allowed=[], condition="MW-Weak")
            )
    return violations


def _write_orders(writes: "Sequence[HistoryOp]"):
    """All permutations of the writes consistent with real-time order."""
    remaining = list(writes)

    def extend(prefix, rest):
        if not rest:
            yield list(prefix)
            return
        for index, candidate in enumerate(rest):
            others = rest[:index] + rest[index + 1 :]
            # candidate may come next iff no other remaining write
            # precedes it.
            if any(other.precedes(candidate) for other in others):
                continue
            prefix.append(candidate)
            yield from extend(prefix, others)
            prefix.pop()

    yield from extend([], remaining)


def _read_fits_order(
    order: "Sequence[HistoryOp]", read: HistoryOp, initial_value: Any
) -> bool:
    """Can ``read`` be inserted into this write order legally?"""
    # Position p means: after order[p-1], before order[p].
    for position in range(len(order) + 1):
        before = order[:position]
        after = order[position:]
        if any(read.precedes(write) for write in before):
            continue  # a write after the read in real time placed before it
        if any(write.precedes(read) for write in after):
            continue  # a write before the read in real time placed after it
        expected = before[-1].args[0] if before else initial_value
        if read.result == expected:
            return True
    return False


def classify_history(
    history: History,
    initial_value: Any = None,
    max_writes: int = 7,
) -> str:
    """The strongest condition a register history satisfies.

    Returns one of ``"atomic"``, ``"mw-strong"``, ``"mw-weak"``,
    ``"ws-regular"`` (write-sequential histories only), ``"ws-safe"``
    or ``"none"`` — in that order of strength.  Useful for triaging a
    failing emulation: the classification names exactly how far its
    guarantees degraded.
    """
    from repro.consistency.register_atomicity import (
        is_register_history_atomic,
    )
    from repro.consistency.ws import check_ws_regular, check_ws_safe

    if is_register_history_atomic(history, initial_value=initial_value):
        return "atomic"
    if not check_mw_regular_strong(
        history, initial_value=initial_value, max_writes=max_writes
    ):
        return "mw-strong"
    if not check_mw_regular_weak(history, initial_value=initial_value):
        return "mw-weak"
    if history.is_write_sequential() and not check_ws_regular(
        history, initial_value=initial_value
    ):
        return "ws-regular"
    if not check_ws_safe(history, initial_value=initial_value):
        return "ws-safe"
    return "none"


def check_mw_regular_strong(
    history: History,
    initial_value: Any = None,
    max_writes: int = 7,
) -> "List[WSViolation]":
    """MW-Strong violations (empty list = satisfied).

    Searches for one real-time-consistent write permutation serving every
    read.  Histories with more than ``max_writes`` writes are rejected to
    keep the permutation search bounded (raise the cap explicitly for
    bigger histories).

    When no single order works, every read is reported (the condition is
    global, so no specific read is "the" violator); callers usually only
    test emptiness.
    """
    writes = history.writes
    if len(writes) > max_writes:
        raise ValueError(
            f"history has {len(writes)} writes; raise max_writes"
            f" (exponential search) to check it"
        )
    reads = _complete_reads(history)
    if not reads:
        return []
    for order in _write_orders(writes):
        if all(
            _read_fits_order(order, read, initial_value) for read in reads
        ):
            return []
    return [
        WSViolation(read, allowed=[], condition="MW-Strong")
        for read in reads
    ]
