"""The experiment registry: every paper artifact as a callable.

Each experiment function rebuilds one table/figure of the paper and
returns an :class:`ExperimentResult` (title, headers, rows) that renders
to the paper-shaped ASCII table.  The benchmark harness times these
callables and asserts their qualitative claims; the CLI exposes them as
``python -m repro experiment <id>``; downstream users can call them
directly.

Registry ids: ``T1``, ``T1-sweep``, ``F1``, ``L1``, ``TH1``, ``TH2``,
``TH5``, ``TH6``, ``TH7``, ``TH8``, ``B1``, ``ABL``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.core import bounds
from repro.core.layout import RegisterLayout
from repro.core.layout_opt import capacitated_layout
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


@dataclass
class ExperimentResult:
    """A regenerated paper artifact."""

    experiment_id: str
    title: str
    headers: "Sequence[str]"
    rows: "List[List[Any]]"
    notes: str = ""
    #: scheduler seed the artifact was produced with (``None`` for the
    #: purely combinatorial experiments that simulate nothing).
    seed: "Optional[int]" = None

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready representation (for archiving results)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_jsonable(cell) for cell in row] for row in self.rows],
            "notes": self.notes,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result archived by :meth:`to_dict`.

        Rendering round-trips byte-identically: cells that survive JSON
        keep their type, and every other cell was already stringified the
        same way :func:`render_table` would have.
        """
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            notes=payload.get("notes", ""),
            seed=payload.get("seed"),
        )


def _jsonable(cell: Any) -> Any:
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


_REGISTRY: "Dict[str, Callable[..., ExperimentResult]]" = {}


def experiment(experiment_id: str, axis: "Optional[str]" = None,
               axis_default: "Optional[Callable[[dict], Sequence]]" = None):
    """Decorator registering an experiment under an id.

    ``axis`` names a keyword argument holding a sequence of independent
    sweep points (``k_values``, ``n_values``, ...).  The parallel engine
    (:mod:`repro.exec`) shards such experiments into one cell per axis
    value and concatenates the row blocks back in axis order, which is
    row-identical to the unsharded call.  ``axis_default`` computes the
    default axis values from the remaining keyword arguments when the
    caller did not pin the axis explicitly.
    """

    def wrap(fn):
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id
        fn.grid_axis = axis
        fn.grid_axis_default = axis_default
        return fn

    return wrap


def list_experiments() -> "List[str]":
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> "Callable[..., ExperimentResult]":
    """Resolve a registry id (or a function-name alias) to its callable."""
    from repro.errors import UnknownExperiment

    fn = _REGISTRY.get(experiment_id)
    if fn is None:
        # Accept the function name as an alias: ``table1_sweep`` == T1-sweep.
        for candidate in _REGISTRY.values():
            if candidate.__name__ == experiment_id:
                return candidate
        raise UnknownExperiment(
            f"unknown experiment {experiment_id!r};"
            f" known: {', '.join(list_experiments())}"
        )
    return fn


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment through the execution engine (serial, uncached).

    This is the single-cell path of :mod:`repro.exec` — the same code the
    parallel grid engine runs in its workers — so library calls, the CLI
    and pool workers all execute experiments identically.  Exceptions
    (unknown ids, violated claims) propagate to the caller unchanged.
    """
    from repro.exec.engine import execute_cell
    from repro.exec.grid import Cell

    outcome = execute_cell(Cell.make(experiment_id, kwargs))
    return outcome.result


# ---------------------------------------------------------------------------
# Table 1


@experiment("T1")
def table1(k: int = 4, n: int = 7, f: int = 2, seed: int = 0) -> ExperimentResult:
    """Table 1 with the register row measured on a deployed Algorithm 2."""
    from repro.core.abd import ABDEmulation
    from repro.core.cas_maxreg import CASABDEmulation

    measured = {}
    maxreg = ABDEmulation(n=2 * f + 1, f=f, scheduler=RandomScheduler(seed))
    cas = CASABDEmulation(n=2 * f + 1, f=f, scheduler=RandomScheduler(seed))
    registers = WSRegisterEmulation(
        k=k, n=n, f=f, scheduler=RandomScheduler(seed)
    )
    for emulation, name in (
        (maxreg, "max-register"),
        (cas, "cas"),
        (registers, "register"),
    ):
        writer = emulation.add_writer(0)
        writer.enqueue("write", "probe")
        assert emulation.system.run_to_quiescence(max_steps=500_000).satisfied
        measured[name] = emulation.object_map.n_objects
    rows = []
    for base in ("max-register", "cas", "register"):
        row = bounds.table1_row(base, k, n, f)
        rows.append([base, row["lower"], row["upper"], measured[base]])
    return ExperimentResult(
        "T1",
        f"Table 1 — resource complexity (k={k}, n={n}, f={f})",
        ["base object", "lower", "upper", "measured"],
        rows,
        seed=seed,
    )


@experiment(
    "T1-sweep",
    axis="k_values",
    axis_default=lambda kw: list(range(1, kw.get("k_max", 8) + 1)),
)
def table1_sweep(
    n: int = 7,
    f: int = 2,
    k_max: int = 8,
    k_values: "Optional[Sequence[int]]" = None,
) -> ExperimentResult:
    if k_values is None:
        k_values = range(1, k_max + 1)
    rows = [
        [
            k,
            2 * f + 1,
            bounds.register_lower_bound(k, n, f),
            WSRegisterEmulation(k=k, n=n, f=f).layout.total_registers,
        ]
        for k in k_values
    ]
    return ExperimentResult(
        "T1-sweep",
        f"Table 1 sweep — object count vs k (n={n}, f={f})",
        ["k", "max-reg/CAS", "register lower", "register measured"],
        rows,
    )


# ---------------------------------------------------------------------------
# Figures


@experiment("F1")
def figure1(k: int = 5, n: int = 6, f: int = 2) -> ExperimentResult:
    layout = RegisterLayout(k, n, f)
    layout.validate()
    rows = [
        [str(server_id), count]
        for server_id, count in sorted(layout.storage_profile().items())
    ]
    return ExperimentResult(
        "F1",
        f"Figure 1 — layout storage profile (k={k}, n={n}, f={f})",
        ["server", "registers stored"],
        rows,
        notes=layout.render(),
    )


@experiment("L1")
def lemma1_growth(
    k: int = 5, n: int = 7, f: int = 2, seed: "Optional[int]" = None
) -> ExperimentResult:
    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    # seed=None keeps the deterministic fair round-robin of the proof;
    # a seed re-runs the construction under that seeded random scheduler
    # (the claims are scheduler-independent — Ad_i does the forcing).
    scheduler = None if seed is None else RandomScheduler(seed)
    runner = Lemma1Runner(factory, k=k, f=f, scheduler=scheduler)
    runner.run()
    runner.assert_all_claims()
    rows = [
        [
            report.index,
            report.covered,
            report.index * f,
            report.covered_servers_in_F,
            report.triggered_fresh_servers,
            report.point_contention,
        ]
        for report in runner.reports
    ]
    return ExperimentResult(
        "L1",
        (
            f"Lemma 1 / Figure 2 — adversarial covering growth"
            f" (k={k}, n={n}, f={f})"
        ),
        [
            "write i",
            "|Cov(t_i)|",
            "bound i*f",
            "covered on F",
            "fresh servers",
            "contention",
        ],
        rows,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Theorems


def _th1_default_n_values(kw: dict) -> "List[int]":
    k, f = kw.get("k", 4), kw.get("f", 2)
    return list(range(2 * f + 1, bounds.saturation_n(k, f) + 3))


@experiment("TH1", axis="n_values", axis_default=_th1_default_n_values)
def theorem1_sweep(
    k: int = 4, f: int = 2, n_values: "Optional[Sequence[int]]" = None
) -> ExperimentResult:
    if n_values is None:
        n_values = _th1_default_n_values({"k": k, "f": f})
    rows = []
    for n in n_values:
        lower = bounds.register_lower_bound(k, n, f)
        upper = bounds.register_upper_bound(k, n, f)
        measured = WSRegisterEmulation(k=k, n=n, f=f).layout.total_registers
        rows.append([n, lower, upper, measured, upper - lower])
    return ExperimentResult(
        "TH1",
        f"Theorem 1 — register bounds vs n (k={k}, f={f})",
        ["n", "lower", "upper", "measured", "gap"],
        rows,
    )


@experiment(
    "TH2",
    axis="k_values",
    axis_default=lambda kw: [1, 2, 4, 8, 16],
)
def theorem2(
    k_values: "Sequence[int]" = (1, 2, 4, 8, 16), seed: int = 1
) -> ExperimentResult:
    from repro.core.collect_maxreg import CollectMaxRegister

    rows = []
    for k in k_values:
        register = CollectMaxRegister(
            k=k, initial_value=0, scheduler=RandomScheduler(seed)
        )
        rows.append(
            [k, bounds.k_max_register_lower_bound(k), register.total_registers]
        )
    return ExperimentResult(
        "TH2",
        "Theorem 2 — k-writer max-register space",
        ["k", "lower bound", "construction registers"],
        rows,
        seed=seed,
    )


@experiment(
    "TH5", axis="f_values", axis_default=lambda kw: [1, 2, 3]
)
def theorem5(f_values: "Sequence[int]" = (1, 2, 3)) -> ExperimentResult:
    from repro.core.theorem5 import partition_violation

    rows = []
    for f in f_values:
        violations = partition_violation(f)
        rows.append(
            [
                f,
                2 * f,
                bounds.min_servers(f),
                "WS-Safety VIOLATED" if violations else "safe",
            ]
        )
    return ExperimentResult(
        "TH5",
        "Theorem 5 — split-brain on n = 2f servers",
        ["f", "servers", "minimum", "outcome"],
        rows,
    )


@experiment("TH6")
def theorem6(k: int = 3, f: int = 1) -> ExperimentResult:
    from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation

    n = 2 * f + 1
    rows = []
    for F_tuple in itertools.combinations(range(n), f + 1):
        F = {ServerId(i) for i in F_tuple}

        def factory(scheduler, F=F):
            return ReplicatedMaxRegisterEmulation(
                k=k, n=n, f=f, scheduler=scheduler
            )

        runner = Lemma1Runner(factory, k=k, f=f, F=F)
        runner.run()
        covered = runner.reports[-1].per_server_covered
        for server_index in range(n):
            sid = ServerId(server_index)
            rows.append(
                [
                    "{" + ",".join(f"s{i}" for i in sorted(F_tuple)) + "}",
                    str(sid),
                    "yes" if sid in F else "no",
                    covered.get(sid, 0),
                ]
            )
    return ExperimentResult(
        "TH6",
        f"Theorem 6 — covered registers per server at n=2f+1 (k={k}, f={f})",
        ["F", "server", "in F", "covered"],
        rows,
    )


@experiment(
    "TH7",
    axis="capacities",
    axis_default=lambda kw: [1, 2, 3, 4, 6, 12, 24],
)
def theorem7(
    k: int = 6, f: int = 2, capacities: "Sequence[int]" = (1, 2, 3, 4, 6, 12, 24)
) -> ExperimentResult:
    rows = []
    for capacity in capacities:
        plan = capacitated_layout(k, f, capacity)
        rows.append(
            [
                capacity,
                plan.theorem7_floor,
                plan.servers,
                plan.total_registers,
                plan.max_per_server,
                plan.slack_over_floor,
            ]
        )
    return ExperimentResult(
        "TH7",
        f"Theorem 7 — server frontier under bounded storage (k={k}, f={f})",
        ["capacity m", "floor", "achieved n", "registers", "max/server", "slack"],
        rows,
    )


@experiment("TH8")
def theorem8(k: int = 6, n: int = 9, f: int = 2) -> ExperimentResult:
    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    runner = Lemma1Runner(factory, k=k, f=f)
    runner.run()
    rows = [
        [report.index, report.point_contention, report.covered]
        for report in runner.reports
    ]
    return ExperimentResult(
        "TH8",
        (
            f"Theorem 8 — resource growth at constant contention"
            f" (k={k}, n={n}, f={f})"
        ),
        ["writes", "point contention", "covered registers"],
        rows,
    )


# ---------------------------------------------------------------------------
# Appendix B and the ablations


@experiment(
    "B1",
    axis="update_counts",
    axis_default=lambda kw: [1, 2, 4, 8, 16, 32],
)
def cas_time_complexity(
    update_counts: "Sequence[int]" = (1, 2, 4, 8, 16, 32),
    seed: int = 0,
) -> ExperimentResult:
    from repro.core.cas_maxreg import SingleCASMaxRegister

    rows = []
    for n_updates in update_counts:
        register = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(seed)
        )
        client = register.add_client()
        for value in range(1, n_updates + 1):
            client.enqueue("write_max", value)
        assert register.system.run_to_quiescence(
            max_steps=2_000_000
        ).satisfied
        rows.append([n_updates, register.total_iterations])
    return ExperimentResult(
        "B1",
        "Appendix B — CAS max-register loop iterations vs monotone updates",
        ["updates", "CAS loop iterations"],
        rows,
        seed=seed,
    )


@experiment("SEP")
def separation(k: int = 6, f: int = 2) -> ExperimentResult:
    """The same adversary schedule against both substrates (why
    max-registers escape the lower bound)."""
    from repro.core.abd import ABDEmulation

    n = 2 * f + 1

    def register_factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    def maxreg_factory(scheduler):
        return ABDEmulation(n=n, f=f, scheduler=scheduler)

    register_runner = Lemma1Runner(register_factory, k=k, f=f)
    register_runner.run()
    maxreg_runner = Lemma1Runner(
        maxreg_factory, k=k, f=f, check_lemma2=False
    )
    maxreg_runner.run()
    register_cov = register_runner.covered_growth()
    maxreg_cov = maxreg_runner.covered_growth()
    rows = [
        [i + 1, register_cov[i], maxreg_cov[i]] for i in range(k)
    ]
    return ExperimentResult(
        "SEP",
        (
            f"Separation — covering under Ad_i: register vs max-register"
            f" substrate (k={k}, n={n}, f={f})"
        ),
        ["write i", "registers covered", "max-registers covered"],
        rows,
        notes=(
            f"register deployment owns"
            f" {register_runner.emulation.object_map.n_objects} objects;"
            f" max-register deployment owns"
            f" {maxreg_runner.emulation.object_map.n_objects}"
        ),
    )


@experiment("OQ")
def open_question_probe(
    k: int = 2, n: int = 5, f: int = 2, samples: int = 10, seed: int = 0
) -> ExperimentResult:
    """Probe the open tightness question: Algorithm 2 under concurrent
    writes vs the stronger [34] regularity conditions."""
    from repro.consistency.mw_regularity import (
        check_mw_regular_strong,
        check_mw_regular_weak,
    )

    weak = strong = 0
    for sample in range(samples):
        emu = WSRegisterEmulation(
            k=k, n=n, f=f, scheduler=RandomScheduler(seed + sample)
        )
        writers = [emu.add_writer(i) for i in range(k)]
        readers = [emu.add_reader() for _ in range(2)]
        for index, writer in enumerate(writers):
            writer.enqueue("write", f"w{index}")
        for reader in readers:
            reader.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
        if check_mw_regular_weak(emu.history):
            weak += 1
        if check_mw_regular_strong(emu.history):
            strong += 1
    return ExperimentResult(
        "OQ",
        (
            f"Open question probe — MW regularity of Algorithm 2 under"
            f" concurrency (k={k}, n={n}, f={f})"
        ),
        ["runs", "MW-Weak violations", "MW-Strong violations"],
        [[samples, weak, strong]],
        notes=(
            "zero violations = empirical evidence (not proof) that the"
            " space bound stays tight for the stronger conditions"
        ),
        seed=seed,
    )


#: ablation variant key -> (table label, function name in repro.core.ablation)
_ABLATION_VARIANTS = {
    "intact": ("Algorithm 2 (intact)", "baseline_no_violation"),
    "no-cover-avoidance": ("no cover avoidance", "cover_avoidance_violation"),
    "small-quorum": ("write quorum |R|-f-1", "small_quorum_violation"),
}


@experiment(
    "ABL",
    axis="variants",
    axis_default=lambda kw: list(_ABLATION_VARIANTS),
)
def ablations(
    variants: "Optional[Sequence[str]]" = None,
) -> ExperimentResult:
    from repro.core import ablation

    if variants is None:
        variants = list(_ABLATION_VARIANTS)
    rows = []
    for variant in variants:
        try:
            name, fn_name = _ABLATION_VARIANTS[variant]
        except KeyError:
            from repro.errors import InvalidConfig

            raise InvalidConfig(
                f"unknown ablation variant {variant!r};"
                f" known: {', '.join(_ABLATION_VARIANTS)}"
            ) from None
        violations = getattr(ablation, fn_name)()
        rows.append(
            [
                name,
                "SAFE" if not violations else "WS-Safety VIOLATED",
                str(violations[0]) if violations else "-",
            ]
        )
    return ExperimentResult(
        "ABL",
        "Ablations — Algorithm 2 mechanisms under the covering adversary",
        ["variant", "outcome", "detail"],
        rows,
    )
