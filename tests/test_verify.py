"""Tests for the one-call verification pipeline."""

import pytest

from repro.core.abd import ABDEmulation
from repro.core.ablation import small_quorum_violation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler
from repro.verify import CONDITIONS, VerificationReport, verify_run


def _clean_ws_run(seed=0):
    emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=RandomScheduler(seed))
    writers = [emu.add_writer(i) for i in range(2)]
    reader = emu.add_reader()
    for index in range(2):
        writers[index].enqueue("write", f"v{index}")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
    return emu


class TestVerifyRun:
    def test_clean_run_passes_ws_regular(self):
        report = verify_run(_clean_ws_run(), condition="ws-regular")
        assert report.ok
        assert report.checks["WS-Regularity"]
        assert report.checks["well-formed schedule"]
        assert report.checks["base objects atomic"]

    def test_clean_run_passes_ws_safe_and_mw(self):
        emu = _clean_ws_run(seed=1)
        for condition in ("ws-safe", "mw-weak", "mw-strong"):
            report = verify_run(emu, condition=condition)
            assert report.ok, report.details()

    def test_abd_passes_atomic(self):
        emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(2))
        a, b = emu.add_client(), emu.add_client()
        a.enqueue("write", "x")
        b.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        report = verify_run(emu, condition="atomic")
        assert report.ok

    def test_violation_reported(self):
        # Reuse the ablation scenario: it returns violations, but we want
        # the emulation object; rebuild it here via the module internals.
        from repro.core.ablation import (
            ScriptedWriteBlocker,
            SmallQuorumEmulation,
        )
        from repro.sim.scheduling import RoundRobinScheduler

        env = ScriptedWriteBlocker()
        emu = SmallQuorumEmulation(
            k=1,
            n=3,
            f=1,
            initial_value="v0",
            scheduler=RoundRobinScheduler(),
            environment=env,
        )
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        b0, b1, b2 = emu.layout.registers_for_writer(0)
        env.block(b1)
        env.block(b2)
        writer.enqueue("write", "v1")
        emu.kernel.run(
            max_steps=50_000,
            until=lambda k: writer.idle and not writer.program,
        )
        emu.kernel.crash_server(emu.layout.server_of(b0))
        reader.enqueue("read")
        emu.kernel.run(
            max_steps=50_000,
            until=lambda k: reader.idle and not reader.program,
        )

        report = verify_run(emu, condition="ws-safe", initial_value="v0")
        assert not report.ok
        assert not report.checks["WS-Safety"]
        assert any("WS-Safe" in v for v in report.violations)
        assert "FAIL" in report.details()

    def test_unknown_condition(self):
        with pytest.raises(ValueError):
            verify_run(_clean_ws_run(seed=3), condition="serializable")

    def test_substrate_audit_optional(self):
        report = verify_run(
            _clean_ws_run(seed=4), condition="ws-regular",
            audit_substrate=False,
        )
        assert "base objects atomic" not in report.checks
        assert report.ok

    def test_all_conditions_enumerated(self):
        assert set(CONDITIONS) == {
            "atomic",
            "ws-regular",
            "ws-safe",
            "mw-weak",
            "mw-strong",
            "max-register-atomic",
        }

    def test_max_register_condition(self):
        from repro.core.ft_maxreg import FTMaxRegister

        register = FTMaxRegister(n=5, f=2, scheduler=RandomScheduler(6))
        a, b = register.add_client(), register.add_client()
        a.enqueue("write_max", 5)
        b.enqueue("write_max", 3)
        a.enqueue("read_max")
        assert register.system.run_to_quiescence().satisfied
        report = verify_run(
            register, condition="max-register-atomic", initial_value=0
        )
        assert report.ok, report.details()
