"""Tests for Algorithm 2 under server crashes (f-tolerance, wait-freedom)."""

import pytest

from tests.conftest import drive_sequential

from repro.consistency.ws import check_ws_regular
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


def _emulation(k=2, n=5, f=2, seed=0):
    return WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))


class TestCrashTolerance:
    @pytest.mark.parametrize("crashed", [[0], [0, 1], [3, 4]])
    def test_operations_complete_with_up_to_f_crashes(self, crashed):
        emu = _emulation()
        for server_index in crashed:
            emu.kernel.crash_server(ServerId(server_index))
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        drive_sequential(
            emu.system,
            [(writer, "write", ("survives",)), (reader, "read", ())],
        )
        assert emu.history.reads[0].result == "survives"

    def test_crash_mid_run_preserves_ws_regularity(self):
        emu = _emulation(seed=5)
        CrashPlan().crash_server_at(30, ServerId(1)).install(emu.kernel)
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        script = []
        for i in range(3):
            script.append((writers[i % 2], "write", (f"v{i}",)))
            script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        assert emu.object_map.server(ServerId(1)).crashed
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_two_staggered_crashes(self):
        emu = _emulation(seed=8)
        plan = CrashPlan()
        plan.crash_server_at(20, ServerId(0))
        plan.crash_server_at(60, ServerId(2))
        plan.install(emu.kernel)
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        script = [(writer, "write", (f"v{i}",)) for i in range(3)]
        script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        assert emu.history.reads[0].result == "v2"
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_more_than_f_crashes_blocks_liveness(self):
        """Beyond the failure threshold the emulation may (and here does)
        lose liveness: quorums become unavailable."""
        emu = _emulation(n=5, f=2)
        for server_index in range(3):  # f+1 = 3 crashes
            emu.kernel.crash_server(ServerId(server_index))
        writer = emu.add_writer(0)
        writer.enqueue("write", "doomed")
        result = emu.kernel.run(max_steps=50_000)
        assert result.reason == "quiescent"  # stuck waiting, not returned
        assert not emu.history.writes[0].complete

    def test_client_crash_leaves_covering_writes(self):
        """A client crash mid-write leaves pending low-level writes that
        remain covering — the failure mode the lower bound exploits."""
        emu = _emulation(seed=2)
        writer = emu.add_writer(0)
        writer.enqueue("write", "partial")

        def write_phase_started(kernel) -> bool:
            return any(
                op.is_mutator and op.client_id == writer.client_id
                for op in kernel.pending.values()
            )

        result = emu.kernel.run(max_steps=10_000, until=write_phase_started)
        assert result.satisfied
        emu.kernel.crash_client(writer.client_id)
        result = emu.kernel.run(max_steps=50_000)
        assert result.reason == "quiescent"
        assert not emu.history.writes[0].complete
        # The client is gone but its low-level writes took effect anyway;
        # none remain pending only because the scheduler drained them —
        # what matters is the high-level write never returned.


class TestReadersUnderCrashes:
    def test_reader_not_blocked_by_crashed_scan(self):
        emu = _emulation(seed=4)
        emu.kernel.crash_server(ServerId(4))
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        drive_sequential(
            emu.system,
            [(writer, "write", ("x",)), (reader, "read", ())],
        )
        # The scan of the crashed server never completes; n-f others do.
        assert emu.history.reads[0].result == "x"

    def test_many_readers_with_crash(self):
        emu = _emulation(seed=6)
        emu.kernel.crash_server(ServerId(0))
        writer = emu.add_writer(0)
        readers = [emu.add_reader() for _ in range(4)]
        writer.enqueue("write", "y")
        emu.system.run_to_quiescence()
        for reader in readers:
            reader.enqueue("read")
        result = emu.system.run_to_quiescence()
        assert result.satisfied
        assert all(r.result == "y" for r in emu.history.reads)
