"""Tests for the Section 3.3 register layout (Figure 1)."""

import pytest

from repro.core import bounds
from repro.core.layout import RegisterLayout
from repro.sim.ids import ObjectId, ServerId


class TestFigure1:
    """The paper's concrete example: n=6, k=5, f=2."""

    def setup_method(self):
        self.layout = RegisterLayout(k=5, n=6, f=2)

    def test_parameters(self):
        assert self.layout.z == 1
        assert self.layout.params.y == 5
        assert self.layout.params.m == 5

    def test_total_registers(self):
        assert self.layout.total_registers == 25
        assert self.layout.total_registers == bounds.register_upper_bound(
            5, 6, 2
        )

    def test_each_writer_own_set(self):
        # z = 1: one writer per set.
        sets = {self.layout.set_index_for_writer(w) for w in range(5)}
        assert sets == {0, 1, 2, 3, 4}

    def test_validates(self):
        self.layout.validate()

    def test_render_mentions_all_servers(self):
        text = self.layout.render()
        for s in range(6):
            assert f"s{s}:" in text


class TestLayoutProperties:
    @pytest.mark.parametrize(
        "k,n,f",
        [
            (1, 3, 1),
            (2, 3, 1),
            (3, 5, 2),
            (4, 7, 2),
            (5, 6, 2),
            (7, 9, 2),
            (6, 10, 3),
            (9, 8, 2),
            (10, 23, 2),
        ],
    )
    def test_validate_over_sweep(self, k, n, f):
        layout = RegisterLayout(k, n, f)
        layout.validate()

    def test_sets_disjoint(self):
        layout = RegisterLayout(4, 7, 2)
        seen = set()
        for register_set in layout.sets:
            for oid in register_set:
                assert oid not in seen
                seen.add(oid)

    def test_sets_on_distinct_servers(self):
        layout = RegisterLayout(6, 9, 2)
        for register_set in layout.sets:
            servers = {layout.server_of(oid) for oid in register_set}
            assert len(servers) == len(register_set)

    def test_writer_assignment_z_per_set(self):
        layout = RegisterLayout(k=5, n=9, f=2)  # z = 3
        assert layout.z == 3
        assert layout.set_index_for_writer(0) == 0
        assert layout.set_index_for_writer(2) == 0
        assert layout.set_index_for_writer(3) == 1
        assert layout.set_index_for_writer(4) == 1

    def test_writers_of_set_partition(self):
        layout = RegisterLayout(k=7, n=9, f=2)
        all_writers = []
        for set_index in range(len(layout.sets)):
            all_writers.extend(layout.writers_of_set(set_index))
        assert sorted(all_writers) == list(range(7))

    def test_writer_index_bounds(self):
        layout = RegisterLayout(2, 5, 2)
        with pytest.raises(ValueError):
            layout.set_index_for_writer(2)
        with pytest.raises(ValueError):
            layout.set_index_for_writer(-1)

    def test_overflow_set_size(self):
        # k=5, n=9, f=2: z=3, full sets of y=9... wait y = zf+f+1 = 9.
        layout = RegisterLayout(k=5, n=9, f=2)
        assert layout.set_sizes[0] == 9
        # overflow: (5 mod 3)*2 + 3 = 7
        assert layout.set_sizes[1] == 7

    def test_quorum_sizes(self):
        layout = RegisterLayout(3, 7, 2)
        for set_index in range(len(layout.sets)):
            assert layout.write_quorum_size(set_index) == (
                len(layout.sets[set_index]) - 2
            )
        assert layout.read_quorum_servers() == 5


class TestTheorem1Pigeonhole:
    """The G-set structure used in Theorem 1's proof, on real layouts.

    The proof partitions servers into G (storing >= ceil(kf/(n-f-1))
    registers) and the rest, then argues |G| >= f+1.  Any layout actually
    achieving the coincidence points must exhibit that structure.
    """

    @pytest.mark.parametrize(
        "k,f",
        [(1, 1), (2, 1), (3, 2), (5, 2), (4, 3)],
    )
    def test_G_has_at_least_f_plus_1_servers_at_minimum_n(self, k, f):
        import math

        n = 2 * f + 1
        layout = RegisterLayout(k, n, f)
        threshold = math.ceil(k * f / (n - (f + 1)))
        G = [
            sid
            for sid, count in layout.storage_profile().items()
            if count >= threshold
        ]
        assert len(G) >= f + 1

    def test_non_G_servers_still_carry_kf(self):
        """Lemma 1(b): kf covered registers fit outside any f+1 servers —
        so the layout must place >= kf registers outside every (f+1)-set.
        Check the heaviest-loaded f+1 servers' complement."""
        import itertools

        k, n, f = 3, 5, 2
        layout = RegisterLayout(k, n, f)
        profile = layout.storage_profile()
        for F in itertools.combinations(profile, f + 1):
            outside = sum(
                count for sid, count in profile.items() if sid not in F
            )
            assert outside >= k * f


class TestPlacements:
    def test_placement_count(self):
        layout = RegisterLayout(3, 7, 2)
        assert len(layout.placements()) == layout.total_registers

    def test_placement_type_and_initial(self):
        layout = RegisterLayout(1, 3, 1, initial_value="init")
        server, type_name, initial = layout.placements()[0]
        assert type_name == "register"
        assert initial.val == "init"
        assert initial.ts == 0

    def test_storage_profile_balanced(self):
        layout = RegisterLayout(6, 6, 2)
        profile = layout.storage_profile()
        loads = sorted(profile.values())
        assert loads[-1] - loads[0] <= 1  # balanced placement

    def test_storage_profile_totals(self):
        layout = RegisterLayout(4, 7, 2)
        assert sum(layout.storage_profile().values()) == (
            layout.total_registers
        )
