"""White-box tests for Algorithm 2's collect/scan/cover machinery.

These pin down the trickiest behaviours with forced stepping: scans are
sequential per server, stale read responses are harmless, the cover set
retriggers with the *current* timestamped value, and the first write
starts from the wrSet = R_j initial state.
"""

import pytest

from repro.core.ws_register import WSRegisterClient, WSRegisterEmulation
from repro.sim.ids import ClientId, ObjectId
from repro.sim.kernel import ActionKind
from repro.sim.objects import OpKind
from repro.sim.scheduling import ClientPriorityScheduler, RoundRobinScheduler
from repro.sim.values import TSVal


def _emulation(k=1, n=3, f=1, scheduler=None):
    return WSRegisterEmulation(
        k=k, n=n, f=f, scheduler=scheduler or RoundRobinScheduler()
    )


def _protocol(runtime) -> WSRegisterClient:
    return runtime.protocol


class TestInitialState:
    def test_wrset_starts_as_Rj(self):
        emu = _emulation()
        writer = emu.add_writer(0)
        protocol = _protocol(writer)
        assert protocol.wr_set == set(emu.layout.registers_for_writer(0))
        assert protocol.cover_set == set()

    def test_reader_has_empty_wrset(self):
        emu = _emulation()
        reader = emu.add_reader()
        assert _protocol(reader).wr_set == set()

    def test_initial_tsval_is_bottom(self):
        emu = _emulation()
        writer = emu.add_writer(0)
        assert _protocol(writer).ts_val.ts == 0


class TestFirstWrite:
    def test_first_write_triggers_all_registers(self):
        emu = _emulation()
        writer = emu.add_writer(0)
        writer.enqueue("write", "v")
        assert emu.system.run_to_quiescence().satisfied
        triggered = {
            op.object_id
            for op in emu.kernel.ops.values()
            if op.is_mutator and op.client_id == writer.client_id
        }
        assert triggered == set(emu.layout.registers_for_writer(0))

    def test_write_carries_incremented_timestamp(self):
        emu = _emulation()
        writer = emu.add_writer(0)
        writer.enqueue("write", "v")
        assert emu.system.run_to_quiescence().satisfied
        stored = [
            obj.value for obj in emu.object_map.objects if obj.value.ts > 0
        ]
        assert stored and all(value.ts == 1 for value in stored)
        assert all(value.wid == 0 for value in stored)


class TestCoverRetrigger:
    def test_held_write_retriggers_current_value(self):
        """When a covering write finally responds, the handler immediately
        rewrites the *current* ts_val (lines 30-32)."""
        from repro.core.ablation import ScriptedWriteBlocker

        env = ScriptedWriteBlocker()
        emu = WSRegisterEmulation(
            k=1, n=3, f=1, scheduler=RoundRobinScheduler(), environment=env
        )
        b0, b1, b2 = emu.layout.registers_for_writer(0)
        env.block(b2)
        writer = emu.add_writer(0)
        writer.enqueue("write", "v1")
        assert emu.kernel.run(
            max_steps=10_000, until=lambda k: writer.idle
        ).satisfied
        writer.enqueue("write", "v2")
        assert emu.kernel.run(
            max_steps=10_000, until=lambda k: writer.idle and not writer.program
        ).satisfied
        protocol = _protocol(writer)
        assert protocol.cover_set == {b2}
        # Release the held write: the handler must retrigger ts_val (v2).
        held = [
            op for op in emu.kernel.pending.values() if op.object_id == b2
        ]
        assert len(held) == 1
        emu.kernel.force_respond(held[0].op_id)
        assert protocol.cover_set == set()
        retriggered = [
            op
            for op in emu.kernel.pending.values()
            if op.object_id == b2 and op.is_mutator
        ]
        assert len(retriggered) == 1
        assert retriggered[0].args[0].val == "v2"
        # When it responds, b2 finally holds the current value.
        emu.kernel.force_respond(retriggered[0].op_id)
        assert emu.object_map.object(b2).value.val == "v2"


class TestScans:
    def test_scan_reads_servers_registers_sequentially(self):
        emu = _emulation(k=2, n=3, f=1)  # 2 registers on some server
        reader = emu.add_reader()
        reader.enqueue("read")
        # Drive with client priority so triggers happen ASAP; track that at
        # most one outstanding read per server exists at any time.
        from repro.sim.events import EventListener

        class PerServerOutstanding(EventListener):
            def __init__(self, object_map):
                self.object_map = object_map
                self.outstanding = {}
                self.max_outstanding = 0

            def on_trigger(self, event):
                if event.op.kind is OpKind.READ:
                    sid = self.object_map.server_of(event.op.object_id)
                    self.outstanding[sid] = self.outstanding.get(sid, 0) + 1
                    self.max_outstanding = max(
                        self.max_outstanding, self.outstanding[sid]
                    )

            def on_respond(self, event):
                if event.op.kind is OpKind.READ:
                    sid = self.object_map.server_of(event.op.object_id)
                    self.outstanding[sid] -= 1

        monitor = PerServerOutstanding(emu.object_map)
        emu.kernel.add_listener(monitor)
        assert emu.system.run_to_quiescence().satisfied
        assert monitor.max_outstanding == 1  # line 16: one at a time

    def test_collect_returns_highest_timestamp(self):
        emu = _emulation(k=2, n=5, f=2)
        # Pre-load registers with different timestamps directly.
        registers = emu.layout.all_registers
        emu.object_map.object(registers[0]).value = TSVal(3, 0, "high")
        emu.object_map.object(registers[1]).value = TSVal(2, 0, "low")
        reader = emu.add_reader()
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[0].result == "high"

    def test_stale_read_responses_harmless(self):
        """A read left pending by an earlier collect may respond during a
        later one; it lands in rd_set with a current register value and
        cannot corrupt the maximum."""
        emu = _emulation(k=1, n=3, f=1)
        emu.kernel.crash_server(
            emu.layout.server_of(emu.layout.all_registers[0])
        )
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        writer.enqueue("write", "w1")
        assert emu.system.run_to_quiescence().satisfied
        # Two consecutive reads; the crashed server's scan never finishes,
        # leaving no respondable leftovers, while live-server leftovers
        # (if any) respond during the second collect.
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert [r.result for r in emu.history.reads] == ["w1", "w1"]
