"""Targeted tests for the G_i branch of the adversary (Definition 1.7).

``G_i = M_i`` exactly when ``|Q_i| < |F_i|`` — the corner where a server
in F already *responded* to a phase write (joining F_i) while fewer
non-F servers are covered.  The Lemma 1 runs against Algorithm 2 rarely
enter this corner (their trigger batches fill Q_i instantly), so these
tests drive it explicitly with forced steps.
"""

import pytest

from tests.conftest import ToyProtocol

from repro.core.adversary import AdversaryAdi
from repro.core.covering import CoveringTracker
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _setup(n_servers=4, f=1):
    placements = [(s, "register", None) for s in range(n_servers)]
    system = build_system(
        n_servers, placements, scheduler=RandomScheduler(0)
    )
    tracker = CoveringTracker(system.object_map, f)
    system.kernel.add_listener(tracker)
    adversary = AdversaryAdi(tracker)
    system.kernel.environment = adversary
    return system, tracker, adversary


class TestGiActivation:
    def test_gi_empty_while_balanced(self):
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3)}
        tracker.start_phase(1, F, 0)
        assert tracker.gi() == set()

    def test_gi_becomes_mi_when_fi_exceeds_qi(self):
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3)}  # f+1 = 2 servers
        tracker.start_phase(1, F, 0)

        # A phase write on F-server s2 responds: F_i = {s2}, Q_i = {}.
        c0 = system.add_client(ClientId(0), ToyProtocol(ObjectId(2)))
        c0.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        assert tracker.fi() == {ServerId(2)}
        assert tracker.qi() == set()

        # Now cover F-server s3 (no responded write there): M_i = {s3}.
        c1 = system.add_client(ClientId(1), ToyProtocol(ObjectId(3)))
        c1.enqueue("write", 2)
        system.kernel.force_client_step(ClientId(1))
        assert tracker.mi() == {ServerId(3)}
        # |Q_i| = 0 < |F_i| = 1: the G_i branch activates.
        assert tracker.gi() == {ServerId(3)}

        # And the adversary therefore blocks the covering write on s3.
        pending = [
            op
            for op in system.kernel.pending.values()
            if op.object_id == ObjectId(3)
        ]
        assert len(pending) == 1
        assert adversary.blocked(pending[0])

    def test_gi_deactivates_once_qi_catches_up(self):
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3)}
        tracker.start_phase(1, F, 0)

        # F_i = {s2} as before.
        c0 = system.add_client(ClientId(0), ToyProtocol(ObjectId(2)))
        c0.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        # Cover s3 (M_i) and a non-F server s0 (joins Q_i).
        c1 = system.add_client(ClientId(1), ToyProtocol(ObjectId(3)))
        c1.enqueue("write", 2)
        system.kernel.force_client_step(ClientId(1))
        assert tracker.gi() == {ServerId(3)}
        c2 = system.add_client(ClientId(2), ToyProtocol(ObjectId(0)))
        c2.enqueue("write", 3)
        system.kernel.force_client_step(ClientId(2))
        assert tracker.qi() == {ServerId(0)}
        # |Q_i| = 1 = |F_i|: G_i snaps back to empty (Definition 1.7).
        assert tracker.gi() == set()

    def test_blocked_writes_by_condition2_cover_gi_servers(self):
        """Run the same situation through the kernel's veto path."""
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3)}
        tracker.start_phase(1, F, 0)
        c0 = system.add_client(ClientId(0), ToyProtocol(ObjectId(2)))
        c0.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        c1 = system.add_client(ClientId(1), ToyProtocol(ObjectId(3)))
        c1.enqueue("write", 2)
        result = system.kernel.run(max_steps=1_000)
        # c1's write is on a G_i server: vetoed until the phase ends.
        assert result.reason == "blocked"
        assert adversary.vetoes > 0
        tracker.end_phase()
        assert system.run_to_quiescence(max_steps=1_000).satisfied
