"""Tests for the f-tolerant max-register."""

import pytest

from tests.conftest import drive_concurrent, drive_sequential

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import MaxRegisterSpec
from repro.core.ft_maxreg import FTMaxRegister
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


def _register(n=5, f=2, seed=0, write_back=True):
    return FTMaxRegister(
        n=n, f=f, scheduler=RandomScheduler(seed), write_back=write_back
    )


class TestBasics:
    def test_initial_value(self):
        reg = _register()
        client = reg.add_client()
        drive_sequential(reg.system, [(client, "read_max", ())])
        assert reg.history.all_ops()[0].result == 0

    def test_monotone(self):
        reg = _register()
        a, b = reg.add_client(), reg.add_client()
        drive_sequential(
            reg.system,
            [
                (a, "write_max", (5,)),
                (b, "write_max", (3,)),
                (a, "read_max", ()),
            ],
        )
        assert reg.history.all_ops()[-1].result == 5

    def test_space_is_n(self):
        assert _register(n=5, f=2).total_objects == 5
        assert _register(n=7, f=3).total_objects == 7

    def test_min_servers(self):
        with pytest.raises(ValueError):
            FTMaxRegister(n=4, f=2)


class TestFaultTolerance:
    def test_f_crashes(self):
        reg = _register()
        reg.kernel.crash_server(ServerId(0))
        reg.kernel.crash_server(ServerId(2))
        a, b = reg.add_client(), reg.add_client()
        drive_sequential(
            reg.system, [(a, "write_max", (9,)), (b, "read_max", ())]
        )
        assert reg.history.all_ops()[-1].result == 9

    def test_crash_mid_run(self):
        reg = _register(seed=3)
        CrashPlan().crash_server_at(5, ServerId(1)).install(reg.kernel)
        a = reg.add_client()
        drive_sequential(
            reg.system,
            [(a, "write_max", (4,)), (a, "write_max", (7,)), (a, "read_max", ())],
        )
        assert reg.history.all_ops()[-1].result == 7

    def test_too_many_crashes_blocks(self):
        reg = _register()
        for s in range(3):
            reg.kernel.crash_server(ServerId(s))
        client = reg.add_client()
        client.enqueue("write_max", 1)
        assert reg.kernel.run(max_steps=10_000).reason == "quiescent"
        assert not reg.history.all_ops()[0].complete


class TestAtomicity:
    @pytest.mark.parametrize("seed", range(8))
    def test_concurrent_linearizable(self, seed):
        reg = _register(seed=seed)
        clients = [reg.add_client() for _ in range(4)]
        invocations = [
            (clients[0], "write_max", (3,)),
            (clients[1], "write_max", (8,)),
            (clients[2], "read_max", ()),
            (clients[3], "read_max", ()),
        ]
        drive_concurrent(reg.system, invocations)
        assert is_linearizable(reg.history.all_ops(), MaxRegisterSpec(0))

    @pytest.mark.parametrize("seed", range(4))
    def test_regular_variant_monotone_reads(self, seed):
        """Without write-back, sequential reads by one client still never
        observe a regression once a write completed (monotone values +
        quorum intersection)."""
        reg = _register(seed=seed, write_back=False)
        writer, reader = reg.add_client(), reg.add_client()
        drive_sequential(
            reg.system,
            [
                (writer, "write_max", (5,)),
                (reader, "read_max", ()),
                (reader, "read_max", ()),
            ],
        )
        reads = [
            op.result
            for op in reg.history.all_ops()
            if op.name == "read_max"
        ]
        assert reads == sorted(reads)
        assert reads[0] == 5
