"""Tests for the shared-fleet multi-register deployment."""

import pytest

from repro.consistency.ws import check_ws_regular
from repro.core import bounds
from repro.core.multi import MultiRegisterDeployment, OffsetLayout
from repro.core.layout import RegisterLayout
from repro.sim.ids import ObjectId, ServerId
from repro.sim.scheduling import RandomScheduler


def _deployment(m=2, k=2, n=5, f=2, seed=0):
    return MultiRegisterDeployment(
        m=m, k=k, n=n, f=f, scheduler=RandomScheduler(seed)
    )


class TestOffsetLayout:
    def test_shifting(self):
        base = RegisterLayout(2, 5, 2)
        shifted = OffsetLayout(base, offset=100)
        originals = base.registers_for_writer(0)
        moved = shifted.registers_for_writer(0)
        assert [oid.index - 100 for oid in moved] == [
            oid.index for oid in originals
        ]

    def test_server_of_round_trip(self):
        base = RegisterLayout(2, 5, 2)
        shifted = OffsetLayout(base, offset=10)
        for writer in range(2):
            for oid in shifted.registers_for_writer(writer):
                expected = base.server_of(ObjectId(oid.index - 10))
                assert shifted.server_of(oid) == expected

    def test_registers_on_server_shifted(self):
        base = RegisterLayout(2, 5, 2)
        shifted = OffsetLayout(base, offset=10)
        for server_index in range(5):
            sid = ServerId(server_index)
            assert [
                oid.index - 10 for oid in shifted.registers_on_server(sid)
            ] == [oid.index for oid in base.registers_on_server(sid)]


class TestDeployment:
    def test_total_registers_scale_with_m(self):
        deployment = _deployment(m=3, k=2, n=5, f=2)
        per_register = bounds.register_upper_bound(2, 5, 2)
        assert deployment.total_registers == 3 * per_register

    def test_storage_profile_sums(self):
        deployment = _deployment(m=2, k=2, n=5, f=2)
        profile = deployment.storage_profile()
        assert sum(profile.values()) == deployment.total_registers

    def test_rejects_zero_registers(self):
        with pytest.raises(ValueError):
            MultiRegisterDeployment(m=0, k=1, n=3, f=1)


class TestIndependence:
    def test_registers_do_not_interfere(self):
        deployment = _deployment(m=2, seed=3)
        reg0 = deployment.register(0)
        reg1 = deployment.register(1)
        w0 = reg0.add_writer(0)
        w1 = reg1.add_writer(0)
        r0 = reg0.add_reader()
        r1 = reg1.add_reader()
        w0.enqueue("write", "zero")
        w1.enqueue("write", "one")
        assert deployment.system.run_to_quiescence().satisfied
        r0.enqueue("read")
        r1.enqueue("read")
        assert deployment.system.run_to_quiescence().satisfied
        assert reg0.history.reads[-1].result == "zero"
        assert reg1.history.reads[-1].result == "one"

    def test_per_register_histories_are_disjoint(self):
        deployment = _deployment(m=2, seed=4)
        reg0, reg1 = deployment.register(0), deployment.register(1)
        w0 = reg0.add_writer(0)
        w1 = reg1.add_writer(1)
        w0.enqueue("write", "a")
        w1.enqueue("write", "b")
        assert deployment.system.run_to_quiescence().satisfied
        assert len(reg0.history) == 1
        assert len(reg1.history) == 1
        assert reg0.history.writes[0].args == ("a",)

    def test_each_register_ws_regular(self):
        deployment = _deployment(m=2, k=2, seed=5)
        views = [deployment.register(i) for i in range(2)]
        writers = {
            (i, w): views[i].add_writer(w) for i in range(2) for w in range(2)
        }
        readers = {i: views[i].add_reader() for i in range(2)}
        for round_index in range(2):
            for i in range(2):
                writers[(i, round_index % 2)].enqueue(
                    "write", f"reg{i}-round{round_index}"
                )
                readers[i].enqueue("read")
            assert deployment.system.run_to_quiescence().satisfied
        for i in range(2):
            assert check_ws_regular(views[i].history, cross_check=True) == []

    def test_duplicate_writer_rejected(self):
        deployment = _deployment()
        reg = deployment.register(0)
        reg.add_writer(0)
        with pytest.raises(ValueError):
            reg.add_writer(0)

    def test_scans_touch_only_own_registers(self):
        """Collects must scan delta^-1(s) *within the register's own
        base-object set* — never a co-hosted register's objects."""
        deployment = _deployment(m=2, seed=8)
        reg0 = deployment.register(0)
        own = set(oid.index for w in range(2)
                  for oid in reg0.layout.registers_for_writer(w))
        reader = reg0.add_reader()
        reader.enqueue("read")
        assert deployment.system.run_to_quiescence().satisfied
        touched = {
            op.object_id.index
            for op in deployment.kernel.ops.values()
            if op.client_id == reader.client_id
        }
        assert touched <= own
        assert touched  # it did scan something

    def test_writes_touch_only_own_registers(self):
        deployment = _deployment(m=2, seed=9)
        reg1 = deployment.register(1)
        own = set(
            oid.index for w in range(2)
            for oid in reg1.layout.registers_for_writer(w)
        )
        writer = reg1.add_writer(0)
        writer.enqueue("write", "x")
        assert deployment.system.run_to_quiescence().satisfied
        touched = {
            op.object_id.index
            for op in deployment.kernel.ops.values()
            if op.client_id == writer.client_id and op.is_mutator
        }
        assert touched <= own


class TestSharedFailures:
    def test_one_crash_hits_all_registers(self):
        deployment = _deployment(m=2, seed=6)
        deployment.crash_server(0)
        assert deployment.object_map.server(ServerId(0)).crashed
        # Both registers keep working (one crash <= f).
        for i in range(2):
            view = deployment.register(i)
            writer = view.add_writer(0)
            reader = view.add_reader()
            writer.enqueue("write", f"v{i}")
            assert deployment.system.run_to_quiescence().satisfied
            reader.enqueue("read")
            assert deployment.system.run_to_quiescence().satisfied
            assert view.history.reads[-1].result == f"v{i}"

    def test_f_crashes_tolerated_by_all(self):
        deployment = _deployment(m=3, seed=7)
        views = [deployment.register(i) for i in range(3)]
        writers = [view.add_writer(0) for view in views]
        for i, writer in enumerate(writers):
            writer.enqueue("write", f"before{i}")
        assert deployment.system.run_to_quiescence().satisfied
        deployment.crash_server(1)
        deployment.crash_server(3)
        readers = [view.add_reader() for view in views]
        for reader in readers:
            reader.enqueue("read")
        assert deployment.system.run_to_quiescence().satisfied
        for i, view in enumerate(views):
            assert view.history.reads[-1].result == f"before{i}"
