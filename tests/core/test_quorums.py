"""Tests for the quorum-system verification."""

import pytest

from repro.core.collect_maxreg import PerWriterLayout
from repro.core.layout import RegisterLayout
from repro.core.quorums import (
    QuorumSystem,
    verify_quorum_properties,
)


class TestFamilies:
    def test_write_quorum_sizes(self):
        layout = RegisterLayout(2, 5, 2)
        system = QuorumSystem(layout)
        for quorum in system.write_quorums(0):
            assert len(quorum) == len(layout.sets[0]) - 2

    def test_read_quorum_server_sets(self):
        layout = RegisterLayout(1, 3, 1)
        system = QuorumSystem(layout)
        server_sets = list(system.read_quorum_server_sets())
        assert len(server_sets) == 3  # C(3, 2)
        assert all(len(s) == 2 for s in server_sets)

    def test_read_quorum_materialization(self):
        layout = RegisterLayout(1, 3, 1)
        system = QuorumSystem(layout)
        for servers in system.read_quorum_server_sets():
            quorum = system.read_quorum(servers)
            for register in quorum:
                assert layout.server_of(register) in servers

    def test_enumeration_guard(self):
        layout = RegisterLayout(10, 23, 2)  # large saturated layout
        system = QuorumSystem(layout)
        system.MAX_ENUMERATION = 10
        with pytest.raises(ValueError):
            list(system.read_quorum_server_sets())


class TestSectionThreeThreeClaims:
    @pytest.mark.parametrize(
        "k,n,f",
        [(1, 3, 1), (2, 3, 1), (2, 5, 2), (3, 5, 2), (3, 7, 2), (5, 6, 2)],
    )
    def test_properties_hold_for_paper_layouts(self, k, n, f):
        stats = verify_quorum_properties(RegisterLayout(k, n, f))
        for entry in stats:
            # The paper's phrasing: a read quorum misses at most f of any
            # set (one register per unscanned server).
            assert entry.min_read_cover >= entry.set_size - f
            assert entry.min_write_read_intersection >= 1

    def test_figure1_instance(self):
        stats = verify_quorum_properties(RegisterLayout(5, 6, 2))
        # z = 1: every set has exactly one writer and supports one.
        assert all(s.writers_assigned == s.writers_supported == 1
                   for s in stats)

    def test_per_writer_layout_also_satisfies(self):
        layout = PerWriterLayout(2, 5, 2)
        stats = verify_quorum_properties(layout)
        for entry in stats:
            assert entry.min_read_cover >= entry.set_size - 2

    def test_intersection_lower_bound_is_achieved(self):
        """The worst case |R_i| - 2f really occurs (the bound is tight),
        which is why Lemma 7 needs the f+1-server argument rather than
        a bigger intersection."""
        layout = RegisterLayout(1, 3, 1)  # |R_0| = 3, f = 1
        stats = verify_quorum_properties(layout)[0]
        assert stats.min_write_read_intersection == 1  # = |R| - 2f
