"""Tests for the k-register max-register and the (2f+1)k emulation."""

import pytest

from tests.conftest import drive_concurrent, drive_sequential

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import MaxRegisterSpec
from repro.consistency.ws import check_ws_regular
from repro.core import bounds
from repro.core.collect_maxreg import (
    CollectMaxRegister,
    PerWriterLayout,
    ReplicatedMaxRegisterEmulation,
)
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


class TestCollectMaxRegister:
    def test_uses_exactly_k_registers(self):
        """The construction matches Theorem 2's lower bound of k."""
        for k in (1, 3, 6):
            mreg = CollectMaxRegister(k=k)
            assert mreg.total_registers == k
            assert mreg.total_registers == bounds.k_max_register_lower_bound(k)

    def test_write_then_read(self):
        mreg = CollectMaxRegister(k=3, scheduler=RandomScheduler(0))
        writer = mreg.add_writer(1)
        reader = mreg.add_reader()
        drive_sequential(
            mreg.system, [(writer, "write_max", (9,)), (reader, "read_max", ())]
        )
        assert mreg.history.all_ops()[-1].result == 9

    def test_max_across_writers(self):
        mreg = CollectMaxRegister(k=3, scheduler=RandomScheduler(1))
        writers = [mreg.add_writer(i) for i in range(3)]
        reader = mreg.add_reader()
        drive_sequential(
            mreg.system,
            [
                (writers[0], "write_max", (4,)),
                (writers[1], "write_max", (9,)),
                (writers[2], "write_max", (6,)),
                (reader, "read_max", ()),
            ],
        )
        assert mreg.history.all_ops()[-1].result == 9

    def test_smaller_write_is_noop(self):
        mreg = CollectMaxRegister(k=2, scheduler=RandomScheduler(2))
        writer = mreg.add_writer(0)
        reader = mreg.add_reader()
        drive_sequential(
            mreg.system,
            [
                (writer, "write_max", (8,)),
                (writer, "write_max", (3,)),
                (reader, "read_max", ()),
            ],
        )
        assert mreg.history.all_ops()[-1].result == 8

    @pytest.mark.parametrize("seed", range(8))
    def test_atomicity_under_concurrency(self, seed):
        mreg = CollectMaxRegister(k=2, scheduler=RandomScheduler(seed))
        writers = [mreg.add_writer(i) for i in range(2)]
        readers = [mreg.add_reader() for _ in range(2)]
        invocations = [
            (writers[0], "write_max", (5,)),
            (writers[1], "write_max", (8,)),
            (readers[0], "read_max", ()),
            (readers[1], "read_max", ()),
        ]
        drive_concurrent(mreg.system, invocations)
        assert is_linearizable(mreg.history.all_ops(), MaxRegisterSpec(0))

    def test_reader_cannot_write(self):
        mreg = CollectMaxRegister(k=2)
        reader = mreg.add_reader()
        reader.enqueue("write_max", 3)
        with pytest.raises(RuntimeError):
            mreg.system.run_to_quiescence()

    def test_writer_index_validated(self):
        mreg = CollectMaxRegister(k=2)
        with pytest.raises(ValueError):
            mreg.add_writer(2)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            CollectMaxRegister(k=0)


class TestPerWriterLayout:
    def test_total_is_nk(self):
        layout = PerWriterLayout(k=3, n=5, f=2)
        assert layout.total_registers == 15
        layout.validate()

    def test_tight_at_minimum_servers(self):
        """(2f+1)k equals the Theorem 1 lower bound at n = 2f+1."""
        for k in (1, 2, 4):
            for f in (1, 2):
                n = 2 * f + 1
                layout = PerWriterLayout(k=k, n=n, f=f)
                assert layout.total_registers == (
                    bounds.register_lower_bound(k, n, f)
                )

    def test_one_register_per_server_per_writer(self):
        layout = PerWriterLayout(k=2, n=5, f=2)
        for w in range(2):
            registers = layout.registers_for_writer(w)
            assert len(registers) == 5
            servers = {layout.server_of(oid) for oid in registers}
            assert len(servers) == 5

    def test_storage_profile_k_per_server(self):
        layout = PerWriterLayout(k=4, n=5, f=2)
        assert all(
            count == 4 for count in layout.storage_profile().values()
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PerWriterLayout(k=1, n=4, f=2)
        with pytest.raises(ValueError):
            PerWriterLayout(k=0, n=3, f=1)


class TestReplicatedMaxRegisterEmulation:
    def test_read_after_writes(self):
        emu = ReplicatedMaxRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(0)
        )
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        drive_sequential(
            emu.system,
            [
                (writers[0], "write", ("a",)),
                (writers[1], "write", ("b",)),
                (reader, "read", ()),
            ],
        )
        assert emu.history.reads[0].result == "b"

    @pytest.mark.parametrize("seed", range(5))
    def test_ws_regular(self, seed):
        emu = ReplicatedMaxRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(seed)
        )
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        script = []
        for i in range(2):
            for w, writer in enumerate(writers):
                script.append((writer, "write", (f"w{w}-{i}",)))
                script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_f_crashes_tolerated(self):
        emu = ReplicatedMaxRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(3)
        )
        emu.kernel.crash_server(ServerId(0))
        emu.kernel.crash_server(ServerId(4))
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        drive_sequential(
            emu.system, [(writer, "write", ("ok",)), (reader, "read", ())]
        )
        assert emu.history.reads[0].result == "ok"

    def test_resource_count(self):
        emu = ReplicatedMaxRegisterEmulation(k=3, n=5, f=2)
        assert emu.total_registers == 15
        assert emu.object_map.n_objects == 15
