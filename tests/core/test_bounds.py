"""Tests for the closed-form bounds (Table 1, Theorems 1-7)."""

import math

import pytest

from repro.core import bounds


class TestTable1Constants:
    @pytest.mark.parametrize("f", [1, 2, 3, 5, 10])
    def test_max_register_row(self, f):
        assert bounds.max_register_lower_bound(f) == 2 * f + 1
        assert bounds.max_register_upper_bound(f) == 2 * f + 1

    @pytest.mark.parametrize("f", [1, 2, 3, 5, 10])
    def test_cas_row(self, f):
        assert bounds.cas_lower_bound(f) == 2 * f + 1
        assert bounds.cas_upper_bound(f) == 2 * f + 1

    def test_table1_row_dispatch(self):
        assert bounds.table1_row("max-register", 3, 7, 2) == {
            "lower": 5,
            "upper": 5,
        }
        assert bounds.table1_row("cas", 3, 7, 2) == {"lower": 5, "upper": 5}
        row = bounds.table1_row("register", 3, 7, 2)
        assert row["lower"] <= row["upper"]

    def test_table1_row_unknown(self):
        with pytest.raises(ValueError):
            bounds.table1_row("queue", 1, 3, 1)


class TestRegisterBounds:
    def test_lower_bound_formula(self):
        # kf + ceil(kf/(n-(f+1)))*(f+1)
        assert bounds.register_lower_bound(3, 7, 2) == (
            6 + math.ceil(6 / 4) * 3
        )

    def test_upper_bound_formula(self):
        # z = floor((7-3)/2) = 2, kf + ceil(k/z)(f+1)
        assert bounds.register_upper_bound(3, 7, 2) == 6 + 2 * 3

    def test_coincide_at_minimum_servers(self):
        """n = 2f+1: both bounds equal k(2f+1)."""
        for k in range(1, 8):
            for f in range(1, 5):
                n = 2 * f + 1
                expected = k * (2 * f + 1)
                assert bounds.register_lower_bound(k, n, f) == expected
                assert bounds.register_upper_bound(k, n, f) == expected
                assert bounds.bounds_coincide(k, n, f)

    def test_coincide_at_saturation(self):
        """n >= kf+f+1: both bounds equal kf+f+1."""
        for k in range(1, 8):
            for f in range(1, 5):
                n = bounds.saturation_n(k, f)
                expected = k * f + f + 1
                assert bounds.register_lower_bound(k, n, f) == expected
                assert bounds.register_upper_bound(k, n, f) == expected
                # More servers do not help further.
                assert (
                    bounds.register_upper_bound(k, n + 3, f) == expected
                )

    def test_lower_never_exceeds_upper(self):
        for k in range(1, 10):
            for f in range(1, 4):
                for n in range(2 * f + 1, 2 * f + 20):
                    assert bounds.register_lower_bound(
                        k, n, f
                    ) <= bounds.register_upper_bound(k, n, f)

    def test_grows_linearly_with_k(self):
        """The headline result: register cost is linear in k ..."""
        costs = [bounds.register_lower_bound(k, 7, 2) for k in range(1, 10)]
        deltas = [b - a for a, b in zip(costs, costs[1:])]
        assert all(d >= 2 for d in deltas)  # at least f per writer

    def test_decreases_with_n(self):
        """... and non-increasing in n (up to saturation)."""
        costs = [bounds.register_lower_bound(5, n, 2) for n in range(5, 20)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_minimum_regardless_of_servers(self):
        """At least kf + f + 1 registers no matter how many servers."""
        for k in range(1, 8):
            for f in range(1, 4):
                for n in range(2 * f + 1, 40):
                    assert (
                        bounds.register_lower_bound(k, n, f)
                        >= k * f + f + 1
                    )

    def test_gap_is_small_and_nonnegative(self):
        for k in range(1, 12):
            for f in range(1, 4):
                for n in range(2 * f + 1, 30):
                    gap = bounds.register_bound_gap(k, n, f)
                    assert 0 <= gap <= (f + 1) * math.ceil(k / 2)


class TestValidation:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            bounds.register_lower_bound(0, 5, 2)

    def test_rejects_nonpositive_f(self):
        with pytest.raises(ValueError):
            bounds.register_upper_bound(1, 5, 0)

    def test_rejects_too_few_servers(self):
        with pytest.raises(ValueError):
            bounds.register_lower_bound(1, 4, 2)

    def test_min_servers(self):
        assert bounds.min_servers(2) == 5
        with pytest.raises(ValueError):
            bounds.min_servers(0)


class TestLayoutArithmetic:
    def test_z_y_examples(self):
        # Figure 1: n=6, k=5, f=2 -> z=1, y=5.
        assert bounds.z_value(6, 2) == 1
        assert bounds.y_value(6, 2) == 5

    def test_set_sizes_sum_to_upper_bound(self):
        for k in range(1, 10):
            for f in range(1, 4):
                for n in range(2 * f + 1, 20):
                    sizes = bounds.layout_set_sizes(k, n, f)
                    assert sum(sizes) == bounds.register_upper_bound(k, n, f)

    def test_set_sizes_fit_on_servers(self):
        for k in range(1, 10):
            for f in range(1, 4):
                for n in range(2 * f + 1, 20):
                    assert all(
                        2 * f + 1 <= size <= n
                        for size in bounds.layout_set_sizes(k, n, f)
                    )

    def test_figure1_total(self):
        sizes = bounds.layout_set_sizes(5, 6, 2)
        assert sizes == [5, 5, 5, 5, 5]
        assert sum(sizes) == 25

    def test_writers_supported(self):
        # A full set of y = zf+f+1 supports exactly z writers.
        for f in range(1, 4):
            for z in range(1, 6):
                assert bounds.writers_supported_by_set(
                    z * f + f + 1, f
                ) == z


class TestBudgetInverse:
    def test_round_trip(self):
        for n, f in [(5, 2), (7, 2), (9, 4), (13, 3)]:
            for k in range(1, 12):
                budget = bounds.register_upper_bound(k, n, f)
                recovered = bounds.max_writers_within_budget(n, f, budget)
                assert recovered >= k
                # And the recovered k really fits.
                assert (
                    bounds.register_upper_bound(recovered, n, f) <= budget
                )

    def test_tightness(self):
        """One register below the k-writer cost supports at most k-1."""
        n, f = 7, 2
        for k in range(2, 10):
            budget = bounds.register_upper_bound(k, n, f) - 1
            assert bounds.max_writers_within_budget(n, f, budget) < k

    def test_zero_when_budget_too_small(self):
        # One writer needs f + (f+1) = 2f+1 registers at best.
        assert bounds.max_writers_within_budget(7, 2, 4) == 0

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            bounds.max_writers_within_budget(5, 2, 0)

    def test_monotone_in_budget(self):
        values = [
            bounds.max_writers_within_budget(7, 2, budget)
            for budget in range(5, 60)
        ]
        assert values == sorted(values)


class TestOtherTheorems:
    def test_theorem2_k_max_register(self):
        for k in range(1, 10):
            assert bounds.k_max_register_lower_bound(k) == k

    def test_theorem6_per_server(self):
        assert bounds.per_server_lower_bound(4, 5, 2) == 4
        assert bounds.per_server_lower_bound(4, 6, 2) == 0

    def test_theorem7_bounded_storage(self):
        # ceil(kf/m) + f + 1
        assert bounds.servers_needed_bounded_storage(4, 2, 2) == 4 + 3
        assert bounds.servers_needed_bounded_storage(4, 2, 8) == 1 + 3

    def test_theorem7_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            bounds.servers_needed_bounded_storage(1, 1, 0)

    def test_theorem7_consistent_with_theorem1(self):
        """If every server stores <= m registers, Theorem 1's total must be
        attainable: n*m >= lower bound at the Theorem 7 minimum n."""
        for k in range(1, 8):
            for f in range(1, 4):
                for m in range(k, 3 * k):
                    n = bounds.servers_needed_bounded_storage(k, f, m)
                    if n >= 2 * f + 1:
                        assert n * m >= bounds.register_lower_bound(
                            k, n, f
                        ) - (f + 1) * m  # slack: F servers' storage
