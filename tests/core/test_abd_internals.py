"""White-box tests for the ABD client: phases, quorums, timestamps."""

import pytest

from repro.core.abd import ABDClient, ABDEmulation
from repro.sim.ids import ClientId, ObjectId
from repro.sim.objects import OpKind
from repro.sim.scheduling import ClientPriorityScheduler, RandomScheduler
from repro.sim.values import TSVal


class TestPhases:
    def test_write_issues_two_quorum_rounds(self):
        emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(0))
        client = emu.add_client()
        client.enqueue("write", "x")
        assert emu.system.run_to_quiescence().satisfied
        kinds = [op.kind for op in emu.kernel.ops.values()]
        assert kinds.count(OpKind.READ_MAX) == 5
        assert kinds.count(OpKind.WRITE_MAX) == 5

    def test_atomic_read_issues_write_back(self):
        emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(1))
        client = emu.add_client()
        client.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        kinds = [op.kind for op in emu.kernel.ops.values()]
        assert kinds.count(OpKind.READ_MAX) == 5
        assert kinds.count(OpKind.WRITE_MAX) == 5  # the write-back

    def test_regular_read_skips_write_back(self):
        emu = ABDEmulation(
            n=5, f=2, write_back=False, scheduler=RandomScheduler(2)
        )
        client = emu.add_client()
        client.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        kinds = [op.kind for op in emu.kernel.ops.values()]
        assert kinds.count(OpKind.WRITE_MAX) == 0


class TestQuorumAccounting:
    def test_write_returns_after_exactly_n_minus_f_acks(self):
        """With client-priority scheduling the write triggers everything
        first; it must not wait for more than n-f write-max responds."""
        emu = ABDEmulation(n=5, f=2, scheduler=ClientPriorityScheduler())
        client = emu.add_client()
        client.enqueue("write", "x")
        assert emu.system.run_to_quiescence().satisfied
        write = emu.history.writes[0]
        # At the write's return time, at most f write-max ops may still be
        # pending (it only awaited n-f).
        late = [
            op
            for op in emu.kernel.ops.values()
            if op.kind is OpKind.WRITE_MAX
            and (op.respond_time is None or op.respond_time > write.return_time)
        ]
        assert len(late) <= 2

    def test_timestamp_is_max_plus_one(self):
        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(4))
        # Pre-load one server with a high timestamp.
        emu.object_map.object(ObjectId(1)).value = TSVal(41, 7, "old")
        client = emu.add_client()
        client.enqueue("write", "new")
        assert emu.system.run_to_quiescence().satisfied
        top = max(obj.value for obj in emu.object_map.objects)
        assert top.ts == 42
        assert top.val == "new"

    def test_writer_id_breaks_timestamp_ties(self):
        """Two writers may pick the same ts concurrently; the wid orders
        them deterministically so histories stay linearizable."""
        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(5))
        a = emu.add_client(ClientId(1))
        b = emu.add_client(ClientId(2))
        a.enqueue("write", "from-1")
        b.enqueue("write", "from-2")
        assert emu.system.run_to_quiescence().satisfied
        top = max(obj.value for obj in emu.object_map.objects)
        if top.ts == 1:  # both picked ts=1: wid must have decided
            assert top.wid == 2
            assert top.val == "from-2"


class TestStaleResponses:
    def test_responses_from_earlier_phase_do_not_corrupt(self):
        """A read-max respond left over from the first phase may arrive
        during the write phase; the results dict keys by OpId so phases
        never cross-count."""
        emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(6))
        client = emu.add_client()
        for index in range(3):
            client.enqueue("write", f"v{index}")
        client.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[-1].result == "v2"
