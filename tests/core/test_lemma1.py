"""Tests for the Lemma 1 run construction against our emulations."""

import pytest

from repro.core import bounds
from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ServerId


def _ws_factory(k, n, f):
    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    return factory


def _replicated_factory(k, n, f):
    def factory(scheduler):
        return ReplicatedMaxRegisterEmulation(
            k=k, n=n, f=f, scheduler=scheduler
        )

    return factory


class TestAgainstAlgorithm2:
    @pytest.mark.parametrize(
        "k,n,f",
        [(2, 5, 2), (3, 7, 2), (4, 7, 2), (3, 4, 1), (6, 13, 3), (2, 9, 4)],
    )
    def test_all_claims_hold(self, k, n, f):
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f)
        runner.run()
        runner.assert_all_claims()

    def test_covering_grows_by_f_per_write(self):
        k, n, f = 4, 7, 2
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f)
        runner.run()
        assert runner.covered_growth() == [f * i for i in range(1, k + 1)]

    def test_coverage_avoids_F(self):
        k, n, f = 3, 7, 2
        F = {ServerId(4), ServerId(5), ServerId(6)}
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f, F=F)
        reports = runner.run()
        assert all(r.covered_servers_in_F == 0 for r in reports)

    def test_lemma2_invariants_checked(self):
        k, n, f = 2, 5, 2
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f)
        runner.run()
        assert runner.checker is not None
        assert runner.checker.checks > 0

    def test_point_contention_stays_one(self):
        """Theorem 8's premise: the bad runs have point contention 1."""
        k, n, f = 3, 7, 2
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f)
        reports = runner.run()
        assert all(r.point_contention == 1 for r in reports)

    def test_final_covering_matches_kf(self):
        """After k writes, exactly kf registers are covered — the lower
        bound's accounting is tight against Algorithm 2."""
        k, n, f = 5, 6, 2  # the Figure 1 parameters
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f)
        runner.run()
        assert runner.covered_growth()[-1] == k * f

    def test_writes_touch_more_than_2f_servers(self):
        """Lemma 4: each write triggers on > 2f fresh servers."""
        k, n, f = 3, 7, 2
        runner = Lemma1Runner(_ws_factory(k, n, f), k=k, f=f)
        reports = runner.run()
        assert all(r.triggered_fresh_servers > 2 * f for r in reports)


class TestAgainstReplicatedMaxRegister:
    def test_claims_hold_at_minimum_servers(self):
        k, f = 3, 2
        n = 2 * f + 1
        runner = Lemma1Runner(_replicated_factory(k, n, f), k=k, f=f)
        runner.run()
        runner.assert_all_claims()

    def test_theorem6_every_non_F_server_covered_k_times(self):
        """Theorem 6: at n = 2f+1, each server outside F accumulates k
        covered registers (hence every server must store >= k)."""
        k, f = 4, 1
        n = 2 * f + 1
        F = {ServerId(1), ServerId(2)}
        runner = Lemma1Runner(_replicated_factory(k, n, f), k=k, f=f, F=F)
        reports = runner.run()
        final = reports[-1].per_server_covered
        for server_index in range(n):
            sid = ServerId(server_index)
            if sid in F:
                assert final.get(sid, 0) == 0
            else:
                assert final.get(sid, 0) >= k


class TestRunnerValidation:
    def test_bad_F_size_rejected(self):
        with pytest.raises(ValueError):
            Lemma1Runner(
                _ws_factory(2, 5, 2), k=2, f=2, F={ServerId(0)}
            )

    def test_F_must_be_subset_of_servers(self):
        with pytest.raises(ValueError):
            Lemma1Runner(
                _ws_factory(2, 5, 2),
                k=2,
                f=2,
                F={ServerId(7), ServerId(8), ServerId(9)},
            )

    def test_value_count_validated(self):
        runner = Lemma1Runner(_ws_factory(2, 5, 2), k=2, f=2)
        with pytest.raises(ValueError):
            runner.run(values=["only-one"])
