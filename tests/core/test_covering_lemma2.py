"""Tests for the Lemma 2 invariant checker itself.

The checker must (a) pass on genuine Ad_i runs (covered elsewhere) and
(b) actually *fire* when fed a state that breaks an invariant — otherwise
its green runs prove nothing.
"""

import pytest

from tests.conftest import ToyProtocol

from repro.core.covering import CoveringTracker
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _system(n_servers=5, seed=0):
    placements = [(s, "register", None) for s in range(n_servers)]
    return build_system(n_servers, placements, scheduler=RandomScheduler(seed))


class TestCheckerFires:
    def test_lemma2_1_violation_detected(self):
        """Force Q_i to contain a server with no newly covered register."""
        system = _system()
        tracker = CoveringTracker(system.object_map, f=2)
        system.kernel.add_listener(tracker)
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, 0)
        # Manually corrupt the phase state: a server in Q_i that hosts no
        # covered register.
        tracker.phase.qi = {ServerId(0)}
        with pytest.raises(AssertionError, match="Lemma 2.1"):
            tracker.check_lemma2()

    def test_lemma2_5_violation_detected(self):
        system = _system(n_servers=8)
        tracker = CoveringTracker(system.object_map, f=1)
        system.kernel.add_listener(tracker)
        F = {ServerId(6), ServerId(7)}
        tracker.start_phase(1, F, 0)
        # Cover three registers outside F, then corrupt Q_i beyond f.
        for index in range(3):
            client = system.add_client(
                ClientId(index), ToyProtocol(ObjectId(index))
            )
            client.enqueue("write", index)
            system.kernel.force_client_step(ClientId(index))
        tracker.phase.qi = {ServerId(0), ServerId(1), ServerId(2)}
        with pytest.raises(AssertionError, match="Lemma 2.5"):
            tracker.check_lemma2()

    def test_lemma2_monotonicity_violation_detected(self):
        system = _system()
        tracker = CoveringTracker(system.object_map, f=2)
        system.kernel.add_listener(tracker)
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, 0)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        tracker.check_lemma2()  # snapshot: qi = {s0}
        # Corrupt: Q_i shrinks (would mean the adversary leaked a respond).
        tracker.phase.qi = set()
        with pytest.raises(AssertionError, match="Lemma 2"):
            tracker.check_lemma2()

    def test_requires_active_phase(self):
        system = _system()
        tracker = CoveringTracker(system.object_map, f=2)
        with pytest.raises(AssertionError, match="no active phase"):
            tracker.check_lemma2()


class TestCheckerPasses:
    def test_clean_phase_passes_repeatedly(self):
        system = _system()
        tracker = CoveringTracker(system.object_map, f=2)
        system.kernel.add_listener(tracker)
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, 0)
        tracker.check_lemma2()
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        tracker.check_lemma2()
        (op_id,) = list(system.kernel.pending)
        # Respond would de-cover: but s0 is in Q_i; in a real Ad_i run the
        # adversary vetoes it, so we do not respond here — just re-check.
        tracker.check_lemma2()
