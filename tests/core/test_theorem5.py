"""Tests for the Theorem 5 negative control (2f servers insufficient)."""

import pytest

from repro.core import bounds
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ft_maxreg import FTMaxRegister
from repro.core.theorem5 import TwoFQuorumEmulation, partition_violation
from repro.core.ws_register import WSRegisterEmulation


class TestPartitionViolation:
    @pytest.mark.parametrize("f", [1, 2, 3, 4])
    def test_split_brain_breaks_ws_safety(self, f):
        violations = partition_violation(f)
        assert len(violations) == 1
        assert violations[0].read.result == "v0"
        assert violations[0].allowed == ["v1"]

    def test_unsound_emulation_fine_without_partition(self):
        """The 2f-server emulation *looks* fine in kind schedules — the
        flaw only shows under the partition, which is why the bound is a
        worst-case statement."""
        emu = TwoFQuorumEmulation(f=1, initial_value="v0")
        writer = emu.add_client()
        reader = emu.add_client()
        writer.enqueue("write", "v1")
        assert emu.system.run_to_quiescence().satisfied
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[0].result == "v1"


class TestAllEmulationsEnforceTheorem5:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_minimum_server_formula(self, f):
        assert bounds.min_servers(f) == 2 * f + 1

    @pytest.mark.parametrize("f", [1, 2])
    def test_deployments_reject_2f_servers(self, f):
        n = 2 * f
        with pytest.raises(ValueError):
            ABDEmulation(n=n, f=f)
        with pytest.raises(ValueError):
            CASABDEmulation(n=n, f=f)
        with pytest.raises(ValueError):
            FTMaxRegister(n=n, f=f)
        with pytest.raises(ValueError):
            WSRegisterEmulation(k=1, n=n, f=f)
