"""White-box tests for Algorithm 1's CAS loop."""

import pytest

from repro.core.cas_maxreg import SingleCASMaxRegister
from repro.sim.ids import ClientId, ObjectId
from repro.sim.kernel import ActionKind
from repro.sim.objects import OpKind
from repro.sim.scheduling import ClientPriorityScheduler, RandomScheduler


class TestLoopStructure:
    def test_uncontended_write_two_cas_round_trips(self):
        """Line 3 read + line 6 CAS + confirming line 3 read = 3 CAS ops,
        2 loop iterations."""
        register = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(0)
        )
        client = register.add_client()
        client.enqueue("write_max", 5)
        assert register.system.run_to_quiescence().satisfied
        cas_ops = [
            op for op in register.kernel.ops.values()
            if op.kind is OpKind.CAS
        ]
        assert len(cas_ops) == 3
        assert register.total_iterations == 2

    def test_dominated_write_single_iteration(self):
        register = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(1)
        )
        client = register.add_client()
        client.enqueue("write_max", 9)
        assert register.system.run_to_quiescence().satisfied
        before = register.total_iterations
        client.enqueue("write_max", 4)  # already dominated
        assert register.system.run_to_quiescence().satisfied
        # One read suffices: tmp = 9 >= 4, return immediately.
        assert register.total_iterations == before + 1

    def test_failed_cas_retries(self):
        """Interleave two writers so one observes a stale expected value,
        fails its line-6 CAS, and loops again (Theorem 4's wait-freedom
        bound: one extra iteration per intervening larger value)."""
        register = SingleCASMaxRegister(
            initial_value=0, scheduler=ClientPriorityScheduler()
        )
        slow = register.add_client(ClientId(0))
        fast = register.add_client(ClientId(1))
        # Both read 0 concurrently; fast installs 7; slow's CAS(0, 3)
        # fails against 7; slow re-reads, sees 7 >= 3, returns.
        slow.enqueue("write_max", 3)
        fast.enqueue("write_max", 7)
        assert register.system.run_to_quiescence(max_steps=100_000).satisfied
        assert register.system.object_map.object(ObjectId(0)).value == 7
        # At least one failed CAS happened across the run.
        cas_attempts = [
            op
            for op in register.kernel.ops.values()
            if op.kind is OpKind.CAS and op.args[0] != op.args[1]
        ]
        failed = [
            op
            for op in cas_attempts
            if op.respond_time is not None and op.result != op.args[0]
        ]
        assert register.total_iterations >= 3
        # (failed may be empty under some interleavings; the iteration
        # count above is the robust signal.)

    def test_value_never_regresses(self):
        register = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(3)
        )
        clients = [register.add_client() for _ in range(3)]
        for index, value in enumerate([8, 2, 5]):
            clients[index].enqueue("write_max", value)
        assert register.system.run_to_quiescence().satisfied
        assert register.system.object_map.object(ObjectId(0)).value == 8


class TestSpace:
    def test_exactly_one_base_object(self):
        register = SingleCASMaxRegister(initial_value=0)
        assert register.system.object_map.n_objects == 1

    def test_read_max_is_one_cas(self):
        register = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(4)
        )
        client = register.add_client()
        client.enqueue("read_max")
        assert register.system.run_to_quiescence().satisfied
        assert len(register.kernel.ops) == 1
        (op,) = register.kernel.ops.values()
        assert op.args == (0, 0)  # CAS(v0, v0)
