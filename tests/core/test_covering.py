"""Tests for the covering tracker (Definition 1 bookkeeping)."""

import pytest

from tests.conftest import ToyProtocol

from repro.core.covering import CoveringTracker
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _system(n_servers=5, registers_per_server=1, seed=0):
    placements = [
        (s, "register", None)
        for s in range(n_servers)
        for _ in range(registers_per_server)
    ]
    return build_system(n_servers, placements, scheduler=RandomScheduler(seed))


def _tracker(system, f=2):
    tracker = CoveringTracker(system.object_map, f)
    system.kernel.add_listener(tracker)
    return tracker


class MultiWriteProtocol(ToyProtocol):
    """Triggers a write on each given register, waits for a quorum."""

    def __init__(self, registers, quorum):
        super().__init__()
        self.registers = registers
        self.quorum = quorum

    def op_write(self, ctx, value):
        from repro.sim.objects import OpKind

        ops = [
            ctx.trigger(oid, OpKind.WRITE, value)
            for oid in self.registers
        ]
        yield lambda: sum(1 for op in ops if op in self.results) >= self.quorum
        return "ack"


class TestGlobalCovering:
    def test_trigger_covers_respond_uncovers(self):
        system = _system()
        tracker = _tracker(system)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        assert tracker.cov() == {ObjectId(0)}
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        assert tracker.cov() == set()

    def test_reads_never_cover(self):
        system = _system()
        tracker = _tracker(system)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("read")
        system.kernel.force_client_step(ClientId(0))
        assert tracker.cov() == set()

    def test_completed_writers_tracked(self):
        system = _system()
        tracker = _tracker(system)
        client = system.add_client(ClientId(3), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        assert tracker.completed() == set()
        system.run_to_quiescence()
        assert tracker.completed() == {ClientId(3)}

    def test_reader_not_in_completed(self):
        system = _system()
        tracker = _tracker(system)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("read")
        system.run_to_quiescence()
        assert tracker.completed() == set()


class TestPhases:
    def test_phase_requires_f_plus_1_servers(self):
        system = _system()
        tracker = _tracker(system, f=2)
        with pytest.raises(ValueError):
            tracker.start_phase(1, {ServerId(0)}, 0)

    def test_covi_excludes_previously_covered(self):
        system = _system()
        tracker = _tracker(system, f=2)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))  # covers b0
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, system.kernel.time)
        assert tracker.covi() == set()
        other = system.add_client(ClientId(1), ToyProtocol(ObjectId(1)))
        other.enqueue("write", 2)
        system.kernel.force_client_step(ClientId(1))
        assert tracker.covi() == {ObjectId(1)}
        assert tracker.cov() == {ObjectId(0), ObjectId(1)}

    def test_qi_excludes_F(self):
        system = _system()
        tracker = _tracker(system, f=2)
        F = {ServerId(0), ServerId(1), ServerId(2)}
        tracker.start_phase(1, F, 0)
        # Cover a register on an F server and one outside.
        inside = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        outside = system.add_client(ClientId(1), ToyProtocol(ObjectId(3)))
        inside.enqueue("write", 1)
        outside.enqueue("write", 2)
        system.kernel.force_client_step(ClientId(0))
        system.kernel.force_client_step(ClientId(1))
        assert tracker.qi() == {ServerId(3)}

    def test_qi_freezes_beyond_f(self):
        system = _system(n_servers=6)
        tracker = _tracker(system, f=1)
        F = {ServerId(4), ServerId(5)}
        tracker.start_phase(1, F, 0)
        for index in range(3):  # cover servers 0,1,2 (outside F)
            client = system.add_client(
                ClientId(index), ToyProtocol(ObjectId(index))
            )
            client.enqueue("write", index)
            system.kernel.force_client_step(ClientId(index))
        # |delta(Cov_i)\F| = 3 > f = 1: frozen at the first server.
        assert tracker.qi() == {ServerId(0)}

    def test_fi_tracks_responded_phase_writes_on_F(self):
        system = _system()
        tracker = _tracker(system, f=2)
        F = {ServerId(0), ServerId(1), ServerId(2)}
        tracker.start_phase(1, F, 0)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(1)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        assert tracker.fi() == set()
        assert tracker.mi() == {ServerId(1)}
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        assert tracker.fi() == {ServerId(1)}
        assert tracker.mi() == set()

    def test_prephase_writes_do_not_count_in_rri(self):
        system = _system()
        tracker = _tracker(system, f=2)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))  # pending before phase
        F = {ServerId(0), ServerId(1), ServerId(2)}
        tracker.start_phase(1, F, system.kernel.time)
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        assert tracker.fi() == set()  # respond of a pre-phase write

    def test_end_phase(self):
        system = _system()
        tracker = _tracker(system, f=2)
        tracker.start_phase(1, {ServerId(0), ServerId(1), ServerId(2)}, 0)
        state = tracker.end_phase()
        assert state.index == 1
        assert tracker.phase is None
        with pytest.raises(RuntimeError):
            tracker.end_phase()
