"""Tests for ABD over per-server max-registers (Table 1, max-register row)."""

import pytest

from tests.conftest import drive_concurrent, drive_sequential

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


def _emulation(n=5, f=2, seed=0, write_back=True):
    return ABDEmulation(
        n=n, f=f, scheduler=RandomScheduler(seed), write_back=write_back
    )


class TestBasics:
    def test_read_after_write(self):
        emu = _emulation()
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system, [(a, "write", ("x",)), (b, "read", ())]
        )
        assert emu.history.reads[0].result == "x"

    def test_initial_value(self):
        emu = ABDEmulation(
            n=3, f=1, initial_value="v0", scheduler=RandomScheduler(1)
        )
        reader = emu.add_client()
        drive_sequential(emu.system, [(reader, "read", ())])
        assert emu.history.reads[0].result == "v0"

    def test_unbounded_writers(self):
        """ABD's space does not depend on k: any number of clients write."""
        emu = _emulation()
        clients = [emu.add_client() for _ in range(7)]
        script = [
            (client, "write", (f"v{i}",))
            for i, client in enumerate(clients)
        ]
        reader = emu.add_client()
        script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        assert emu.history.reads[0].result == "v6"
        assert emu.total_objects == 5  # unchanged by 8 clients

    def test_minimum_server_count_enforced(self):
        with pytest.raises(ValueError):
            ABDEmulation(n=4, f=2)


class TestAtomicity:
    @pytest.mark.parametrize("seed", range(5))
    def test_sequential_history_atomic(self, seed):
        emu = _emulation(seed=seed)
        a, b, reader = emu.add_client(), emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system,
            [
                (a, "write", ("1",)),
                (reader, "read", ()),
                (b, "write", ("2",)),
                (reader, "read", ()),
                (a, "write", ("3",)),
                (reader, "read", ()),
            ],
        )
        assert is_register_history_atomic(emu.history)

    @pytest.mark.parametrize("seed", range(8))
    def test_concurrent_history_atomic(self, seed):
        emu = _emulation(seed=seed)
        writers = [emu.add_client() for _ in range(2)]
        readers = [emu.add_client() for _ in range(2)]
        invocations = []
        for i, writer in enumerate(writers):
            invocations.append((writer, "write", (f"w{i}",)))
        for reader in readers:
            invocations.append((reader, "read", ()))
        drive_concurrent(emu.system, invocations)
        assert is_register_history_atomic(emu.history)

    @pytest.mark.parametrize("seed", range(5))
    def test_regular_variant_is_ws_regular(self, seed):
        emu = _emulation(seed=seed, write_back=False)
        writer = emu.add_client()
        readers = [emu.add_client() for _ in range(2)]
        for i in range(3):
            writer.enqueue("write", f"v{i}")
            for reader in readers:
                reader.enqueue("read")
            assert emu.system.run_to_quiescence().satisfied
        assert check_ws_regular(emu.history, cross_check=True) == []


class TestFaultTolerance:
    def test_f_crashes_tolerated(self):
        emu = _emulation()
        emu.kernel.crash_server(ServerId(0))
        emu.kernel.crash_server(ServerId(3))
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system, [(a, "write", ("ok",)), (b, "read", ())]
        )
        assert emu.history.reads[0].result == "ok"

    def test_crash_between_phases(self):
        emu = _emulation(seed=3)
        plan = CrashPlan()
        plan.crash_server_at(10, ServerId(1))
        plan.install(emu.kernel)
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system,
            [(a, "write", ("x",)), (b, "write", ("y",)), (a, "read", ())],
        )
        assert emu.history.reads[0].result == "y"
        assert is_register_history_atomic(emu.history)

    def test_more_than_f_crashes_blocks(self):
        emu = _emulation()
        for s in range(3):
            emu.kernel.crash_server(ServerId(s))
        client = emu.add_client()
        client.enqueue("write", "stuck")
        result = emu.kernel.run(max_steps=20_000)
        assert result.reason == "quiescent"
        assert not emu.history.writes[0].complete


class TestTimestamps:
    def test_later_write_gets_higher_timestamp(self):
        emu = _emulation()
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system, [(a, "write", ("1",)), (b, "write", ("2",))]
        )
        values = [obj.value for obj in emu.object_map.objects]
        top = max(values)
        assert top.val == "2"
        assert top.ts == 2
