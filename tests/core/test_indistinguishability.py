"""The Lemma 4 / Figure 2 indistinguishability argument, executed.

The proof derives a contradiction by exhibiting two runs the reader
cannot tell apart: in r' the latest write never happened (its effects are
absent for a legitimate reason — crashes), in r'' the write *completed*
but its footprint is hidden behind crashed servers and still-pending
covering writes.  The reader performs identical low-level operations with
identical results in both, so it must return the same value — correct in
r', stale in r''.

Against a *correct* algorithm (Algorithm 2) the situation cannot be
manufactured: the write's footprint is too wide (Lemma 4: more than 2f
servers).  Against the under-replicating ablation it can.  This test
builds both runs for the ablated client and checks the reader's
observation sequences are literally identical; and it verifies the
attempt fails against real Algorithm 2.
"""

import pytest

from repro.core.ablation import ScriptedWriteBlocker, SmallQuorumEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.objects import OpKind
from repro.sim.scheduling import RoundRobinScheduler


def _reader_observations(emulation, reader):
    """The reader's completed low-level reads as (object, result) pairs,
    in trigger order — what the reader 'saw'."""
    observations = []
    for op in sorted(
        emulation.kernel.ops.values(), key=lambda op: op.trigger_time
    ):
        if op.client_id == reader.client_id and op.kind is OpKind.READ:
            if op.respond_time is not None:
                observations.append((op.object_id, op.result))
    return sorted(observations, key=lambda pair: pair[0].index)


def _run_r_prime():
    """r': no write ever happens; server s0 crashes; a read runs."""
    emu = SmallQuorumEmulation(
        k=1, n=3, f=1, initial_value="v0", scheduler=RoundRobinScheduler()
    )
    b0, b1, b2 = emu.layout.registers_for_writer(0)
    reader = emu.add_reader()
    emu.kernel.crash_server(emu.layout.server_of(b0))
    reader.enqueue("read")
    result = emu.kernel.run(
        max_steps=100_000, until=lambda k: reader.idle and not reader.program
    )
    assert result.satisfied
    return emu, reader


def _run_r_double_prime():
    """r'': the ablated write *completes* on b0 alone, s0 crashes, the
    covering writes on b1/b2 stay pending; the same read runs."""
    env = ScriptedWriteBlocker()
    emu = SmallQuorumEmulation(
        k=1,
        n=3,
        f=1,
        initial_value="v0",
        scheduler=RoundRobinScheduler(),
        environment=env,
    )
    b0, b1, b2 = emu.layout.registers_for_writer(0)
    env.block(b1)
    env.block(b2)
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    writer.enqueue("write", "v1")
    result = emu.kernel.run(
        max_steps=100_000, until=lambda k: writer.idle and not writer.program
    )
    assert result.satisfied, "the ablated write should return on one ack"
    emu.kernel.crash_server(emu.layout.server_of(b0))
    reader.enqueue("read")
    result = emu.kernel.run(
        max_steps=100_000, until=lambda k: reader.idle and not reader.program
    )
    assert result.satisfied
    return emu, reader


class TestAblatedIndistinguishability:
    def test_reader_observations_identical(self):
        emu_a, reader_a = _run_r_prime()
        emu_b, reader_b = _run_r_double_prime()
        assert _reader_observations(emu_a, reader_a) == (
            _reader_observations(emu_b, reader_b)
        )

    def test_same_return_correct_in_r_prime_stale_in_r_double_prime(self):
        emu_a, _ = _run_r_prime()
        emu_b, _ = _run_r_double_prime()
        read_a = emu_a.history.reads[-1]
        read_b = emu_b.history.reads[-1]
        assert read_a.result == read_b.result == "v0"
        # r': no write -> v0 is the right answer.
        from repro.consistency.ws import check_ws_safe

        assert check_ws_safe(emu_a.history, initial_value="v0") == []
        # r'': the write completed -> v0 is a WS-Safety violation.
        assert check_ws_safe(emu_b.history, initial_value="v0") != []


class TestAlgorithm2Resists:
    def test_write_footprint_exceeds_2f_servers(self):
        """Lemma 4 on the real client: a complete write has triggered on
        more than 2f servers, so no f crashes + f covering writes can hide
        it from a reader."""
        emu = WSRegisterEmulation(
            k=1, n=3, f=1, scheduler=RoundRobinScheduler()
        )
        writer = emu.add_writer(0)
        writer.enqueue("write", "v1")
        assert emu.system.run_to_quiescence().satisfied
        touched = {
            emu.object_map.server_of(op.object_id)
            for op in emu.kernel.ops.values()
            if op.client_id == writer.client_id and op.is_mutator
        }
        assert len(touched) > 2 * 1  # > 2f

    def test_real_client_blocks_rather_than_underreplicates(self):
        """Hold two of three registers: the real write refuses to return
        (so the r'' world simply cannot be constructed)."""
        env = ScriptedWriteBlocker()
        emu = WSRegisterEmulation(
            k=1,
            n=3,
            f=1,
            initial_value="v0",
            scheduler=RoundRobinScheduler(),
            environment=env,
        )
        b0, b1, b2 = emu.layout.registers_for_writer(0)
        env.block(b1)
        env.block(b2)
        writer = emu.add_writer(0)
        writer.enqueue("write", "v1")
        result = emu.kernel.run(
            max_steps=10_000,
            until=lambda k: writer.idle and not writer.program,
        )
        assert not result.satisfied  # still waiting for its real quorum
