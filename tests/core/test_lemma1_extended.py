"""Extended Lemma 1 scenarios: overflow sets, reads under the adversary,
and accounting details."""

import pytest

from repro.consistency.ws import check_ws_safe
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ServerId


def _factory(k, n, f):
    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    return factory


class TestOverflowSets:
    """z does not divide k: the construction must still cover k*f."""

    @pytest.mark.parametrize(
        "k,n,f",
        [
            (5, 9, 2),  # z=3: one full set + overflow of 2 writers
            (4, 9, 2),  # z=3: overflow of 1 writer
            (7, 11, 2),  # z=4: overflow of 3 writers
        ],
    )
    def test_claims_with_overflow(self, k, n, f):
        runner = Lemma1Runner(_factory(k, n, f), k=k, f=f)
        runner.run()
        runner.assert_all_claims()
        assert runner.covered_growth()[-1] >= k * f


class TestReadsDuringAdversary:
    """Reads are never blocked by Ad_i (it only vetoes writes); a read
    issued between phases must return the latest completed write even
    with kf covering writes outstanding."""

    def test_read_between_phases(self):
        k, n, f = 3, 7, 2
        runner = Lemma1Runner(_factory(k, n, f), k=k, f=f)
        emu = runner.emulation
        values = ["v1", "v2", "v3"]
        for index, value in enumerate(values, start=1):
            runner.run_phase(index, value)
            reader = emu.add_reader()
            reader.enqueue("read")
            result = emu.kernel.run(
                max_steps=200_000,
                until=lambda k_: reader.idle and not reader.program,
            )
            assert result.satisfied, "read blocked by the adversary?"
            assert emu.history.reads[-1].result == value
        assert check_ws_safe(emu.history) == []
        runner.assert_all_claims()


class TestAccountingDetails:
    def test_covering_writes_belong_to_distinct_writers(self):
        k, n, f = 3, 7, 2
        runner = Lemma1Runner(_factory(k, n, f), k=k, f=f)
        runner.run()
        pending = [
            op
            for op in runner.emulation.kernel.pending.values()
            if op.is_mutator
        ]
        by_client = {}
        for op in pending:
            by_client.setdefault(op.client_id, []).append(op)
        # Each of the k writers left exactly f covering writes.
        assert len(by_client) == k
        assert all(len(ops) == f for ops in by_client.values())

    def test_covered_registers_on_distinct_servers_per_phase(self):
        k, n, f = 2, 5, 2
        runner = Lemma1Runner(_factory(k, n, f), k=k, f=f)
        reports = runner.run()
        object_map = runner.emulation.object_map
        pending = [
            op
            for op in runner.emulation.kernel.pending.values()
            if op.is_mutator
        ]
        for client, ops in _group_by_client(pending).items():
            servers = {object_map.server_of(op.object_id) for op in ops}
            assert len(servers) == len(ops)  # one covered per server

    def test_phase_end_times_increase(self):
        runner = Lemma1Runner(_factory(2, 5, 2), k=2, f=2)
        reports = runner.run()
        ends = [report.end_time for report in reports]
        assert ends == sorted(ends)
        assert ends[0] > 0


def _group_by_client(ops):
    grouped = {}
    for op in ops:
        grouped.setdefault(op.client_id, []).append(op)
    return grouped
