"""Algorithm 2 with several writers sharing one register set (z >= 2).

The layout packs z writers per set; their covering footprints must
coexist inside |R_j| = zf + f + 1 registers.  These tests exercise the
sharing directly (outside the Lemma 1 machinery).
"""

import json

import pytest

from repro.consistency.ws import check_ws_regular
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


def _emulation(seed=0):
    # n=7, f=2 -> z=2: writers 0 and 1 share R_0, writer 2 owns R_1.
    return WSRegisterEmulation(k=3, n=7, f=2, scheduler=RandomScheduler(seed))


class TestSharedSets:
    def test_layout_shares_as_expected(self):
        emu = _emulation()
        assert emu.layout.z == 2
        assert emu.layout.set_index_for_writer(0) == 0
        assert emu.layout.set_index_for_writer(1) == 0
        assert emu.layout.set_index_for_writer(2) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_sharing_writers_alternate_safely(self, seed):
        emu = _emulation(seed)
        w0, w1 = emu.add_writer(0), emu.add_writer(1)
        reader = emu.add_reader()
        expected = None
        for round_index in range(3):
            for index, writer in enumerate((w0, w1)):
                expected = f"r{round_index}w{index}"
                writer.enqueue("write", expected)
                assert emu.system.run_to_quiescence().satisfied
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[0].result == expected
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_cover_budgets_are_per_writer(self):
        """Both sharers can have up to f pending writes simultaneously on
        the shared set without starving each other (Observation 3 is per
        writer; the set's size budgets z*f covering total)."""
        from repro.core.ablation import ScriptedWriteBlocker

        env = ScriptedWriteBlocker()
        emu = WSRegisterEmulation(
            k=3, n=7, f=2,
            scheduler=RandomScheduler(1),
            environment=env,
        )
        w0, w1 = emu.add_writer(0), emu.add_writer(1)
        shared = emu.layout.registers_for_writer(0)
        assert shared == emu.layout.registers_for_writer(1)
        # Hold two of the shared registers: each writer will leave its
        # pending writes there, yet both writes complete.
        env.block(shared[0])
        env.block(shared[1])
        w0.enqueue("write", "a")
        assert emu.kernel.run(
            max_steps=100_000, until=lambda k: w0.idle and not w0.program
        ).satisfied
        w1.enqueue("write", "b")
        assert emu.kernel.run(
            max_steps=100_000, until=lambda k: w1.idle and not w1.program
        ).satisfied
        pending_by_writer = {}
        for op in emu.kernel.pending.values():
            if op.is_mutator:
                pending_by_writer.setdefault(op.client_id, 0)
                pending_by_writer[op.client_id] += 1
        assert all(count <= 2 for count in pending_by_writer.values())


class TestHistoryExport:
    def test_history_serializes_to_json(self):
        emu = _emulation(5)
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        writer.enqueue("write", "payload")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        records = emu.history.to_dicts()
        encoded = json.dumps(records)
        decoded = json.loads(encoded)
        by_name = {record["name"]: record for record in decoded}
        assert by_name["write"]["args"] == ["payload"]
        assert by_name["write"]["result"] == "ack"
        assert by_name["read"]["result"] in ("payload", None)
