"""Tests for Algorithm 1 (max-register from one CAS) and ABD-over-CAS."""

import pytest

from tests.conftest import drive_concurrent, drive_sequential

from repro.consistency.linearizability import is_linearizable
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.specs import MaxRegisterSpec
from repro.core.cas_maxreg import CASABDEmulation, SingleCASMaxRegister
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


class TestSingleCASMaxRegister:
    def test_write_then_read(self):
        mreg = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(0)
        )
        a, b = mreg.add_client(), mreg.add_client()
        drive_sequential(
            mreg.system, [(a, "write_max", (5,)), (b, "read_max", ())]
        )
        assert mreg.history.all_ops()[-1].result == 5

    def test_monotone_under_interleaving(self):
        mreg = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(1)
        )
        a, b = mreg.add_client(), mreg.add_client()
        drive_sequential(
            mreg.system,
            [
                (a, "write_max", (5,)),
                (b, "write_max", (3,)),  # smaller: must not regress
                (a, "read_max", ()),
            ],
        )
        assert mreg.history.all_ops()[-1].result == 5

    @pytest.mark.parametrize("seed", range(10))
    def test_atomicity_under_concurrency(self, seed):
        """Theorem 4: Algorithm 1 emulates a wait-free atomic max-register."""
        mreg = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(seed)
        )
        clients = [mreg.add_client() for _ in range(3)]
        invocations = [
            (clients[0], "write_max", (4,)),
            (clients[1], "write_max", (7,)),
            (clients[2], "read_max", ()),
            (clients[0], "read_max", ()),
        ]
        drive_concurrent(mreg.system, invocations)
        assert is_linearizable(
            mreg.history.all_ops(), MaxRegisterSpec(0)
        )

    def test_wait_freedom_bounded_iterations(self):
        """write-max terminates; iterations bounded by intervening values."""
        mreg = SingleCASMaxRegister(
            initial_value=0, scheduler=RandomScheduler(2)
        )
        client = mreg.add_client()
        drive_sequential(
            mreg.system,
            [(client, "write_max", (i,)) for i in range(1, 6)],
        )
        # Uncontended: each write needs exactly one read + one CAS pass,
        # i.e. one loop iteration plus the confirming iteration.
        assert mreg.total_iterations <= 2 * 5

    def test_read_max_single_cas(self):
        mreg = SingleCASMaxRegister(initial_value=0)
        client = mreg.add_client()
        drive_sequential(mreg.system, [(client, "read_max", ())])
        # read-max is one CAS(v0, v0): one trigger total.
        assert len(mreg.kernel.ops) == 1


class TestCASABD:
    def test_read_after_write(self):
        emu = CASABDEmulation(n=5, f=2, scheduler=RandomScheduler(0))
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system, [(a, "write", ("x",)), (b, "read", ())]
        )
        assert emu.history.reads[0].result == "x"
        assert emu.total_objects == 5  # 2f+1 CAS objects

    @pytest.mark.parametrize("seed", range(5))
    def test_atomic_under_concurrency(self, seed):
        emu = CASABDEmulation(n=5, f=2, scheduler=RandomScheduler(seed))
        writers = [emu.add_client() for _ in range(2)]
        reader = emu.add_client()
        invocations = [
            (writers[0], "write", ("a",)),
            (writers[1], "write", ("b",)),
            (reader, "read", ()),
        ]
        drive_concurrent(emu.system, invocations)
        assert is_register_history_atomic(emu.history)

    def test_f_crashes_tolerated(self):
        emu = CASABDEmulation(n=5, f=2, scheduler=RandomScheduler(3))
        emu.kernel.crash_server(ServerId(1))
        emu.kernel.crash_server(ServerId(2))
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system, [(a, "write", ("ok",)), (b, "read", ())]
        )
        assert emu.history.reads[0].result == "ok"

    def test_crash_mid_operation(self):
        emu = CASABDEmulation(n=5, f=2, scheduler=RandomScheduler(4))
        CrashPlan().crash_server_at(15, ServerId(0)).install(emu.kernel)
        a, b = emu.add_client(), emu.add_client()
        drive_sequential(
            emu.system,
            [(a, "write", ("1",)), (b, "write", ("2",)), (a, "read", ())],
        )
        assert emu.history.reads[0].result == "2"

    def test_minimum_server_count_enforced(self):
        with pytest.raises(ValueError):
            CASABDEmulation(n=3, f=2)

    def test_iteration_accounting(self):
        emu = CASABDEmulation(n=3, f=1, scheduler=RandomScheduler(5))
        client = emu.add_client()
        drive_sequential(emu.system, [(client, "write", ("x",))])
        assert emu.total_iterations > 0
