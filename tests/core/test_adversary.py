"""Tests for the BlockedWrites / Ad_i environment (Definitions 2-3)."""

from tests.conftest import ToyProtocol

from repro.core.adversary import AdversaryAdi
from repro.core.covering import CoveringTracker
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _setup(n_servers=5, f=2, seed=0):
    placements = [(s, "register", None) for s in range(n_servers)]
    system = build_system(
        n_servers, placements, scheduler=RandomScheduler(seed)
    )
    tracker = CoveringTracker(system.object_map, f)
    system.kernel.add_listener(tracker)
    adversary = AdversaryAdi(tracker)
    system.kernel.environment = adversary
    return system, tracker, adversary


class TestCondition1:
    def test_old_writer_covering_write_blocked(self):
        system, tracker, adversary = _setup()
        old = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        old.enqueue("write", 1)
        system.run_to_quiescence()  # c0 completes: c0 in C(t)
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, system.kernel.time)
        # c0 triggers another write: it is a covering write by a client in
        # C(t_{i-1}) and must never respond.
        old.enqueue("write", 2)
        result = system.kernel.run(max_steps=1_000)
        assert result.reason == "blocked"
        assert not system.history.all_ops()[-1].complete
        assert adversary.vetoes > 0

    def test_fresh_writer_not_blocked_by_condition1(self):
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, system.kernel.time)
        fresh = system.add_client(ClientId(1), ToyProtocol(ObjectId(1)))
        fresh.enqueue("write", 1)
        result = system.run_to_quiescence(max_steps=1_000)
        # Single register outside F gets covered -> its server joins Q_i,
        # so the write IS blocked by condition 2 here.  Use an F register
        # to see condition 1 alone.
        assert result.reason in ("until", "blocked")


class TestCondition2:
    def test_write_on_qi_server_blocked(self):
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, system.kernel.time)
        client = system.add_client(ClientId(1), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        result = system.kernel.run(max_steps=1_000)
        # Server 0 (outside F) becomes covered, joins Q_i, write blocked.
        assert result.reason == "blocked"
        assert tracker.qi() == {ServerId(0)}

    def test_write_on_F_server_responds(self):
        """With Q_i empty... F_i empty, G_i empty: a write on an F server
        is never blocked and completes."""
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, system.kernel.time)
        client = system.add_client(ClientId(1), ToyProtocol(ObjectId(3)))
        client.enqueue("write", 1)
        result = system.run_to_quiescence(max_steps=1_000)
        assert result.satisfied
        assert system.history.all_ops()[0].complete


class TestNoPhase:
    def test_everything_allowed_between_phases(self):
        system, tracker, adversary = _setup()
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        result = system.run_to_quiescence()
        assert result.satisfied
        assert adversary.vetoes == 0

    def test_reads_never_blocked(self):
        system, tracker, adversary = _setup()
        F = {ServerId(2), ServerId(3), ServerId(4)}
        tracker.start_phase(1, F, system.kernel.time)
        client = system.add_client(ClientId(1), ToyProtocol(ObjectId(0)))
        client.enqueue("read")
        result = system.run_to_quiescence(max_steps=1_000)
        assert result.satisfied
