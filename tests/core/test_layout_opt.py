"""Tests for capacitated layouts (Theorem 7, constructive side)."""

import pytest

from repro.core import bounds
from repro.core.layout_opt import capacitated_layout, capacity_frontier


class TestCapacitatedLayout:
    @pytest.mark.parametrize(
        "k,f,capacity",
        [(2, 1, 1), (4, 2, 2), (6, 2, 3), (6, 2, 1), (3, 3, 2), (8, 1, 4)],
    )
    def test_respects_capacity(self, k, f, capacity):
        plan = capacitated_layout(k, f, capacity)
        assert plan.max_per_server <= capacity
        assert plan.servers >= bounds.min_servers(f)

    @pytest.mark.parametrize(
        "k,f,capacity",
        [(2, 1, 1), (4, 2, 2), (6, 2, 3), (8, 1, 4)],
    )
    def test_never_below_theorem7_floor(self, k, f, capacity):
        plan = capacitated_layout(k, f, capacity)
        assert plan.servers >= plan.theorem7_floor

    def test_capacity_one_forces_saturation(self):
        """With one register per server, n must reach at least the total
        register count kf + f + 1 (the saturated layout)."""
        plan = capacitated_layout(4, 2, 1)
        assert plan.max_per_server == 1
        assert plan.servers >= plan.total_registers
        assert plan.total_registers == 4 * 2 + 2 + 1

    def test_large_capacity_gives_minimum_servers(self):
        plan = capacitated_layout(3, 2, 100)
        assert plan.servers == bounds.min_servers(2)

    def test_layout_is_valid_algorithm2_layout(self):
        plan = capacitated_layout(5, 2, 2)
        plan.layout.validate()  # raises on any violated property
        assert plan.total_registers == bounds.register_upper_bound(
            5, plan.servers, 2
        )

    def test_slack_is_bounded(self):
        """The achieved server count stays within a small constant factor
        of Theorem 7's floor across a parameter sweep (the bound is
        nearly constructive for the balanced layout)."""
        for k in range(1, 9):
            for f in (1, 2):
                for capacity in range(1, 2 * k + 1):
                    plan = capacitated_layout(k, f, capacity)
                    assert plan.servers <= 2 * plan.theorem7_floor + f + 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            capacitated_layout(0, 1, 1)
        with pytest.raises(ValueError):
            capacitated_layout(1, 0, 1)
        with pytest.raises(ValueError):
            capacitated_layout(1, 1, 0)


class TestCapacityFrontier:
    def test_monotone_in_capacity(self):
        plans = capacity_frontier(6, 2, [1, 2, 3, 6, 12])
        servers = [plan.servers for plan in plans]
        assert servers == sorted(servers, reverse=True)

    def test_frontier_matches_direct_calls(self):
        plans = capacity_frontier(4, 1, [2, 4])
        for plan in plans:
            direct = capacitated_layout(4, 1, plan.capacity)
            assert direct.servers == plan.servers
