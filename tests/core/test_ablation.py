"""Tests for the ablation module: each removed mechanism breaks safety."""

import pytest

from repro.core.ablation import (
    NoCoverAvoidanceEmulation,
    ScriptedWriteBlocker,
    SmallQuorumEmulation,
    baseline_no_violation,
    cover_avoidance_violation,
    small_quorum_violation,
)
from repro.sim.ids import ObjectId
from repro.sim.kernel import Action, ActionKind
from repro.sim.scheduling import RandomScheduler


class TestCoverAvoidanceAblation:
    def test_violation_produced(self):
        violations = cover_avoidance_violation()
        assert len(violations) == 1
        violation = violations[0]
        assert violation.read.result == "v2"
        assert violation.allowed == ["v3"]

    def test_ablated_client_still_works_failure_free(self):
        """Without the adversary the ablated client behaves fine — the
        bug only surfaces under covering writes, which is the point."""
        emu = NoCoverAvoidanceEmulation(
            k=1, n=3, f=1, scheduler=RandomScheduler(0)
        )
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        writer.enqueue("write", "x")
        assert emu.system.run_to_quiescence().satisfied
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[0].result == "x"


class TestSmallQuorumAblation:
    def test_violation_produced(self):
        violations = small_quorum_violation()
        assert len(violations) == 1
        assert violations[0].read.result == "v0"
        assert violations[0].allowed == ["v1"]

    def test_ablated_client_still_works_failure_free(self):
        emu = SmallQuorumEmulation(
            k=1, n=3, f=1, scheduler=RandomScheduler(0)
        )
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        writer.enqueue("write", "x")
        assert emu.system.run_to_quiescence().satisfied
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[0].result == "x"


class TestBaseline:
    def test_real_algorithm_survives_same_attack(self):
        assert baseline_no_violation() == []


class TestScriptedWriteBlocker:
    def _respond_action(self, kernel):
        (op_id,) = list(kernel.pending)
        return Action(ActionKind.RESPOND, op_id=op_id)

    def test_blocks_all_writes_on_object(self):
        from tests.conftest import ToyProtocol
        from repro.sim.ids import ClientId
        from repro.sim.system import build_system

        env = ScriptedWriteBlocker().block(ObjectId(0))
        system = build_system(
            1, [(0, "register", None)], environment=env,
            scheduler=RandomScheduler(0),
        )
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        result = system.kernel.run(max_steps=100)
        assert result.reason == "blocked"

    def test_threshold_frees_new_writes(self):
        from tests.conftest import ToyProtocol
        from repro.sim.ids import ClientId
        from repro.sim.system import build_system

        env = ScriptedWriteBlocker()
        system = build_system(
            1, [(0, "register", None)], environment=env,
            scheduler=RandomScheduler(0),
        )
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        env.block(ObjectId(0), triggered_before=system.kernel.time + 1)
        assert system.kernel.run(max_steps=50).reason == "blocked"
        # A later write on the same object is allowed.
        env.rules[ObjectId(0)] = system.kernel.time  # move threshold back
        result = system.run_to_quiescence(max_steps=200)
        # The original (old) write is still blocked; the client waits.
        assert result.reason in ("blocked", "until")

    def test_unblock(self):
        env = ScriptedWriteBlocker().block(ObjectId(1))
        env.unblock(ObjectId(1))
        assert ObjectId(1) not in env.rules
